//! N-way sharded wrappers around the LRU cache and the single-flight
//! table.
//!
//! The PR-2 engine kept one mutex in front of each cache and one in front
//! of each in-flight table. On the warm path every submission takes the
//! result-cache lock, so once the cache hit rate approaches 1 the whole
//! engine serializes on that single mutex — the worker matrix in
//! `BENCH_engine.json` showed warm throughput flat from 1 to 4 workers
//! for exactly this reason. Splitting the key space over
//! power-of-two-many independently locked shards makes concurrent hits to
//! *different* keys contention-free while keeping every per-key invariant
//! (LRU within a shard, one leader per key) intact.
//!
//! Shard routing hashes the key with [`std::hash::DefaultHasher`]
//! (SipHash-1-3 with fixed keys — deterministic across runs and
//! processes) and masks the low bits, so a key always lands on the same
//! shard and bit-identity of the cached values is untouched: sharding
//! moves entries between locks, never between keys.
//!
//! Each cache shard keeps its own lock-free hit/miss/insert/contention
//! counters ([`CacheShardStats`]): `contended` counts lock acquisitions
//! that found the shard mutex already held (a `try_lock` failure followed
//! by a blocking lock). On a single-core box, where parallel speedups are
//! invisible, the contention split across shard counts is the observable
//! evidence that the lock ceiling moved.

use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::MutexGuard;

use crate::cache::LruCache;
use crate::singleflight::{Flight, SingleFlight, Slot};

/// Resolves a shard-count knob: `0` means `default`, anything else is
/// rounded up to the next power of two and clamped to `[1, 256]`.
#[must_use]
pub fn resolve_shards(requested: usize, default: usize) -> usize {
    let n = if requested == 0 { default } else { requested };
    n.clamp(1, 256).next_power_of_two()
}

/// The deterministic shard index of `key` among `2^k` shards selected by
/// `mask = 2^k - 1`.
fn shard_index<K: Hash>(key: &K, mask: u64) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    #[allow(clippy::cast_possible_truncation)]
    let idx = (h.finish() & mask) as usize;
    idx
}

/// The shard `key` routes to among `shards` shards — the same routing the
/// sharded containers use, exposed so harnesses can construct key sets
/// with known shard placement (e.g. one hot key per shard, or all hot
/// keys colliding on one shard).
///
/// # Panics
///
/// Panics if `shards` is not a power of two (see [`resolve_shards`]).
#[must_use]
pub fn shard_of<K: Hash>(key: &K, shards: usize) -> usize {
    assert!(
        shards.is_power_of_two(),
        "shard count must be a power of two, got {shards}"
    );
    shard_index(key, shards as u64 - 1)
}

/// Point-in-time counters of one cache shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheShardStats {
    /// Lookups that found their key in this shard.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Insertions (including refreshes of an existing key).
    pub inserts: u64,
    /// Lock acquisitions that found the shard mutex already held.
    pub contended: u64,
    /// Entries currently cached in this shard.
    pub entries: u64,
}

/// One independently locked cache shard with its own counters.
#[derive(Debug)]
struct CacheShard<K, V> {
    map: parking_lot::Mutex<LruCache<K, V>>,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    contended: AtomicU64,
}

impl<K: Eq + Hash + Copy, V: Clone> CacheShard<K, V> {
    /// Locks the shard, counting the acquisition as contended when the
    /// mutex was already held.
    fn lock(&self) -> MutexGuard<'_, LruCache<K, V>> {
        if let Some(guard) = self.map.try_lock() {
            return guard;
        }
        self.contended.fetch_add(1, Ordering::Relaxed);
        self.map.lock()
    }
}

/// An N-way sharded bounded LRU map. Each shard holds
/// `ceil(capacity / shards)` entries, so the total capacity is at least
/// the requested one; eviction is LRU *within* a shard.
#[derive(Debug)]
pub struct ShardedCache<K, V> {
    shards: Vec<CacheShard<K, V>>,
    mask: u64,
}

impl<K: Eq + Hash + Copy, V: Clone> ShardedCache<K, V> {
    /// An empty cache of `capacity` total entries split over `shards`
    /// (must be a power of two — see [`resolve_shards`]).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `shards` is not a power of two.
    #[must_use]
    pub fn new(capacity: usize, shards: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        assert!(
            shards.is_power_of_two(),
            "shard count must be a power of two, got {shards}"
        );
        let per_shard = capacity.div_ceil(shards).max(1);
        ShardedCache {
            shards: (0..shards)
                .map(|_| CacheShard {
                    map: parking_lot::Mutex::new(LruCache::new(per_shard)),
                    hits: AtomicU64::new(0),
                    misses: AtomicU64::new(0),
                    inserts: AtomicU64::new(0),
                    contended: AtomicU64::new(0),
                })
                .collect(),
            mask: shards as u64 - 1,
        }
    }

    fn shard(&self, key: &K) -> &CacheShard<K, V> {
        &self.shards[shard_index(key, self.mask)]
    }

    /// Looks up `key` in its shard, refreshing recency on a hit and
    /// returning a clone of the cached value.
    pub fn get(&self, key: &K) -> Option<V> {
        let shard = self.shard(key);
        let value = shard.lock().get(key).cloned();
        if value.is_some() {
            shard.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            shard.misses.fetch_add(1, Ordering::Relaxed);
        }
        value
    }

    /// Inserts (or refreshes) `key` in its shard, evicting that shard's
    /// LRU entry if the shard is full.
    pub fn insert(&self, key: K, value: V) {
        let shard = self.shard(&key);
        shard.inserts.fetch_add(1, Ordering::Relaxed);
        shard.lock().insert(key, value);
    }

    /// Total entries across every shard.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.map.lock().len()).sum()
    }

    /// Whether every shard is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard counters, in shard order.
    #[must_use]
    pub fn stats(&self) -> Vec<CacheShardStats> {
        self.shards
            .iter()
            .map(|s| CacheShardStats {
                hits: s.hits.load(Ordering::Relaxed),
                misses: s.misses.load(Ordering::Relaxed),
                inserts: s.inserts.load(Ordering::Relaxed),
                contended: s.contended.load(Ordering::Relaxed),
                entries: s.map.lock().len() as u64,
            })
            .collect()
    }

    /// Visits every cached entry (shard by shard, shard-internal order
    /// unspecified) — the snapshot export path.
    pub fn for_each(&self, mut f: impl FnMut(&K, &V)) {
        for shard in &self.shards {
            let map = shard.map.lock();
            for (k, v) in map.iter() {
                f(k, v);
            }
        }
    }
}

/// An N-way sharded single-flight table: the per-key guarantee (at most
/// one live leader per key) is untouched because a key always routes to
/// the same shard; concurrent flights of *different* keys no longer share
/// a table lock.
#[derive(Debug)]
pub struct ShardedFlight<K, V> {
    shards: Vec<SingleFlight<K, V>>,
    mask: u64,
}

impl<K: Eq + Hash + Copy, V: Clone> ShardedFlight<K, V> {
    /// An empty table split over `shards` (a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is not a power of two.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        assert!(
            shards.is_power_of_two(),
            "shard count must be a power of two, got {shards}"
        );
        ShardedFlight {
            shards: (0..shards).map(|_| SingleFlight::new()).collect(),
            mask: shards as u64 - 1,
        }
    }

    fn shard(&self, key: &K) -> &SingleFlight<K, V> {
        &self.shards[shard_index(key, self.mask)]
    }

    /// Joins the flight for `key` in its shard: leader or follower.
    pub fn join(&self, key: K) -> Flight<V> {
        self.shard(&key).join(key)
    }

    /// Leader-side completion — see [`SingleFlight::complete`].
    pub fn complete(&self, key: &K, slot: &std::sync::Arc<Slot<V>>, value: V) {
        self.shard(key).complete(key, slot, value);
    }

    /// Leader-side failure path — see [`SingleFlight::abandon`].
    pub fn abandon(&self, key: &K, slot: &std::sync::Arc<Slot<V>>) {
        self.shard(key).abandon(key, slot);
    }

    /// Keys currently in flight across every shard.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(SingleFlight::len).sum()
    }

    /// Whether no computation is in flight anywhere.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_knob_resolves_to_powers_of_two() {
        assert_eq!(resolve_shards(0, 8), 8);
        assert_eq!(resolve_shards(1, 8), 1);
        assert_eq!(resolve_shards(3, 8), 4);
        assert_eq!(resolve_shards(8, 8), 8);
        assert_eq!(resolve_shards(9, 8), 16);
        assert_eq!(resolve_shards(100_000, 8), 256, "clamped to 256");
    }

    #[test]
    fn routing_is_deterministic_and_total() {
        let c = ShardedCache::<u64, u64>::new(64, 8);
        for k in 0..100u64 {
            let a = shard_index(&k, c.mask);
            let b = shard_index(&k, c.mask);
            assert_eq!(a, b, "same key, same shard");
            assert!(a < 8);
            assert_eq!(shard_of(&k, 8), a, "public routing matches internal");
        }
    }

    #[test]
    fn sharded_cache_serves_hits_and_counts() {
        let c = ShardedCache::<u64, &'static str>::new(64, 4);
        assert!(c.is_empty());
        c.insert(1, "one");
        c.insert(2, "two");
        assert_eq!(c.get(&1), Some("one"));
        assert_eq!(c.get(&3), None);
        assert_eq!(c.len(), 2);
        let stats = c.stats();
        assert_eq!(stats.len(), 4);
        let hits: u64 = stats.iter().map(|s| s.hits).sum();
        let misses: u64 = stats.iter().map(|s| s.misses).sum();
        let inserts: u64 = stats.iter().map(|s| s.inserts).sum();
        let entries: u64 = stats.iter().map(|s| s.entries).sum();
        assert_eq!((hits, misses, inserts, entries), (1, 1, 2, 2));
    }

    #[test]
    fn keys_spread_across_shards() {
        let c = ShardedCache::<u64, u64>::new(4096, 8);
        for k in 0..4000u64 {
            c.insert(k, k);
        }
        let stats = c.stats();
        let occupied = stats.iter().filter(|s| s.entries > 0).count();
        assert_eq!(occupied, 8, "SipHash spreads 4000 keys over all shards");
        let max = stats.iter().map(|s| s.entries).max().unwrap();
        assert!(max < 1500, "no shard hoards the key space: {stats:?}");
    }

    #[test]
    fn eviction_is_per_shard_and_capacity_at_least_requested() {
        let c = ShardedCache::<u64, u64>::new(16, 4);
        for k in 0..1000u64 {
            c.insert(k, k);
        }
        assert!(c.len() <= 16, "per-shard caps bound the total");
        assert!(c.len() >= 4, "every shard retains its cap");
    }

    #[test]
    fn for_each_visits_every_entry() {
        let c = ShardedCache::<u64, u64>::new(64, 8);
        for k in 0..20u64 {
            c.insert(k, k * 10);
        }
        let mut seen = Vec::new();
        c.for_each(|&k, &v| seen.push((k, v)));
        seen.sort_unstable();
        assert_eq!(seen.len(), 20);
        assert_eq!(seen[7], (7, 70));
    }

    #[test]
    fn sharded_flight_keeps_per_key_leadership() {
        let f = ShardedFlight::<u64, u64>::new(4);
        let Flight::Leader(slot) = f.join(9) else {
            panic!("first join leads")
        };
        assert!(matches!(f.join(9), Flight::Follower(_)));
        assert!(matches!(f.join(10), Flight::Leader(_)));
        assert_eq!(f.len(), 2);
        f.complete(&9, &slot, 81);
        assert_eq!(slot.try_get(), Some(81));
        assert!(
            matches!(f.join(9), Flight::Leader(_)),
            "retired after complete"
        );
    }

    #[test]
    fn concurrent_hits_to_distinct_keys_count_contention_rarely() {
        use std::sync::Arc;

        // Smoke test only: contention is timing-dependent, so assert the
        // counters exist and totals add up, not any particular split.
        let c = Arc::new(ShardedCache::<u64, u64>::new(1024, 8));
        for k in 0..512u64 {
            c.insert(k, k);
        }
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for i in 0..2000u64 {
                        let k = (t * 2000 + i) % 512;
                        assert_eq!(c.get(&k), Some(k));
                    }
                });
            }
        });
        let stats = c.stats();
        let hits: u64 = stats.iter().map(|s| s.hits).sum();
        assert_eq!(hits, 8000, "every lookup was a hit");
    }
}
