//! Query evaluation — the single code path shared by the engine's cached
//! pipeline and the naive direct route.
//!
//! Bit-identity is structural, not numerical: [`direct_eval`] solves
//! `P(k)` and immediately feeds it to [`eval_with_pk`], while the engine
//! solves (or cache-hits) `P(k)` separately and feeds the *same* function.
//! Both routes execute identical floating-point operations in identical
//! order, so a cache hit is indistinguishable from a recompute down to the
//! last bit.

use oaq_analytic::Scheme;

use crate::error::EngineError;
use crate::query::{Measure, QosQuery};

/// The answer to a query.
#[derive(Debug, Clone, PartialEq)]
pub enum QosValue {
    /// A scalar measure: `P(Y ≥ y)`, `P(Y = y | k)` or an OAQ−BAQ gap.
    Scalar(f64),
    /// A distribution: `P(K = k)` for `k = 0..=capacity`.
    Distribution(Vec<f64>),
}

impl QosValue {
    /// The scalar payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is a distribution.
    #[must_use]
    pub fn scalar(&self) -> f64 {
        match self {
            QosValue::Scalar(x) => *x,
            QosValue::Distribution(_) => panic!("expected a scalar, got a distribution"),
        }
    }

    /// The distribution payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is a scalar.
    #[must_use]
    pub fn distribution(&self) -> &[f64] {
        match self {
            QosValue::Distribution(d) => d,
            QosValue::Scalar(_) => panic!("expected a distribution, got a scalar"),
        }
    }
}

/// Evaluates `query` from scratch, single-threaded, no caching. The
/// reference the engine is tested against.
///
/// # Errors
///
/// Propagates capacity-solver failures.
pub fn direct_eval(query: &QosQuery) -> Result<QosValue, EngineError> {
    if query.measure().needs_capacity_solve() {
        let pk = query.capacity_params().distribution()?;
        Ok(eval_with_pk(query, &pk))
    } else {
        Ok(eval_cheap(query))
    }
}

/// Evaluates a capacity-dependent measure against a borrowed `P(k)`
/// (`pk[k] = P(K = k)`). The engine calls this with a cached solve;
/// [`direct_eval`] calls it with a fresh one.
///
/// # Panics
///
/// Panics if the measure is [`Measure::ConditionalQos`] (which needs no
/// `P(k)` — route it through [`eval_cheap`]).
#[must_use]
pub fn eval_with_pk(query: &QosQuery, pk: &[f64]) -> QosValue {
    let cfg = query.evaluation_config();
    match query.measure() {
        Measure::QosAtLeast { scheme, y } => QosValue::Scalar(
            cfg.qos_distribution_with_pk(scheme, pk)
                .p_at_least(usize::from(y)),
        ),
        Measure::CapacityDistribution => QosValue::Distribution(pk.to_vec()),
        Measure::OaqBaqGap { y } => {
            let oaq = cfg
                .qos_distribution_with_pk(Scheme::Oaq, pk)
                .p_at_least(usize::from(y));
            let baq = cfg
                .qos_distribution_with_pk(Scheme::Baq, pk)
                .p_at_least(usize::from(y));
            QosValue::Scalar(oaq - baq)
        }
        Measure::ConditionalQos { .. } | Measure::EmitterTracking { .. } => {
            panic!("measure bypasses the capacity layer")
        }
    }
}

/// Evaluates a measure that needs no capacity solve — the pure G-function
/// layer.
///
/// # Panics
///
/// Panics if the measure needs `P(k)`.
#[must_use]
pub fn eval_cheap(query: &QosQuery) -> QosValue {
    match query.measure() {
        Measure::ConditionalQos { scheme, k, y } => QosValue::Scalar(
            query
                .evaluation_config()
                .conditional(scheme, k)
                .p(usize::from(y)),
        ),
        Measure::EmitterTracking {
            emitters,
            passes,
            seed,
        } => {
            // The tracking workload pins the plane at the replenishment
            // threshold k = η, so the revisit interval is Tr[η] = θ/η.
            let spec = query.spec();
            let revisit = spec.theta / f64::from(spec.eta);
            let report = oaq_core::fullstack::run_emitter_batch(
                spec.theta,
                spec.tc,
                revisit,
                emitters,
                passes,
                u64::from(seed),
            );
            QosValue::Scalar(report.mean_reported_error_km)
        }
        _ => panic!("measure requires the capacity solve"),
    }
}

/// The engine's pluggable evaluation back end.
///
/// The engine owns admission, queueing, coalescing and both cache layers;
/// an `Evaluator` is only the *leaf* compute — the `P(k)` solve and the
/// two G-function evaluation paths. The default methods delegate to the
/// real analytic stack, so implementors override exactly the behaviour
/// they want to change. Fault-injection harnesses (the `engine_faults`
/// bench) wrap these methods with seeded panics and latency spikes; the
/// engine's supervision layer must convert every such fault into a typed
/// answer without losing a query.
///
/// Contract: an evaluator that *returns* must return exactly what the
/// default path returns (the bit-identity property is tested against
/// [`direct_eval`]); injected faults must panic or delay, never perturb
/// values.
pub trait Evaluator: Send + Sync {
    /// Solves the capacity distribution `P(k)` for the query's
    /// (λ, φ, η) scenario.
    ///
    /// # Errors
    ///
    /// Propagates capacity-solver failures.
    fn solve_pk(&self, query: &QosQuery) -> Result<Vec<f64>, EngineError> {
        query
            .capacity_params()
            .distribution()
            .map_err(EngineError::from)
    }

    /// Evaluates a capacity-dependent measure against a solved `P(k)`.
    fn eval_with_pk(&self, query: &QosQuery, pk: &[f64]) -> QosValue {
        eval_with_pk(query, pk)
    }

    /// Evaluates a measure that needs no capacity solve.
    fn eval_cheap(&self, query: &QosQuery) -> QosValue {
        eval_cheap(query)
    }
}

impl std::fmt::Debug for dyn Evaluator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("dyn Evaluator")
    }
}

/// The production evaluator: the real analytic stack, no overrides.
#[derive(Debug, Default, Clone, Copy)]
pub struct DefaultEvaluator;

impl Evaluator for DefaultEvaluator {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QuerySpec;

    #[test]
    fn direct_eval_matches_analytic_stack() {
        let q = QuerySpec::paper_defaults(
            1e-5,
            Measure::QosAtLeast {
                scheme: Scheme::Oaq,
                y: 2,
            },
        )
        .build()
        .unwrap();
        let v = direct_eval(&q).unwrap().scalar();
        let expected = oaq_analytic::EvaluationConfig::paper_defaults(1e-5)
            .qos_distribution(Scheme::Oaq)
            .unwrap()
            .p_at_least(2);
        assert_eq!(v, expected, "must be bit-identical, not just close");
    }

    #[test]
    fn gap_is_positive_and_consistent() {
        let q = QuerySpec::paper_defaults(5e-5, Measure::OaqBaqGap { y: 2 })
            .build()
            .unwrap();
        let gap = direct_eval(&q).unwrap().scalar();
        assert!(gap > 0.0, "OAQ dominates BAQ: {gap}");
        let pk = q.capacity_params().distribution().unwrap();
        assert_eq!(eval_with_pk(&q, &pk).scalar(), gap);
    }

    #[test]
    fn capacity_distribution_is_proper() {
        let q = QuerySpec::paper_defaults(5e-5, Measure::CapacityDistribution)
            .build()
            .unwrap();
        let v = direct_eval(&q).unwrap();
        let d = v.distribution();
        assert_eq!(d.len(), 15);
        let total: f64 = d.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn conditional_skips_capacity_and_matches_paper_value() {
        // P(Y = 3 | k = 12) at tau = 5, mu = 0.5: 0.44 OAQ vs 0.20 BAQ.
        let mut spec = QuerySpec::paper_defaults(
            1e-5,
            Measure::ConditionalQos {
                scheme: Scheme::Oaq,
                k: 12,
                y: 3,
            },
        );
        spec.mu = 0.5;
        let oaq = direct_eval(&spec.build().unwrap()).unwrap().scalar();
        spec.measure = Measure::ConditionalQos {
            scheme: Scheme::Baq,
            k: 12,
            y: 3,
        };
        let baq = direct_eval(&spec.build().unwrap()).unwrap().scalar();
        assert!((oaq - 0.44).abs() < 0.01, "OAQ: {oaq}");
        assert!((baq - 0.20).abs() < 0.01, "BAQ: {baq}");
    }

    #[test]
    fn emitter_tracking_measure_matches_fullstack_batch() {
        let q = QuerySpec::paper_defaults(
            5e-5,
            Measure::EmitterTracking {
                emitters: 6,
                passes: 2,
                seed: 31,
            },
        )
        .build()
        .unwrap();
        let v = direct_eval(&q).unwrap().scalar();
        let expected =
            oaq_core::fullstack::run_emitter_batch(90.0, 9.0, 9.0, 6, 2, 31).mean_reported_error_km;
        assert_eq!(
            v.to_bits(),
            expected.to_bits(),
            "engine route must be bit-identical to the fullstack workload"
        );
        assert!(v.is_finite() && v > 0.0);
    }

    #[test]
    fn delta_eff_shrinks_the_answer() {
        let base = QuerySpec::paper_defaults(
            5e-5,
            Measure::QosAtLeast {
                scheme: Scheme::Oaq,
                y: 3,
            },
        );
        let mut delayed = base;
        delayed.delta_eff = 2.0;
        let full = direct_eval(&base.build().unwrap()).unwrap().scalar();
        let cut = direct_eval(&delayed.build().unwrap()).unwrap().scalar();
        assert!(cut < full, "losing deadline must cost QoS: {cut} vs {full}");
    }
}
