//! The engine facade: configuration, submission, tickets, supervision,
//! shutdown.

use std::sync::Arc;
use std::time::Instant;

use oaq_exec::{ExitKind, SupervisedPool};

use crate::error::{EngineError, RejectReason};
use crate::eval::{DefaultEvaluator, Evaluator, QosValue};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::query::{CapacityKey, QosQuery, QueryKey};
use crate::queue::SubmitQueue;
use crate::shard::{resolve_shards, CacheShardStats, ShardedCache, ShardedFlight};
use crate::shed::{ShedPolicy, Shedder};
use crate::singleflight::{Flight, Slot};
use crate::tenant::{QuotaPolicy, TenantId, TenantSnapshot, TenantTable};
use crate::worker::{worker_loop, EngineResult, Job, Shared, WorkerExit};

/// Engine sizing and serving-policy knobs. `Default` gives a
/// production-shaped engine with every fault-tolerance limit disabled
/// (no quotas, no SLO shedding); tests shrink the queue to exercise
/// backpressure and turn individual policies on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Worker threads; `0` means one per available core.
    pub workers: usize,
    /// Bound of the submission queue — the backpressure point.
    pub queue_capacity: usize,
    /// Maximum queries a worker drains per wakeup.
    pub batch_size: usize,
    /// Capacity of the completed-result LRU (level 1).
    pub result_cache: usize,
    /// Capacity of the `P(k)` capacity-solve LRU (level 2).
    pub pk_cache: usize,
    /// Shard count for both cache layers and both in-flight tables; `0`
    /// means the default (8), other values round up to a power of two
    /// (clamped to 256). One shard reproduces the old single-lock engine.
    pub cache_shards: usize,
    /// Per-tenant admission quotas (rate bucket + queue fair share).
    pub quota: QuotaPolicy,
    /// SLO-aware load shedding policy.
    pub shed: ShedPolicy,
    /// Seed of the shedder's deterministic accept/reject coin.
    pub shed_seed: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 0,
            queue_capacity: 1024,
            batch_size: 32,
            result_cache: 4096,
            pk_cache: 256,
            cache_shards: 0,
            quota: QuotaPolicy::default(),
            shed: ShedPolicy::default(),
            shed_seed: 0x5EED,
        }
    }
}

impl EngineConfig {
    /// The worker count after resolving `0` to the core count.
    #[must_use]
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism().map_or(4, std::num::NonZero::get)
        }
    }

    /// The shard count after resolving `0` to the default and rounding to
    /// a power of two.
    #[must_use]
    pub fn effective_shards(&self) -> usize {
        resolve_shards(self.cache_shards, 8)
    }
}

/// Per-shard counters of both cache layers — the observability that makes
/// the warm-path lock split measurable (`hits`/`misses` localize the hot
/// key space; `contended` counts lock acquisitions that had to wait).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheStatsSnapshot {
    /// Result-cache (level 1) shards, in shard order.
    pub result: Vec<CacheShardStats>,
    /// `P(k)` capacity-cache (level 2) shards, in shard order.
    pub pk: Vec<CacheShardStats>,
}

impl CacheStatsSnapshot {
    /// Total contended lock acquisitions across both layers.
    #[must_use]
    pub fn total_contended(&self) -> u64 {
        self.result
            .iter()
            .chain(&self.pk)
            .map(|s| s.contended)
            .sum()
    }
}

/// A handle to a submitted query's eventual answer.
#[derive(Debug)]
pub struct Ticket {
    inner: TicketInner,
}

#[derive(Debug)]
enum TicketInner {
    Ready(EngineResult),
    Waiting(Arc<Slot<EngineResult>>),
}

impl Ticket {
    /// Blocks until the answer is available.
    pub fn wait(self) -> EngineResult {
        match self.inner {
            TicketInner::Ready(r) => r,
            TicketInner::Waiting(slot) => slot.wait().unwrap_or(Err(EngineError::WorkerLost)),
        }
    }

    /// Non-blocking poll: `Some` once the answer is in.
    #[must_use]
    pub fn try_get(&self) -> Option<EngineResult> {
        match &self.inner {
            TicketInner::Ready(r) => Some(r.clone()),
            TicketInner::Waiting(slot) => slot.try_get(),
        }
    }

    /// Whether the answer was already available at submission (a result
    /// cache hit).
    #[must_use]
    pub fn was_immediate(&self) -> bool {
        matches!(self.inner, TicketInner::Ready(_))
    }
}

/// The in-process QoS query-serving engine.
///
/// Submission flow: validate ([`crate::QuerySpec::build`]) → level-1
/// result-cache lookup (free for quotas) → per-tenant token bucket →
/// SLO shed coin → single-flight coalescing with any identical in-flight
/// query → per-tenant queue fair share → bounded queue admission (typed
/// [`RejectReason::QueueFull`] when saturated) → supervised batch-draining
/// worker pool → level-2 `P(k)` cache inside the solve.
///
/// Workers are supervised: an evaluator panic becomes a typed
/// [`crate::QueryError::EvalPanicked`] answer for every waiter, and the
/// supervisor respawns the dead worker so the pool keeps its configured
/// size. The threads themselves belong to [`oaq_exec::SupervisedPool`];
/// this crate contributes only the semantics — the respawn predicate
/// ("work may still be flowing") and the heal metric. Dropping the engine
/// shuts the queue, drains what was admitted, and joins every worker.
#[derive(Debug)]
pub struct Engine {
    shared: Arc<Shared>,
    config: EngineConfig,
    pool: SupervisedPool,
}

impl Engine {
    /// Starts an engine with `config.effective_workers()` worker threads
    /// and the production evaluator.
    #[must_use]
    pub fn new(config: EngineConfig) -> Self {
        Engine::with_evaluator(config, Arc::new(DefaultEvaluator))
    }

    /// Starts an engine whose leaf compute is `evaluator` — the hook the
    /// fault-injection harness uses to wrap the real analytic stack with
    /// seeded panics and latency spikes.
    #[must_use]
    pub fn with_evaluator(config: EngineConfig, evaluator: Arc<dyn Evaluator>) -> Self {
        let shards = config.effective_shards();
        let shared = Arc::new(Shared {
            queue: SubmitQueue::new(config.queue_capacity),
            results: ShardedCache::new(config.result_cache, shards),
            flight: ShardedFlight::new(shards),
            pk_cache: ShardedCache::new(config.pk_cache, shards),
            pk_flight: ShardedFlight::new(shards),
            metrics: Metrics::new(),
            tenants: TenantTable::new(config.quota, config.queue_capacity),
            shedder: Shedder::new(config.shed, config.shed_seed),
            evaluator,
            epoch: Instant::now(),
            batch_size: config.batch_size.max(1),
        });
        let workers = config.effective_workers();
        let work_shared = Arc::clone(&shared);
        let respawn_shared = Arc::clone(&shared);
        let heal_shared = Arc::clone(&shared);
        let pool = SupervisedPool::start(
            workers,
            move || match worker_loop(&work_shared) {
                WorkerExit::Drained => ExitKind::Clean,
                WorkerExit::Panicked => ExitKind::Panicked,
            },
            // A worker died with work (potentially) still flowing:
            // replace it so the pool heals to its configured size. (A
            // panic during the final drain retires the slot instead.)
            move || !respawn_shared.queue.is_drained(),
            move || heal_shared.metrics.on_worker_respawn(),
        );
        Engine {
            shared,
            config,
            pool,
        }
    }

    /// An engine with default sizing.
    #[must_use]
    pub fn with_defaults() -> Self {
        Engine::new(EngineConfig::default())
    }

    /// Submits a validated query.
    ///
    /// Returns immediately: a [`Ticket`] (possibly already resolved, on a
    /// cache hit) or a typed rejection. Never blocks on a full queue —
    /// backpressure is the caller's to handle.
    ///
    /// # Errors
    ///
    /// [`EngineError::Rejected`] with
    /// [`RejectReason::QuotaExceeded`] when the query's tenant is out of
    /// rate tokens or queue share (retryable after a refill interval),
    /// [`RejectReason::Overloaded`] when the SLO shedder rejects new work
    /// during a p99 breach, [`RejectReason::QueueFull`] when the
    /// submission queue is at capacity, or [`RejectReason::ShuttingDown`]
    /// during teardown. Cache hits are exempt from quotas and shedding —
    /// they cost nothing to serve.
    pub fn submit(&self, query: QosQuery) -> Result<Ticket, EngineError> {
        let key = query.key();
        let tenant = query.tenant();
        let now_s = self.shared.now_s();
        if let Some(result) = self.shared.results.get(&key) {
            self.shared.tenants.admit(tenant, now_s, true);
            self.shared.metrics.on_submitted();
            self.shared.metrics.on_result_cache_hit();
            self.shared.metrics.on_served();
            return Ok(Ticket {
                inner: TicketInner::Ready(result),
            });
        }
        // Quota gate: a cache-missing submission costs one rate token.
        if !self.shared.tenants.admit(tenant, now_s, false) {
            self.shared.metrics.on_quota_rejected();
            self.shared.metrics.on_rejected();
            return Err(EngineError::Rejected(RejectReason::QuotaExceeded {
                tenant,
            }));
        }
        // SLO gate: probabilistically shed new work while the end-to-end
        // p99 breaches the configured target.
        if self
            .shared
            .shedder
            .should_shed(self.shared.metrics.e2e_p99())
        {
            self.shared.metrics.on_shed();
            self.shared.metrics.on_rejected();
            return Err(EngineError::Rejected(RejectReason::Overloaded));
        }
        match self.shared.flight.join(key) {
            Flight::Follower(slot) => {
                self.shared.metrics.on_submitted();
                self.shared.metrics.on_coalesced();
                self.shared.tenants.on_coalesced(tenant, now_s);
                Ok(Ticket {
                    inner: TicketInner::Waiting(slot),
                })
            }
            Flight::Leader(slot) => {
                // Fair-share gate: the tenant must hold a queue slot
                // within its weighted share before the global push.
                if !self.shared.tenants.try_reserve_queue_slot(tenant, now_s) {
                    self.shared.flight.abandon(&key, &slot);
                    self.shared.metrics.on_quota_rejected();
                    self.shared.metrics.on_rejected();
                    return Err(EngineError::Rejected(RejectReason::QuotaExceeded {
                        tenant,
                    }));
                }
                let job = Job {
                    query,
                    key,
                    slot: Arc::clone(&slot),
                    submitted: Instant::now(),
                };
                match self.shared.queue.try_push(job) {
                    Ok(()) => {
                        self.shared.metrics.on_submitted();
                        Ok(Ticket {
                            inner: TicketInner::Waiting(slot),
                        })
                    }
                    Err((_, reason)) => {
                        // Retire the flight; any follower that slipped in
                        // during this window wakes with `WorkerLost` and
                        // should resubmit. (The rejected Job abandons the
                        // slot on drop, before we retire the table entry.)
                        self.shared.tenants.release_queue_slot(tenant);
                        self.shared.flight.abandon(&key, &slot);
                        self.shared.metrics.on_rejected();
                        Err(EngineError::Rejected(reason))
                    }
                }
            }
        }
    }

    /// Submit-and-wait convenience for embedders that want a synchronous
    /// call.
    ///
    /// # Errors
    ///
    /// Same as [`Self::submit`], plus any evaluation error.
    pub fn evaluate(&self, query: QosQuery) -> EngineResult {
        self.submit(query)?.wait()
    }

    /// Replays a whole batch: submits every query in order — absorbing
    /// queue backpressure by yielding to the workers and retrying — then
    /// waits for every answer. Answers come back in submission order.
    /// Quota and shed rejections are terminal here (they are the policy
    /// speaking, not transient backpressure) and surface in the output.
    #[must_use]
    pub fn run_all(&self, queries: &[QosQuery]) -> Vec<EngineResult> {
        let mut tickets = Vec::with_capacity(queries.len());
        for &q in queries {
            loop {
                match self.submit(q) {
                    Ok(t) => {
                        tickets.push(t);
                        break;
                    }
                    Err(EngineError::Rejected(RejectReason::QueueFull { .. })) => {
                        std::thread::yield_now();
                    }
                    Err(e) => {
                        tickets.push(Ticket {
                            inner: TicketInner::Ready(Err(e)),
                        });
                        break;
                    }
                }
            }
        }
        tickets.into_iter().map(Ticket::wait).collect()
    }

    /// A consistent snapshot of the engine's counters, including the
    /// shedder's live rejection-probability gauge.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = self.shared.metrics.snapshot();
        snap.shed_probability = self.shared.shedder.probability();
        snap
    }

    /// Per-tenant admission counters, ordered by tenant id.
    #[must_use]
    pub fn tenant_metrics(&self) -> Vec<TenantSnapshot> {
        self.shared.tenants.snapshot()
    }

    /// Sets a tenant's fair-share weight (default `1.0`). Non-finite or
    /// non-positive weights are coerced back to `1.0`.
    pub fn set_tenant_weight(&self, tenant: TenantId, weight: f64) {
        self.shared
            .tenants
            .set_weight(tenant, weight, self.shared.now_s());
    }

    /// The configuration this engine was started with.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Queries currently waiting in the submission queue.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// Per-shard cache counters for both layers — the diagnosis surface
    /// for warm-path lock contention.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStatsSnapshot {
        CacheStatsSnapshot {
            result: self.shared.results.stats(),
            pk: self.shared.pk_cache.stats(),
        }
    }

    /// Every successfully computed result currently cached, sorted by
    /// encoded key for a deterministic snapshot order. Error outcomes are
    /// never cached, so every exported value is a [`QosValue`].
    #[must_use]
    pub fn export_result_cache(&self) -> Vec<(QueryKey, QosValue)> {
        let mut out = Vec::new();
        self.shared.results.for_each(|k, v| {
            if let Ok(value) = v {
                out.push((*k, value.clone()));
            }
        });
        out.sort_by_key(|(k, _)| k.encode());
        out
    }

    /// Every cached `P(k)` capacity distribution, sorted by encoded key.
    #[must_use]
    pub fn export_pk_cache(&self) -> Vec<(CapacityKey, Vec<f64>)> {
        let mut out = Vec::new();
        self.shared.pk_cache.for_each(|k, v| {
            out.push((*k, v.as_ref().clone()));
        });
        out.sort_by_key(|(k, _)| k.encode());
        out
    }

    /// Seeds the result cache with a previously exported entry (snapshot
    /// warm-start). Bypasses admission and metrics: preloading is
    /// provisioning, not serving.
    pub fn preload_result(&self, key: QueryKey, value: QosValue) {
        self.shared.results.insert(key, Ok(value));
    }

    /// Seeds the `P(k)` cache with a previously exported entry.
    pub fn preload_pk(&self, key: CapacityKey, pk: Vec<f64>) {
        self.shared.pk_cache.insert(key, Arc::new(pk));
    }

    /// Stops admission, drains already-admitted work, and joins every
    /// worker. Idempotent; called automatically on drop. Takes `&self` so
    /// an `Arc<Engine>` shared across connection handlers can still be
    /// wound down by its owner.
    pub fn shutdown(&self) {
        self.shared.queue.shutdown();
        self.pool.join();
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::QueryError;
    use crate::eval::{direct_eval, QosValue};
    use crate::query::{Measure, QuerySpec, Scheme};

    fn small_engine(workers: usize, queue: usize) -> Engine {
        Engine::new(EngineConfig {
            workers,
            queue_capacity: queue,
            batch_size: 4,
            result_cache: 128,
            pk_cache: 16,
            ..EngineConfig::default()
        })
    }

    fn y2(lambda: f64) -> QosQuery {
        QuerySpec::paper_defaults(
            lambda,
            Measure::QosAtLeast {
                scheme: Scheme::Oaq,
                y: 2,
            },
        )
        .build()
        .unwrap()
    }

    #[test]
    fn serves_and_caches_bit_identically() {
        let engine = small_engine(2, 64);
        let q = y2(5e-5);
        let direct = direct_eval(&q).unwrap();
        let cold = engine.evaluate(q).unwrap();
        let warm = engine.evaluate(q).unwrap();
        assert_eq!(cold, direct, "cold engine answer == direct evaluation");
        assert_eq!(warm, direct, "cache hit == direct evaluation");
        let m = engine.metrics();
        assert_eq!(m.submitted, 2);
        assert_eq!(m.served, 2);
        assert_eq!(m.result_cache_hits, 1);
        assert_eq!(m.pk_solves, 1);
    }

    #[test]
    fn queue_full_is_a_typed_rejection() {
        // No workers draining: the supervisor spawns 1 worker, but a full
        // queue of slow jobs forces rejection of the overflow.
        let engine = small_engine(1, 2);
        let mut tickets = Vec::new();
        let mut rejected = 0;
        // Distinct lambdas defeat the caches so every job needs a solve.
        for i in 0..40u32 {
            match engine.submit(y2(1e-5 + f64::from(i) * 1e-6)) {
                Ok(t) => tickets.push(t),
                Err(EngineError::Rejected(RejectReason::QueueFull { capacity })) => {
                    assert_eq!(capacity, 2);
                    rejected += 1;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(rejected > 0, "a 2-slot queue must reject under a 40-burst");
        let m = engine.metrics();
        assert_eq!(m.rejected, rejected);
        for t in tickets {
            assert!(t.wait().is_ok());
        }
    }

    #[test]
    fn identical_inflight_queries_coalesce() {
        let engine = small_engine(1, 64);
        let q = y2(3e-5);
        let tickets: Vec<Ticket> = (0..8).map(|_| engine.submit(q).unwrap()).collect();
        let answers: Vec<EngineResult> = tickets.into_iter().map(Ticket::wait).collect();
        let first = answers[0].clone().unwrap();
        for a in &answers {
            assert_eq!(a.as_ref().unwrap(), &first);
        }
        let m = engine.metrics();
        assert_eq!(m.submitted, 8);
        assert!(
            m.coalesced + m.result_cache_hits >= 7,
            "at most one of 8 identical queries may compute: {m:?}"
        );
        assert_eq!(m.pk_solves, 1);
    }

    #[test]
    fn shutdown_drains_admitted_work() {
        let engine = small_engine(2, 64);
        let tickets: Vec<Ticket> = (0..6)
            .map(|i| engine.submit(y2(2e-5 + f64::from(i) * 1e-6)).unwrap())
            .collect();
        engine.shutdown();
        for t in tickets {
            assert!(t.wait().is_ok(), "admitted work survives shutdown");
        }
        assert!(matches!(
            engine.submit(y2(9e-5)),
            Err(EngineError::Rejected(RejectReason::ShuttingDown))
        ));
    }

    #[test]
    fn tau_sweep_reuses_one_capacity_solve() {
        // The two-level cache contract: sweeping τ at fixed (λ, φ, η)
        // must run exactly one CTMC solve.
        let engine = small_engine(1, 64);
        for i in 0..10u32 {
            let mut spec = QuerySpec::paper_defaults(
                5e-5,
                Measure::QosAtLeast {
                    scheme: Scheme::Oaq,
                    y: 2,
                },
            );
            spec.tau = 1.0 + f64::from(i) * 0.5;
            engine.evaluate(spec.build().unwrap()).unwrap();
        }
        let m = engine.metrics();
        assert_eq!(m.pk_solves, 1, "τ sweep at fixed scenario: one solve");
        assert_eq!(m.pk_cache_hits, 9);
        assert_eq!(m.result_cache_hits, 0, "all ten results are distinct");
    }

    /// End-to-end supervision: a panicking evaluator yields typed
    /// `EvalPanicked` answers for every submission, the pool respawns,
    /// and healthy queries afterwards still get correct answers.
    #[test]
    fn panicking_evaluator_heals_and_keeps_serving() {
        use std::sync::atomic::{AtomicU64, Ordering};

        /// Panics on every odd `P(k)` solve, counts calls.
        struct FlakyEvaluator {
            calls: AtomicU64,
        }
        impl Evaluator for FlakyEvaluator {
            fn solve_pk(&self, query: &QosQuery) -> Result<Vec<f64>, EngineError> {
                let n = self.calls.fetch_add(1, Ordering::SeqCst);
                assert!(n < 1_000, "runaway respawn loop");
                if n.is_multiple_of(2) {
                    std::panic::panic_any(crate::INJECTED_FAULT);
                }
                query
                    .capacity_params()
                    .distribution()
                    .map_err(EngineError::from)
            }
        }

        crate::silence_injected_panics();
        let engine = Engine::with_evaluator(
            EngineConfig {
                workers: 2,
                queue_capacity: 32,
                batch_size: 4,
                result_cache: 64,
                pk_cache: 16,
                ..EngineConfig::default()
            },
            Arc::new(FlakyEvaluator {
                calls: AtomicU64::new(0),
            }),
        );
        let mut panicked = 0;
        let mut ok = 0;
        for i in 0..20u32 {
            let q = y2(1e-5 + f64::from(i) * 1e-6);
            match engine.evaluate(q) {
                Ok(v) => {
                    assert_eq!(v, direct_eval(&q).unwrap(), "bit-identical");
                    ok += 1;
                }
                Err(EngineError::Query(QueryError::EvalPanicked))
                | Err(EngineError::WorkerLost) => panicked += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(ok + panicked, 20, "every submit reaches a terminal outcome");
        assert!(ok >= 9, "even solves succeed: {ok}");
        assert!(panicked >= 9, "odd solves panic: {panicked}");
        let m = engine.metrics();
        assert!(m.eval_panics >= 9);
        assert!(
            m.worker_respawns >= m.eval_panics.saturating_sub(2),
            "the pool heals after panics: {} respawns for {} panics",
            m.worker_respawns,
            m.eval_panics
        );
    }

    /// An expired deadline is a typed per-query error; queries without a
    /// deadline are untouched.
    #[test]
    fn deadlines_are_enforced_per_query() {
        let engine = small_engine(1, 64);
        // A deadline far too short for a cold CTMC solve.
        let hurried = y2(4e-5).with_deadline_ms(1e-3).unwrap();
        match engine.evaluate(hurried) {
            Err(EngineError::Query(QueryError::DeadlineExceeded { waited_ms, .. })) => {
                assert!(waited_ms >= 1e-3);
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        // A generous deadline passes untouched, bit-identically.
        let relaxed = y2(4e-5).with_deadline_ms(60_000.0).unwrap();
        let v = engine.evaluate(relaxed).unwrap();
        assert_eq!(v, direct_eval(&y2(4e-5)).unwrap());
        assert!(engine.metrics().deadline_expired >= 1);
    }

    /// Quota isolation: a flooding tenant collects `QuotaExceeded` while
    /// a polite tenant keeps being served.
    #[test]
    fn flooding_tenant_is_isolated_by_quota() {
        use crate::tenant::TenantId;

        let engine = Engine::new(EngineConfig {
            workers: 2,
            queue_capacity: 16,
            batch_size: 4,
            result_cache: 1,
            pk_cache: 16,
            quota: QuotaPolicy {
                rate_per_sec: 0.0,
                burst: 5.0,
                queue_share: 0.25,
            },
            ..EngineConfig::default()
        });
        let flooder = TenantId(1);
        let polite = TenantId(2);
        let mut flooder_rejected = 0;
        for i in 0..50u32 {
            let q = y2(1e-5 + f64::from(i) * 1e-6).for_tenant(flooder);
            match engine.submit(q) {
                Ok(t) => drop(t),
                Err(EngineError::Rejected(RejectReason::QuotaExceeded { tenant })) => {
                    assert_eq!(tenant, flooder);
                    flooder_rejected += 1;
                }
                Err(EngineError::Rejected(RejectReason::QueueFull { .. })) => {}
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(
            flooder_rejected >= 45,
            "a 5-burst bucket must reject a 50-flood: {flooder_rejected}"
        );
        // The polite tenant (fresh bucket) is admitted and served.
        let q = y2(9e-5).for_tenant(polite);
        assert!(engine.evaluate(q).is_ok(), "other tenants keep their share");
        let snaps = engine.tenant_metrics();
        let f = snaps.iter().find(|s| s.tenant == flooder).unwrap();
        let p = snaps.iter().find(|s| s.tenant == polite).unwrap();
        assert_eq!(f.quota_rejected, flooder_rejected);
        assert_eq!(p.quota_rejected, 0);
    }

    /// The SLO shedder rejects with `Overloaded` during a breach and the
    /// gauge surfaces in the metrics snapshot.
    #[test]
    fn slo_breach_sheds_with_typed_rejection() {
        let engine = Engine::new(EngineConfig {
            workers: 1,
            queue_capacity: 64,
            batch_size: 4,
            result_cache: 1,
            pk_cache: 16,
            // An SLO no real solve can meet: every completion breaches.
            shed: ShedPolicy::with_slo(1e-12),
            ..EngineConfig::default()
        });
        let mut shed = 0;
        for i in 0..400u32 {
            let q = y2(1e-5 + f64::from(i) * 1e-6);
            match engine.evaluate(q) {
                Ok(_) => {}
                Err(EngineError::Rejected(RejectReason::Overloaded)) => shed += 1,
                Err(EngineError::Rejected(RejectReason::QueueFull { .. })) => {}
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(shed > 0, "a breached SLO must shed some work");
        let m = engine.metrics();
        assert_eq!(m.shed, shed);
        assert!(m.shed_probability > 0.0, "the gauge reflects the breach");
    }

    /// The drained-engine accounting invariant survives the new gates:
    /// submitted == served + coalesced, with rejections outside.
    #[test]
    fn accounting_invariant_holds_with_policies_enabled() {
        let engine = Engine::new(EngineConfig {
            workers: 2,
            queue_capacity: 8,
            batch_size: 4,
            result_cache: 64,
            pk_cache: 16,
            quota: QuotaPolicy {
                rate_per_sec: 50.0,
                burst: 20.0,
                queue_share: 0.5,
            },
            ..EngineConfig::default()
        });
        let mut tickets = Vec::new();
        for i in 0..60u32 {
            let q = y2(1e-5 + f64::from(i % 7) * 1e-6).for_tenant(TenantId(i % 3));
            if let Ok(t) = engine.submit(q) {
                tickets.push(t);
            }
        }
        for t in tickets {
            let _ = t.wait();
        }
        engine.shutdown();
        let m = engine.metrics();
        assert_eq!(
            m.submitted,
            m.served + m.coalesced,
            "drained engine: submitted == served + coalesced ({m:?})"
        );
    }

    /// `QosValue` answers delivered after supervision remain `Ok` results
    /// from the real evaluator — the wrapper never perturbs values.
    #[test]
    fn supervision_does_not_perturb_values() {
        let engine = small_engine(2, 64);
        for i in 0..10u32 {
            let q = y2(2e-5 + f64::from(i) * 1e-6);
            let got = engine.evaluate(q).unwrap();
            let QosValue::Scalar(x) = got else {
                panic!("scalar expected")
            };
            let QosValue::Scalar(want) = direct_eval(&q).unwrap() else {
                panic!("scalar expected")
            };
            assert!(
                x.to_bits() == want.to_bits(),
                "bit-identical: {x} vs {want}"
            );
        }
    }
}
