//! The engine facade: configuration, submission, tickets, shutdown.

use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use crate::cache::LruCache;
use crate::error::EngineError;
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::query::QosQuery;
use crate::queue::SubmitQueue;
use crate::singleflight::{Flight, SingleFlight, Slot};
use crate::worker::{worker_loop, EngineResult, Job, Shared};

/// Engine sizing knobs. `Default` gives a production-shaped engine; tests
/// shrink the queue to exercise backpressure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads; `0` means one per available core.
    pub workers: usize,
    /// Bound of the submission queue — the backpressure point.
    pub queue_capacity: usize,
    /// Maximum queries a worker drains per wakeup.
    pub batch_size: usize,
    /// Capacity of the completed-result LRU (level 1).
    pub result_cache: usize,
    /// Capacity of the `P(k)` capacity-solve LRU (level 2).
    pub pk_cache: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 0,
            queue_capacity: 1024,
            batch_size: 32,
            result_cache: 4096,
            pk_cache: 256,
        }
    }
}

impl EngineConfig {
    /// The worker count after resolving `0` to the core count.
    #[must_use]
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism().map_or(4, std::num::NonZero::get)
        }
    }
}

/// A handle to a submitted query's eventual answer.
#[derive(Debug)]
pub struct Ticket {
    inner: TicketInner,
}

#[derive(Debug)]
enum TicketInner {
    Ready(EngineResult),
    Waiting(Arc<Slot<EngineResult>>),
}

impl Ticket {
    /// Blocks until the answer is available.
    pub fn wait(self) -> EngineResult {
        match self.inner {
            TicketInner::Ready(r) => r,
            TicketInner::Waiting(slot) => slot.wait().unwrap_or(Err(EngineError::WorkerLost)),
        }
    }

    /// Non-blocking poll: `Some` once the answer is in.
    #[must_use]
    pub fn try_get(&self) -> Option<EngineResult> {
        match &self.inner {
            TicketInner::Ready(r) => Some(r.clone()),
            TicketInner::Waiting(slot) => slot.try_get(),
        }
    }

    /// Whether the answer was already available at submission (a result
    /// cache hit).
    #[must_use]
    pub fn was_immediate(&self) -> bool {
        matches!(self.inner, TicketInner::Ready(_))
    }
}

/// The in-process QoS query-serving engine.
///
/// Submission flow: validate ([`crate::QuerySpec::build`]) → level-1
/// result-cache lookup → single-flight coalescing with any identical
/// in-flight query → bounded queue admission (typed
/// [`RejectReason::QueueFull`](crate::error::RejectReason::QueueFull) when saturated) → batch-draining worker
/// pool → level-2 `P(k)` cache inside the solve. Dropping the engine
/// shuts the queue, drains what was admitted, and joins every worker.
#[derive(Debug)]
pub struct Engine {
    shared: Arc<Shared>,
    config: EngineConfig,
    supervisor: Option<std::thread::JoinHandle<()>>,
}

impl Engine {
    /// Starts an engine with `config.effective_workers()` worker threads.
    #[must_use]
    pub fn new(config: EngineConfig) -> Self {
        let shared = Arc::new(Shared {
            queue: SubmitQueue::new(config.queue_capacity),
            results: Mutex::new(LruCache::new(config.result_cache)),
            flight: SingleFlight::new(),
            pk_cache: Mutex::new(LruCache::new(config.pk_cache)),
            pk_flight: SingleFlight::new(),
            metrics: Metrics::new(),
            batch_size: config.batch_size.max(1),
        });
        let workers = config.effective_workers();
        let pool = Arc::clone(&shared);
        let supervisor = std::thread::spawn(move || {
            // A worker panic surfaces here as Err; the guard in the worker
            // loop has already woken that query's followers, and the
            // remaining workers keep draining.
            let _ = crossbeam::scope(|s| {
                for _ in 0..workers {
                    let shared = Arc::clone(&pool);
                    s.spawn(move |_| worker_loop(&shared));
                }
            });
        });
        Engine {
            shared,
            config,
            supervisor: Some(supervisor),
        }
    }

    /// An engine with default sizing.
    #[must_use]
    pub fn with_defaults() -> Self {
        Engine::new(EngineConfig::default())
    }

    /// Submits a validated query.
    ///
    /// Returns immediately: a [`Ticket`] (possibly already resolved, on a
    /// cache hit) or a typed rejection. Never blocks on a full queue —
    /// backpressure is the caller's to handle.
    ///
    /// # Errors
    ///
    /// [`EngineError::Rejected`] with [`RejectReason::QueueFull`](crate::error::RejectReason::QueueFull) when the
    /// submission queue is at capacity, or [`RejectReason::ShuttingDown`](crate::error::RejectReason::ShuttingDown)
    /// during teardown.
    pub fn submit(&self, query: QosQuery) -> Result<Ticket, EngineError> {
        let key = query.key();
        if let Some(result) = self.shared.results.lock().get(&key) {
            self.shared.metrics.on_submitted();
            self.shared.metrics.on_result_cache_hit();
            self.shared.metrics.on_served();
            return Ok(Ticket {
                inner: TicketInner::Ready(result.clone()),
            });
        }
        match self.shared.flight.join(key) {
            Flight::Follower(slot) => {
                self.shared.metrics.on_submitted();
                self.shared.metrics.on_coalesced();
                Ok(Ticket {
                    inner: TicketInner::Waiting(slot),
                })
            }
            Flight::Leader(slot) => {
                let job = Job {
                    query,
                    key,
                    slot: Arc::clone(&slot),
                    submitted: Instant::now(),
                };
                match self.shared.queue.try_push(job) {
                    Ok(()) => {
                        self.shared.metrics.on_submitted();
                        Ok(Ticket {
                            inner: TicketInner::Waiting(slot),
                        })
                    }
                    Err((_, reason)) => {
                        // Retire the flight; any follower that slipped in
                        // during this window wakes with `WorkerLost` and
                        // should resubmit.
                        self.shared.flight.abandon(&key, &slot);
                        self.shared.metrics.on_rejected();
                        Err(EngineError::Rejected(reason))
                    }
                }
            }
        }
    }

    /// Submit-and-wait convenience for embedders that want a synchronous
    /// call.
    ///
    /// # Errors
    ///
    /// Same as [`Self::submit`], plus any evaluation error.
    pub fn evaluate(&self, query: QosQuery) -> EngineResult {
        self.submit(query)?.wait()
    }

    /// Replays a whole batch: submits every query in order — absorbing
    /// queue backpressure by yielding to the workers and retrying — then
    /// waits for every answer. Answers come back in submission order.
    #[must_use]
    pub fn run_all(&self, queries: &[QosQuery]) -> Vec<EngineResult> {
        let mut tickets = Vec::with_capacity(queries.len());
        for &q in queries {
            loop {
                match self.submit(q) {
                    Ok(t) => {
                        tickets.push(t);
                        break;
                    }
                    Err(EngineError::Rejected(crate::error::RejectReason::QueueFull {
                        ..
                    })) => std::thread::yield_now(),
                    Err(e) => {
                        tickets.push(Ticket {
                            inner: TicketInner::Ready(Err(e)),
                        });
                        break;
                    }
                }
            }
        }
        tickets.into_iter().map(Ticket::wait).collect()
    }

    /// A consistent snapshot of the engine's counters.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// The configuration this engine was started with.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Queries currently waiting in the submission queue.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// Stops admission, drains already-admitted work, and joins every
    /// worker. Called automatically on drop.
    pub fn shutdown(&mut self) {
        self.shared.queue.shutdown();
        if let Some(handle) = self.supervisor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::RejectReason;
    use crate::eval::direct_eval;
    use crate::query::{Measure, QuerySpec, Scheme};

    fn small_engine(workers: usize, queue: usize) -> Engine {
        Engine::new(EngineConfig {
            workers,
            queue_capacity: queue,
            batch_size: 4,
            result_cache: 128,
            pk_cache: 16,
        })
    }

    fn y2(lambda: f64) -> QosQuery {
        QuerySpec::paper_defaults(
            lambda,
            Measure::QosAtLeast {
                scheme: Scheme::Oaq,
                y: 2,
            },
        )
        .build()
        .unwrap()
    }

    #[test]
    fn serves_and_caches_bit_identically() {
        let engine = small_engine(2, 64);
        let q = y2(5e-5);
        let direct = direct_eval(&q).unwrap();
        let cold = engine.evaluate(q).unwrap();
        let warm = engine.evaluate(q).unwrap();
        assert_eq!(cold, direct, "cold engine answer == direct evaluation");
        assert_eq!(warm, direct, "cache hit == direct evaluation");
        let m = engine.metrics();
        assert_eq!(m.submitted, 2);
        assert_eq!(m.served, 2);
        assert_eq!(m.result_cache_hits, 1);
        assert_eq!(m.pk_solves, 1);
    }

    #[test]
    fn queue_full_is_a_typed_rejection() {
        // No workers draining: the supervisor spawns 1 worker, but a full
        // queue of slow jobs forces rejection of the overflow.
        let engine = small_engine(1, 2);
        let mut tickets = Vec::new();
        let mut rejected = 0;
        // Distinct lambdas defeat the caches so every job needs a solve.
        for i in 0..40u32 {
            match engine.submit(y2(1e-5 + f64::from(i) * 1e-6)) {
                Ok(t) => tickets.push(t),
                Err(EngineError::Rejected(RejectReason::QueueFull { capacity })) => {
                    assert_eq!(capacity, 2);
                    rejected += 1;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(rejected > 0, "a 2-slot queue must reject under a 40-burst");
        let m = engine.metrics();
        assert_eq!(m.rejected, rejected);
        for t in tickets {
            assert!(t.wait().is_ok());
        }
    }

    #[test]
    fn identical_inflight_queries_coalesce() {
        let engine = small_engine(1, 64);
        let q = y2(3e-5);
        let tickets: Vec<Ticket> = (0..8).map(|_| engine.submit(q).unwrap()).collect();
        let answers: Vec<EngineResult> = tickets.into_iter().map(Ticket::wait).collect();
        let first = answers[0].clone().unwrap();
        for a in &answers {
            assert_eq!(a.as_ref().unwrap(), &first);
        }
        let m = engine.metrics();
        assert_eq!(m.submitted, 8);
        assert!(
            m.coalesced + m.result_cache_hits >= 7,
            "at most one of 8 identical queries may compute: {m:?}"
        );
        assert_eq!(m.pk_solves, 1);
    }

    #[test]
    fn shutdown_drains_admitted_work() {
        let mut engine = small_engine(2, 64);
        let tickets: Vec<Ticket> = (0..6)
            .map(|i| engine.submit(y2(2e-5 + f64::from(i) * 1e-6)).unwrap())
            .collect();
        engine.shutdown();
        for t in tickets {
            assert!(t.wait().is_ok(), "admitted work survives shutdown");
        }
        assert!(matches!(
            engine.submit(y2(9e-5)),
            Err(EngineError::Rejected(RejectReason::ShuttingDown))
        ));
    }

    #[test]
    fn tau_sweep_reuses_one_capacity_solve() {
        // The two-level cache contract: sweeping τ at fixed (λ, φ, η)
        // must run exactly one CTMC solve.
        let engine = small_engine(1, 64);
        for i in 0..10u32 {
            let mut spec = QuerySpec::paper_defaults(
                5e-5,
                Measure::QosAtLeast {
                    scheme: Scheme::Oaq,
                    y: 2,
                },
            );
            spec.tau = 1.0 + f64::from(i) * 0.5;
            engine.evaluate(spec.build().unwrap()).unwrap();
        }
        let m = engine.metrics();
        assert_eq!(m.pk_solves, 1, "τ sweep at fixed scenario: one solve");
        assert_eq!(m.pk_cache_hits, 9);
        assert_eq!(m.result_cache_hits, 0, "all ten results are distinct");
    }
}
