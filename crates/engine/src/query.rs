//! Validated QoS queries and their exact cache keys.
//!
//! A [`QosQuery`] can only be obtained by building a [`QuerySpec`], which
//! rejects non-finite and out-of-domain parameters with a typed
//! [`QueryError`] — NaN never enters the engine, so bit-exact cache keys
//! over raw IEEE-754 bit patterns are well defined (validated values are
//! finite and positive, ruling out the `-0.0`/`0.0` aliasing case).

use oaq_analytic::capacity::CapacityParams;
use oaq_analytic::compose::EvaluationConfig;
use oaq_analytic::params::{require_in_range, require_int_in_range, require_positive};
use oaq_analytic::qos::QosParams;
pub use oaq_analytic::Scheme;

use crate::error::QueryError;
use crate::tenant::TenantId;

/// Active capacity of the reference plane (paper Section 4.1).
pub const REFERENCE_CAPACITY: u32 = 14;
/// In-orbit spares of the reference plane.
pub const REFERENCE_SPARES: u32 = 2;

/// The measure a query asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Measure {
    /// The composed QoS measure `P(Y ≥ y)` (Eq. 3) — needs the capacity
    /// solve.
    QosAtLeast {
        /// Scheme under evaluation.
        scheme: Scheme,
        /// QoS level `y ∈ 0..=3`.
        y: u8,
    },
    /// The conditional `P(Y = y | k)` — pure G-function layer, no capacity
    /// solve.
    ConditionalQos {
        /// Scheme under evaluation.
        scheme: Scheme,
        /// Conditioning capacity `k ∈ 1..=14`.
        k: u32,
        /// QoS level `y ∈ 0..=3`.
        y: u8,
    },
    /// The full capacity distribution `P(K = k)`, `k = 0..=14` (Figure 7).
    CapacityDistribution,
    /// The OAQ-vs-BAQ gap `P_OAQ(Y ≥ y) − P_BAQ(Y ≥ y)` — one capacity
    /// solve, two compositions.
    OaqBaqGap {
        /// QoS level `y ∈ 0..=3`.
        y: u8,
    },
    /// The many-emitter tracking workload: `emitters` independent tracks of
    /// `passes` revisits each, solved through the batched SoA WLS path;
    /// answers the mean reported (TC-1) error radius in km. No capacity
    /// solve — the track geometry is derived from the query's (θ, Tc, η)
    /// alone.
    EmitterTracking {
        /// Concurrent emitter tracks, `1..=4096`.
        emitters: u32,
        /// Passes accumulated per track, `1..=8`.
        passes: u32,
        /// Base seed of the per-emitter measurement-noise substreams (part
        /// of the cache identity: different seeds are different answers).
        seed: u32,
    },
}

fn scheme_code(scheme: Scheme) -> u32 {
    match scheme {
        Scheme::Oaq => 0,
        Scheme::Baq => 1,
    }
}

fn scheme_from_code(code: u32) -> Option<Scheme> {
    match code {
        0 => Some(Scheme::Oaq),
        1 => Some(Scheme::Baq),
        _ => None,
    }
}

impl Measure {
    /// Whether answering this measure requires the (expensive) capacity
    /// CTMC solve, as opposed to the cheap G-function layer alone.
    #[must_use]
    pub fn needs_capacity_solve(&self) -> bool {
        !matches!(
            self,
            Measure::ConditionalQos { .. } | Measure::EmitterTracking { .. }
        )
    }

    /// A fixed-width `[tag, scheme, k, y]` encoding for the wire protocol
    /// and the cache-snapshot format. Round-trips exactly through
    /// [`Measure::decode`].
    #[must_use]
    pub fn encode(self) -> [u32; 4] {
        match self {
            Measure::QosAtLeast { scheme, y } => [0, scheme_code(scheme), 0, u32::from(y)],
            Measure::ConditionalQos { scheme, k, y } => [1, scheme_code(scheme), k, u32::from(y)],
            Measure::CapacityDistribution => [2, 0, 0, 0],
            Measure::OaqBaqGap { y } => [3, 0, 0, u32::from(y)],
            Measure::EmitterTracking {
                emitters,
                passes,
                seed,
            } => [4, emitters, passes, seed],
        }
    }

    /// Decodes [`Measure::encode`]'s wire form; `None` on any unknown tag,
    /// scheme code, or out-of-`u8` level — a typed rejection point for
    /// hostile frames, never a panic.
    #[must_use]
    pub fn decode(words: [u32; 4]) -> Option<Measure> {
        let [tag, scheme, k, y] = words;
        match tag {
            0 => Some(Measure::QosAtLeast {
                scheme: scheme_from_code(scheme)?,
                y: u8::try_from(y).ok()?,
            }),
            1 => Some(Measure::ConditionalQos {
                scheme: scheme_from_code(scheme)?,
                k,
                y: u8::try_from(y).ok()?,
            }),
            2 if scheme == 0 && k == 0 && y == 0 => Some(Measure::CapacityDistribution),
            3 if scheme == 0 && k == 0 => Some(Measure::OaqBaqGap {
                y: u8::try_from(y).ok()?,
            }),
            // Tag 4 reuses all three operand words verbatim (the seed word
            // deliberately spans the full u32 range).
            4 => Some(Measure::EmitterTracking {
                emitters: scheme,
                passes: k,
                seed: y,
            }),
            _ => None,
        }
    }

    fn validate(&self) -> Result<(), QueryError> {
        match *self {
            Measure::QosAtLeast { y, .. } | Measure::OaqBaqGap { y } => {
                require_int_in_range("y", u32::from(y), 0, 3)?;
            }
            Measure::ConditionalQos { k, y, .. } => {
                require_int_in_range("y", u32::from(y), 0, 3)?;
                require_int_in_range("k", k, 1, REFERENCE_CAPACITY)?;
            }
            Measure::CapacityDistribution => {}
            Measure::EmitterTracking {
                emitters, passes, ..
            } => {
                require_int_in_range("emitters", emitters, 1, 4096)?;
                require_int_in_range("passes", passes, 1, 8)?;
            }
        }
        Ok(())
    }
}

/// The raw, not-yet-validated parameters of one query. All fields public;
/// [`QuerySpec::build`] is the only way to obtain a [`QosQuery`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuerySpec {
    /// Orbit period θ, minutes.
    pub theta: f64,
    /// Coverage time Tc, minutes.
    pub tc: f64,
    /// Per-satellite failure rate λ, per hour.
    pub lambda: f64,
    /// Scheduled-deployment period φ, hours.
    pub phi: f64,
    /// Replenishment threshold η (pins the plane at `k = η`).
    pub eta: u32,
    /// Alert deadline τ, minutes.
    pub tau: f64,
    /// Signal termination rate µ (mean duration `1/µ` minutes).
    pub mu: f64,
    /// Iterative-computation completion rate ν.
    pub nu: f64,
    /// Effective delivery overhead δ_eff, minutes (e.g. retries ×
    /// (timeout + δ) from the reliable-delivery layer); shrinks the usable
    /// deadline to `τ − δ_eff`.
    pub delta_eff: f64,
    /// The requested measure.
    pub measure: Measure,
    /// The submitting tenant — an admission-control identity, **not** part
    /// of the result: two tenants asking the same question share one cache
    /// entry and one in-flight computation, so the tenant is excluded from
    /// [`QosQuery::key`].
    pub tenant: TenantId,
    /// Optional *serving* deadline, wall-clock milliseconds from
    /// submission. Work still queued past its deadline is shed at dequeue;
    /// work finishing late is answered
    /// [`QueryError::DeadlineExceeded`] instead of served stale. A serving
    /// QoS knob, not part of the answer — excluded from [`QosQuery::key`]
    /// (when duplicate in-flight queries coalesce, the leader's deadline
    /// governs).
    pub deadline_ms: Option<f64>,
}

impl QuerySpec {
    /// The paper's Figure 9 scenario (θ = 90, Tc = 9, φ = 30000 h, η = 10,
    /// τ = 5, µ = 0.2, ν = 30, δ_eff = 0) at failure rate `lambda`.
    #[must_use]
    pub fn paper_defaults(lambda: f64, measure: Measure) -> Self {
        QuerySpec {
            theta: 90.0,
            tc: 9.0,
            lambda,
            phi: 30_000.0,
            eta: 10,
            tau: 5.0,
            mu: 0.2,
            nu: 30.0,
            delta_eff: 0.0,
            measure,
            tenant: TenantId(0),
            deadline_ms: None,
        }
    }

    /// Validates every parameter and seals the spec into a [`QosQuery`].
    ///
    /// # Errors
    ///
    /// A typed [`QueryError`] naming the offending parameter: non-finite
    /// values (NaN λ), non-positive rates and times (τ ≤ 0), thresholds or
    /// capacities outside `1..=14`, geometry outside the dual-coverage
    /// domain, or a δ_eff that consumes the whole deadline.
    pub fn build(self) -> Result<QosQuery, QueryError> {
        require_positive("theta", self.theta)?;
        require_positive("tc", self.tc)?;
        // Geometry domain: even at full capacity the revisit time θ/k must
        // exceed Tc/2 (the model has no triple coverage), so every
        // reachable k can be composed.
        let tc_max = self.theta / f64::from(REFERENCE_CAPACITY) * 2.0;
        if self.tc >= tc_max {
            return Err(QueryError::Param(oaq_analytic::ParamError::OutOfRange {
                name: "tc",
                value: self.tc,
                min: 0.0,
                max: tc_max,
            }));
        }
        require_positive("lambda", self.lambda)?;
        require_positive("phi", self.phi)?;
        require_int_in_range("eta", self.eta, 1, REFERENCE_CAPACITY - 1)?;
        require_positive("tau", self.tau)?;
        require_positive("mu", self.mu)?;
        require_positive("nu", self.nu)?;
        require_in_range("delta_eff", self.delta_eff, 0.0, f64::MAX)?;
        if self.delta_eff >= self.tau {
            return Err(QueryError::DeadlineConsumed {
                tau: self.tau,
                delta_eff: self.delta_eff,
            });
        }
        if let Some(d) = self.deadline_ms {
            require_positive("deadline_ms", d)?;
        }
        self.measure.validate()?;
        Ok(QosQuery { spec: self })
    }
}

/// A validated, immutable QoS query — see [`QuerySpec::build`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QosQuery {
    spec: QuerySpec,
}

impl QosQuery {
    /// The validated parameters.
    #[must_use]
    pub fn spec(&self) -> &QuerySpec {
        &self.spec
    }

    /// The requested measure.
    #[must_use]
    pub fn measure(&self) -> Measure {
        self.spec.measure
    }

    /// The submitting tenant.
    #[must_use]
    pub fn tenant(&self) -> TenantId {
        self.spec.tenant
    }

    /// The serving deadline in wall-clock milliseconds, if any.
    #[must_use]
    pub fn deadline_ms(&self) -> Option<f64> {
        self.spec.deadline_ms
    }

    /// The same validated query re-addressed to `tenant`. The tenant is
    /// an admission identity with no bearing on the answer, so no
    /// revalidation is needed.
    #[must_use]
    pub fn for_tenant(mut self, tenant: TenantId) -> Self {
        self.spec.tenant = tenant;
        self
    }

    /// The same validated query with a serving deadline attached.
    ///
    /// # Errors
    ///
    /// A typed [`QueryError`] when `deadline_ms` is non-finite or not
    /// strictly positive.
    pub fn with_deadline_ms(mut self, deadline_ms: f64) -> Result<Self, QueryError> {
        require_positive("deadline_ms", deadline_ms)?;
        self.spec.deadline_ms = Some(deadline_ms);
        Ok(self)
    }

    /// The usable deadline `τ − δ_eff` (strictly positive by
    /// construction).
    #[must_use]
    pub fn effective_tau(&self) -> f64 {
        self.spec.tau - self.spec.delta_eff
    }

    /// The capacity-model parameters of this query's scenario, routed
    /// through the typed [`CapacityParams::new`] constructor so the engine
    /// and the analytic layer enforce one domain.
    #[must_use]
    pub fn capacity_params(&self) -> CapacityParams {
        CapacityParams::new(
            REFERENCE_CAPACITY,
            REFERENCE_SPARES,
            self.spec.lambda,
            self.spec.phi,
            self.spec.eta,
        )
        .expect("query construction already validated the scenario")
    }

    /// The analytic evaluation configuration of this query (deadline
    /// already shrunk by δ_eff).
    #[must_use]
    pub fn evaluation_config(&self) -> EvaluationConfig {
        EvaluationConfig {
            theta: self.spec.theta,
            tc: self.spec.tc,
            qos: QosParams {
                tau: self.effective_tau(),
                mu: self.spec.mu,
                nu: self.spec.nu,
            },
            capacity: self.capacity_params(),
        }
    }

    /// The exact (bit-level) memoization key of the full query. Serving
    /// knobs — tenant and deadline — are deliberately excluded: they do
    /// not change the answer, so all tenants and deadlines share one
    /// cache entry per parameter tuple.
    #[must_use]
    pub fn key(&self) -> QueryKey {
        QueryKey {
            bits: [
                self.spec.theta.to_bits(),
                self.spec.tc.to_bits(),
                self.spec.lambda.to_bits(),
                self.spec.phi.to_bits(),
                u64::from(self.spec.eta),
                self.spec.tau.to_bits(),
                self.spec.mu.to_bits(),
                self.spec.nu.to_bits(),
                self.spec.delta_eff.to_bits(),
            ],
            measure: self.spec.measure,
        }
    }

    /// The exact key of the capacity-solve layer: only (λ, φ, η) — sweeps
    /// over τ/µ/ν/δ_eff at a fixed failure scenario share one `P(k)`.
    #[must_use]
    pub fn capacity_key(&self) -> CapacityKey {
        CapacityKey {
            lambda: self.spec.lambda.to_bits(),
            phi: self.spec.phi.to_bits(),
            eta: self.spec.eta,
        }
    }
}

/// Bit-exact identity of a full query (no quantization: two queries share
/// a key iff direct evaluation would produce bit-identical answers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueryKey {
    bits: [u64; 9],
    measure: Measure,
}

impl QueryKey {
    /// The key as eleven fixed-order words: nine parameter words followed
    /// by the packed [`Measure::encode`] quad — the cache-snapshot wire
    /// form. Round-trips exactly through [`QueryKey::decode`].
    #[must_use]
    pub fn encode(&self) -> [u64; 11] {
        let m = self.measure.encode();
        let mut words = [0u64; 11];
        words[..9].copy_from_slice(&self.bits);
        words[9] = u64::from(m[0]) << 32 | u64::from(m[1]);
        words[10] = u64::from(m[2]) << 32 | u64::from(m[3]);
        words
    }

    /// Decodes [`QueryKey::encode`]'s form; `None` when the measure words
    /// are malformed. Parameter bits are *not* re-validated: a decoded key
    /// can only ever be looked up by a freshly validated query producing
    /// the same bits, so an unreachable key is inert cache weight, never a
    /// correctness hazard.
    #[must_use]
    pub fn decode(words: [u64; 11]) -> Option<QueryKey> {
        #[allow(clippy::cast_possible_truncation)]
        let quad = [
            (words[9] >> 32) as u32,
            (words[9] & 0xFFFF_FFFF) as u32,
            (words[10] >> 32) as u32,
            (words[10] & 0xFFFF_FFFF) as u32,
        ];
        let mut bits = [0u64; 9];
        bits.copy_from_slice(&words[..9]);
        Some(QueryKey {
            bits,
            measure: Measure::decode(quad)?,
        })
    }
}

/// Bit-exact identity of a capacity solve (λ, φ, η).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CapacityKey {
    lambda: u64,
    phi: u64,
    eta: u32,
}

impl CapacityKey {
    /// The key as three fixed-order words (λ bits, φ bits, η) — the
    /// cache-snapshot wire form.
    #[must_use]
    pub fn encode(&self) -> [u64; 3] {
        [self.lambda, self.phi, u64::from(self.eta)]
    }

    /// Decodes [`CapacityKey::encode`]'s form; `None` when η overflows
    /// `u32`. See [`QueryKey::decode`] on why parameter bits are not
    /// re-validated.
    #[must_use]
    pub fn decode(words: [u64; 3]) -> Option<CapacityKey> {
        Some(CapacityKey {
            lambda: words[0],
            phi: words[1],
            eta: u32::try_from(words[2]).ok()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper(measure: Measure) -> QuerySpec {
        QuerySpec::paper_defaults(5e-5, measure)
    }

    const Y2: Measure = Measure::QosAtLeast {
        scheme: Scheme::Oaq,
        y: 2,
    };

    #[test]
    fn paper_defaults_validate() {
        let q = paper(Y2).build().unwrap();
        assert_eq!(q.effective_tau(), 5.0);
        assert!(q.measure().needs_capacity_solve());
    }

    #[test]
    fn nan_lambda_is_rejected_typed() {
        let mut s = paper(Y2);
        s.lambda = f64::NAN;
        assert!(matches!(s.build(), Err(QueryError::Param(_))));
    }

    #[test]
    fn non_positive_tau_rejected() {
        let mut s = paper(Y2);
        s.tau = 0.0;
        assert!(matches!(s.build(), Err(QueryError::Param(_))));
        s.tau = -3.0;
        assert!(matches!(s.build(), Err(QueryError::Param(_))));
    }

    #[test]
    fn k_outside_reference_plane_rejected() {
        for k in [0u32, 15, 100] {
            let s = paper(Measure::ConditionalQos {
                scheme: Scheme::Oaq,
                k,
                y: 3,
            });
            assert!(matches!(s.build(), Err(QueryError::Param(_))), "k = {k}");
        }
        let ok = paper(Measure::ConditionalQos {
            scheme: Scheme::Oaq,
            k: 14,
            y: 3,
        });
        assert!(ok.build().is_ok());
    }

    #[test]
    fn y_above_three_rejected() {
        let s = paper(Measure::OaqBaqGap { y: 4 });
        assert!(s.build().is_err());
    }

    #[test]
    fn delta_eff_must_leave_deadline() {
        let mut s = paper(Y2);
        s.delta_eff = 5.0;
        assert!(matches!(
            s.build(),
            Err(QueryError::DeadlineConsumed { .. })
        ));
        s.delta_eff = 4.5;
        let q = s.build().unwrap();
        assert!((q.effective_tau() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn triple_coverage_geometry_rejected() {
        let mut s = paper(Y2);
        // Tc = 13 > 2θ/14 = 12.857: k = 14 would triple-cover.
        s.tc = 13.0;
        assert!(s.build().is_err());
        s.tc = 12.0;
        assert!(s.build().is_ok());
    }

    #[test]
    fn keys_are_exact_and_layered() {
        let a = paper(Y2).build().unwrap();
        let mut s = paper(Y2);
        s.tau = 6.0;
        let b = s.build().unwrap();
        assert_ne!(a.key(), b.key(), "different tau, different result key");
        assert_eq!(
            a.capacity_key(),
            b.capacity_key(),
            "same (lambda, phi, eta): the capacity solve is shared"
        );
        let mut s = paper(Y2);
        s.lambda = 5e-5 + 1e-18;
        if s.lambda != 5e-5 {
            let c = s.build().unwrap();
            assert_ne!(a.capacity_key(), c.capacity_key(), "no quantization");
        }
    }

    #[test]
    fn tenant_and_deadline_do_not_perturb_keys() {
        let base = paper(Y2).build().unwrap();
        let other = base
            .for_tenant(TenantId(42))
            .with_deadline_ms(25.0)
            .unwrap();
        assert_eq!(other.tenant(), TenantId(42));
        assert_eq!(other.deadline_ms(), Some(25.0));
        assert_eq!(
            base.key(),
            other.key(),
            "serving knobs are excluded from the result key"
        );
        assert_eq!(base.capacity_key(), other.capacity_key());
    }

    #[test]
    fn degenerate_deadlines_rejected() {
        for bad in [0.0, -5.0, f64::NAN, f64::INFINITY] {
            let mut s = paper(Y2);
            s.deadline_ms = Some(bad);
            assert!(matches!(s.build(), Err(QueryError::Param(_))), "{bad}");
            assert!(
                paper(Y2).build().unwrap().with_deadline_ms(bad).is_err(),
                "{bad}"
            );
        }
        let mut s = paper(Y2);
        s.deadline_ms = Some(10.0);
        assert_eq!(s.build().unwrap().deadline_ms(), Some(10.0));
    }

    #[test]
    fn measure_and_key_wire_forms_round_trip() {
        let measures = [
            Measure::QosAtLeast {
                scheme: Scheme::Oaq,
                y: 2,
            },
            Measure::QosAtLeast {
                scheme: Scheme::Baq,
                y: 0,
            },
            Measure::ConditionalQos {
                scheme: Scheme::Baq,
                k: 12,
                y: 3,
            },
            Measure::CapacityDistribution,
            Measure::OaqBaqGap { y: 1 },
            Measure::EmitterTracking {
                emitters: 256,
                passes: 3,
                seed: u32::MAX,
            },
        ];
        for m in measures {
            assert_eq!(Measure::decode(m.encode()), Some(m), "{m:?}");
            let key = paper(m).build().unwrap().key();
            assert_eq!(QueryKey::decode(key.encode()), Some(key), "{m:?}");
        }
        let ck = paper(Y2).build().unwrap().capacity_key();
        assert_eq!(CapacityKey::decode(ck.encode()), Some(ck));
    }

    #[test]
    fn hostile_wire_measures_decode_to_none() {
        assert_eq!(Measure::decode([9, 0, 0, 0]), None, "unknown tag");
        assert_eq!(Measure::decode([0, 7, 0, 2]), None, "unknown scheme");
        assert_eq!(Measure::decode([0, 0, 0, 300]), None, "y overflows u8");
        assert_eq!(Measure::decode([2, 1, 0, 0]), None, "nonzero padding");
        assert_eq!(QueryKey::decode([u64::MAX; 11]), None);
        assert_eq!(CapacityKey::decode([0, 0, u64::MAX]), None, "eta overflow");
    }

    #[test]
    fn conditional_measure_skips_capacity_solve() {
        assert!(!Measure::ConditionalQos {
            scheme: Scheme::Baq,
            k: 12,
            y: 3
        }
        .needs_capacity_solve());
        assert!(Measure::CapacityDistribution.needs_capacity_solve());
        assert!(Measure::OaqBaqGap { y: 2 }.needs_capacity_solve());
        assert!(!Measure::EmitterTracking {
            emitters: 16,
            passes: 2,
            seed: 0
        }
        .needs_capacity_solve());
    }

    #[test]
    fn emitter_tracking_bounds_enforced() {
        let tracking = |emitters, passes| {
            paper(Measure::EmitterTracking {
                emitters,
                passes,
                seed: 7,
            })
            .build()
        };
        for (emitters, passes) in [(0, 2), (4097, 2), (16, 0), (16, 9)] {
            assert!(
                matches!(tracking(emitters, passes), Err(QueryError::Param(_))),
                "emitters = {emitters}, passes = {passes}"
            );
        }
        assert!(tracking(1, 1).is_ok());
        assert!(tracking(4096, 8).is_ok());
    }
}
