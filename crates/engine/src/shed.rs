//! SLO-aware load shedding with hysteresis.
//!
//! The shedder watches the engine's streaming end-to-end p99 latency
//! (the P² estimator in [`crate::metrics`]) against a configured SLO and
//! probabilistically rejects *new non-cached* work while the tail is in
//! breach. Control is a bounded additive-increase / multiplicative-
//! decrease loop with a hysteresis band:
//!
//! * `p99 > slo` — shed probability ramps up additively (fast reaction);
//! * `p99 < recover_fraction · slo` — probability decays multiplicatively
//!   (slow, monotone recovery);
//! * in between — the probability holds, so the shedder does not flap at
//!   the boundary.
//!
//! The accept/shed coin is a counter-indexed SplitMix64 draw
//! ([`oaq_sim::SimRng::substream`]), so a given engine run sheds the same
//! submission indices for the same latency history — no wall-clock
//! entropy enters the decision itself.

use oaq_sim::SimRng;
use parking_lot::Mutex;

/// Shedder tuning. `Default` disables shedding (`slo_p99_s = ∞`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShedPolicy {
    /// The end-to-end p99 target, seconds. `f64::INFINITY` disables the
    /// shedder entirely.
    pub slo_p99_s: f64,
    /// Additive step the shed probability gains per breaching submission.
    pub ramp: f64,
    /// Multiplicative factor applied per recovered submission.
    pub decay: f64,
    /// Recovery threshold as a fraction of the SLO: decay only starts
    /// once `p99 < recover_fraction · slo` (the hysteresis band).
    pub recover_fraction: f64,
    /// Upper bound on the shed probability — some work always gets
    /// through, so the p99 estimate keeps refreshing.
    pub max_probability: f64,
}

impl Default for ShedPolicy {
    fn default() -> Self {
        ShedPolicy {
            slo_p99_s: f64::INFINITY,
            ramp: 0.02,
            decay: 0.95,
            recover_fraction: 0.8,
            max_probability: 0.9,
        }
    }
}

impl ShedPolicy {
    /// A policy shedding against `slo_p99_s` with the default loop gains.
    #[must_use]
    pub fn with_slo(slo_p99_s: f64) -> Self {
        ShedPolicy {
            slo_p99_s,
            ..ShedPolicy::default()
        }
    }

    /// Whether the shedder can ever reject.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.slo_p99_s.is_finite()
    }
}

#[derive(Debug)]
struct ShedState {
    probability: f64,
    tick: u64,
}

/// The hysteretic shedder. One per engine; consulted on every
/// cache-missing submission.
#[derive(Debug)]
pub(crate) struct Shedder {
    policy: ShedPolicy,
    seed: u64,
    state: Mutex<ShedState>,
}

impl Shedder {
    pub(crate) fn new(policy: ShedPolicy, seed: u64) -> Self {
        Shedder {
            policy,
            seed,
            state: Mutex::new(ShedState {
                probability: 0.0,
                tick: 0,
            }),
        }
    }

    /// Updates the control loop with the current p99 estimate and decides
    /// whether to shed this submission. `None` (fewer than five
    /// observations) never sheds — the engine must not reject on garbage
    /// estimates.
    pub(crate) fn should_shed(&self, p99_s: Option<f64>) -> bool {
        if !self.policy.is_enabled() {
            return false;
        }
        let mut state = self.state.lock();
        state.tick += 1;
        match p99_s {
            Some(p99) if p99 > self.policy.slo_p99_s => {
                state.probability =
                    (state.probability + self.policy.ramp).min(self.policy.max_probability);
            }
            Some(p99) if p99 < self.policy.recover_fraction * self.policy.slo_p99_s => {
                state.probability *= self.policy.decay;
                if state.probability < 1e-3 {
                    state.probability = 0.0;
                }
            }
            // Inside the hysteresis band (or no estimate yet): hold.
            _ => {}
        }
        if state.probability <= 0.0 {
            return false;
        }
        let mut coin = SimRng::substream(self.seed, state.tick);
        coin.unit() < state.probability
    }

    /// The current shed probability (a gauge for metrics snapshots).
    pub(crate) fn probability(&self) -> f64 {
        self.state.lock().probability
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shedder(slo: f64) -> Shedder {
        Shedder::new(ShedPolicy::with_slo(slo), 42)
    }

    #[test]
    fn disabled_policy_never_sheds() {
        let s = Shedder::new(ShedPolicy::default(), 1);
        for _ in 0..1000 {
            assert!(!s.should_shed(Some(1e9)));
        }
        assert_eq!(s.probability(), 0.0);
    }

    #[test]
    fn no_estimate_never_sheds() {
        let s = shedder(0.010);
        for _ in 0..1000 {
            assert!(!s.should_shed(None), "garbage-free: no p99, no shedding");
        }
    }

    #[test]
    fn breach_ramps_up_and_sheds_a_bounded_fraction() {
        let s = shedder(0.010);
        let shed: usize = (0..2000).filter(|_| s.should_shed(Some(0.050))).count();
        let p = s.probability();
        assert!(p > 0.5, "sustained breach must ramp the probability: {p}");
        assert!(
            p <= ShedPolicy::default().max_probability + 1e-12,
            "probability is capped: {p}"
        );
        assert!(shed > 500, "a breaching engine must actually shed: {shed}");
        assert!(shed < 2000, "the cap keeps some work flowing: {shed}");
    }

    #[test]
    fn recovery_is_hysteretic() {
        let s = shedder(0.010);
        for _ in 0..200 {
            let _ = s.should_shed(Some(0.050));
        }
        let breached = s.probability();
        assert!(breached > 0.5);
        // Inside the band (0.8·slo ≤ p99 ≤ slo): probability must hold.
        for _ in 0..200 {
            let _ = s.should_shed(Some(0.009));
        }
        assert!(
            (s.probability() - breached).abs() < 1e-12,
            "the hysteresis band holds the probability"
        );
        // Well below the band: multiplicative decay back to zero.
        for _ in 0..400 {
            let _ = s.should_shed(Some(0.001));
        }
        assert_eq!(s.probability(), 0.0, "full recovery reaches exactly zero");
        assert!(!s.should_shed(Some(0.001)));
    }

    #[test]
    fn decisions_are_deterministic_per_seed_and_history() {
        let run = |seed: u64| -> Vec<bool> {
            let s = Shedder::new(ShedPolicy::with_slo(0.010), seed);
            (0..500).map(|_| s.should_shed(Some(0.020))).collect()
        };
        assert_eq!(run(7), run(7), "same seed, same history, same sheds");
        assert_ne!(run(7), run(8), "the coin depends on the seed");
    }
}
