//! # oaq-engine — a batched, cached, fault-tolerant multi-tenant QoS
//! query-serving engine
//!
//! Turns the closed-form stack of `oaq-analytic` into an in-process
//! serving layer: validated [`QosQuery`] requests flow through a bounded,
//! backpressure-aware submission queue into a supervised worker pool,
//! with two levels of memoization in between.
//!
//! * **Admission** — [`Engine::submit`] never blocks; when the bounded
//!   queue is full it returns a typed
//!   [`RejectReason::QueueFull`] so the caller owns its
//!   backpressure policy.
//! * **Multi-tenancy** — every query carries a [`TenantId`]; a
//!   [`QuotaPolicy`] enforces per-tenant token-bucket rates and weighted
//!   fair shares of the queue, so one flooding tenant collects retryable
//!   [`RejectReason::QuotaExceeded`] rejections while the others keep
//!   their latency.
//! * **Supervision** — evaluator panics are caught per query and become
//!   typed [`QueryError::EvalPanicked`] answers for the leader *and*
//!   every coalesced waiter; the supervisor respawns dead workers so the
//!   pool heals to its configured size.
//! * **Deadlines & SLO shedding** — queries may carry a serving deadline
//!   (checked before and after the solve —
//!   [`QueryError::DeadlineExceeded`]), and a [`ShedPolicy`] watches the
//!   streaming end-to-end p99 against an SLO, probabilistically shedding
//!   new work ([`RejectReason::Overloaded`]) during a breach with
//!   hysteretic recovery.
//! * **Level 1, results** — an LRU of completed solves keyed by the
//!   *bit-exact* parameter tuple. Identical in-flight queries coalesce
//!   onto one computation (single-flight).
//! * **Level 2, capacity** — the expensive `P(k)` CTMC solve is cached
//!   independently, keyed by (λ, φ, η) alone, so sweeps over the protocol
//!   parameters τ/µ/ν/δ_eff at a fixed failure scenario reuse one solve.
//! * **Bit-identity** — the direct evaluation path
//!   ([`direct_eval`]) and the cached path execute the same
//!   floating-point code ([`oaq_analytic::EvaluationConfig::qos_distribution_with_pk`]),
//!   so a cache hit equals a recompute down to the last bit; the property
//!   tests in `tests/properties.rs` enforce this for arbitrary seeded
//!   workloads. Tenant identity and deadlines are serving metadata,
//!   excluded from cache keys — they never perturb a cached value.
//!
//! ## Example
//!
//! ```
//! use oaq_engine::{Engine, EngineConfig, Measure, QuerySpec, Scheme};
//!
//! let engine = Engine::new(EngineConfig { workers: 2, ..EngineConfig::default() });
//! let query = QuerySpec::paper_defaults(1e-5, Measure::QosAtLeast { scheme: Scheme::Oaq, y: 2 })
//!     .build()
//!     .unwrap();
//! let p = engine.evaluate(query).unwrap().scalar();
//! assert!(p > 0.7, "P(Y ≥ 2) at the paper's low failure rate");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod error;
pub mod eval;
pub mod metrics;
pub mod query;
pub mod queue;
pub mod report;
pub mod shard;
pub mod shed;
pub mod singleflight;
pub mod tenant;
pub mod workload;

mod worker;

pub use engine::{CacheStatsSnapshot, Engine, EngineConfig, Ticket};
pub use error::{EngineError, QueryError, RejectReason};
pub use eval::{direct_eval, eval_cheap, eval_with_pk, DefaultEvaluator, Evaluator, QosValue};
pub use metrics::{LatencySnapshot, MetricsSnapshot, RobustQuantile};
pub use query::{CapacityKey, Measure, QosQuery, QueryKey, QuerySpec, Scheme};
pub use shard::{shard_of, CacheShardStats};
pub use shed::ShedPolicy;
pub use tenant::{QuotaPolicy, TenantId, TenantSnapshot, TokenBucket};
pub use worker::EngineResult;
pub use workload::{multi_tenant_workload, zipf_workload, WorkloadConfig};

/// The panic payload fault-injection harnesses throw inside an
/// [`Evaluator`] (`std::panic::panic_any(INJECTED_FAULT)`). Payloads with
/// this exact value are muted by [`silence_injected_panics`] so a bench
/// sweeping thousands of injected faults does not drown its output in
/// backtraces; the supervision path treats them like any other panic.
pub const INJECTED_FAULT: &str = "injected evaluator fault";

/// Installs (once, process-wide) a panic hook that suppresses the report
/// for panics whose payload is exactly [`INJECTED_FAULT`] and forwards
/// everything else to the previously installed hook. Idempotent.
pub fn silence_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|s| *s == INJECTED_FAULT);
            if !injected {
                previous(info);
            }
        }));
    });
}
