//! # oaq-engine — a batched, cached, multi-worker QoS query-serving engine
//!
//! Turns the closed-form stack of `oaq-analytic` into an in-process
//! serving layer: validated [`QosQuery`] requests flow through a bounded,
//! backpressure-aware submission queue into a worker pool, with two levels
//! of memoization in between.
//!
//! * **Admission** — [`Engine::submit`] never blocks; when the bounded
//!   queue is full it returns a typed
//!   [`RejectReason::QueueFull`] so the caller owns its
//!   backpressure policy.
//! * **Level 1, results** — an LRU of completed solves keyed by the
//!   *bit-exact* parameter tuple. Identical in-flight queries coalesce
//!   onto one computation (single-flight).
//! * **Level 2, capacity** — the expensive `P(k)` CTMC solve is cached
//!   independently, keyed by (λ, φ, η) alone, so sweeps over the protocol
//!   parameters τ/µ/ν/δ_eff at a fixed failure scenario reuse one solve.
//! * **Bit-identity** — the direct evaluation path
//!   ([`direct_eval`]) and the cached path execute the same
//!   floating-point code ([`oaq_analytic::EvaluationConfig::qos_distribution_with_pk`]),
//!   so a cache hit equals a recompute down to the last bit; the property
//!   tests in `tests/properties.rs` enforce this for arbitrary seeded
//!   workloads.
//!
//! ## Example
//!
//! ```
//! use oaq_engine::{Engine, EngineConfig, Measure, QuerySpec, Scheme};
//!
//! let engine = Engine::new(EngineConfig { workers: 2, ..EngineConfig::default() });
//! let query = QuerySpec::paper_defaults(1e-5, Measure::QosAtLeast { scheme: Scheme::Oaq, y: 2 })
//!     .build()
//!     .unwrap();
//! let p = engine.evaluate(query).unwrap().scalar();
//! assert!(p > 0.7, "P(Y ≥ 2) at the paper's low failure rate");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod error;
pub mod eval;
pub mod metrics;
pub mod query;
pub mod queue;
pub mod report;
pub mod singleflight;
pub mod workload;

mod worker;

pub use engine::{Engine, EngineConfig, Ticket};
pub use error::{EngineError, QueryError, RejectReason};
pub use eval::{direct_eval, QosValue};
pub use metrics::{LatencySnapshot, MetricsSnapshot};
pub use query::{Measure, QosQuery, QuerySpec, Scheme};
pub use worker::EngineResult;
pub use workload::{zipf_workload, WorkloadConfig};
