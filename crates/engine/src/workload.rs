//! Seeded, Zipf-skewed query workloads for benchmarking and property
//! testing.
//!
//! A workload draws from a fixed pool of *scenarios* (distinct validated
//! queries) under a Zipf(s) rank distribution: a few hot scenarios
//! dominate — the regime where the engine's result cache and single-flight
//! coalescing pay — while the long tail keeps the `P(k)` layer honest.
//! Generation is fully determined by the seed, so two runs of the same
//! workload submit the same queries in the same order.

use oaq_sim::SimRng;

use crate::query::{Measure, QosQuery, QuerySpec, Scheme};
use crate::tenant::TenantId;

/// Workload shape: scenario-pool size, skew and length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadConfig {
    /// Number of distinct scenarios in the pool.
    pub scenarios: usize,
    /// Zipf exponent `s` (1.0 ≈ classic web-cache skew; 0 = uniform).
    pub skew: f64,
    /// Number of queries drawn.
    pub queries: usize,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            scenarios: 200,
            skew: 1.0,
            queries: 10_000,
        }
    }
}

/// Builds the deterministic scenario pool: λ log-spread over the paper's
/// decade, η ∈ {9..=12}, τ and µ varied, all four measures represented.
/// Scenario `i` is identical across processes and runs.
fn scenario(i: usize, rng: &mut SimRng) -> QosQuery {
    // Log-uniform λ over the paper's decade [1e-5, 1e-4].
    let lambda = 1e-5 * 10f64.powf(rng.unit());
    let eta = 9 + (i % 4) as u32;
    let tau = 2.0 + rng.uniform(0.0, 6.0);
    let mu = [0.2, 0.35, 0.5][i % 3];
    let measure = match i % 8 {
        0..=2 => Measure::QosAtLeast {
            scheme: Scheme::Oaq,
            y: 2,
        },
        3 | 4 => Measure::QosAtLeast {
            scheme: Scheme::Baq,
            y: 3,
        },
        5 => Measure::OaqBaqGap { y: 2 },
        6 => Measure::CapacityDistribution,
        _ => Measure::ConditionalQos {
            scheme: Scheme::Oaq,
            k: 9 + (i % 6) as u32,
            y: 3,
        },
    };
    let mut spec = QuerySpec::paper_defaults(lambda, measure);
    spec.eta = eta;
    spec.tau = tau;
    spec.mu = mu;
    spec.delta_eff = if i.is_multiple_of(5) { 0.5 } else { 0.0 };
    spec.build().expect("generated scenarios are in-domain")
}

/// A reproducible Zipf-skewed sequence of validated queries.
///
/// # Panics
///
/// Panics if `scenarios` is zero.
#[must_use]
pub fn zipf_workload(config: &WorkloadConfig, seed: u64) -> Vec<QosQuery> {
    assert!(config.scenarios > 0, "workload needs at least one scenario");
    let mut rng = SimRng::seed_from(seed);
    let pool: Vec<QosQuery> = (0..config.scenarios)
        .map(|i| scenario(i, &mut rng))
        .collect();

    // Cumulative Zipf weights over ranks 1..=n: w_r = r^{-s}.
    let mut cumulative = Vec::with_capacity(pool.len());
    let mut total = 0.0;
    for rank in 1..=pool.len() {
        #[allow(clippy::cast_precision_loss)]
        let w = (rank as f64).powf(-config.skew);
        total += w;
        cumulative.push(total);
    }

    (0..config.queries)
        .map(|_| {
            let u = rng.unit() * total;
            let idx = cumulative.partition_point(|&c| c < u);
            pool[idx.min(pool.len() - 1)]
        })
        .collect()
}

/// Tags a Zipf workload with tenant identities drawn by relative traffic
/// weight: `(tenant, weight)` pairs where a tenant with weight `10.0`
/// submits ten times the traffic of a weight-`1.0` tenant — the flooding
/// scenario the quota layer is tested against. The tenant stream is a
/// dedicated substream of `seed`, so the *queries* are identical to
/// [`zipf_workload`] with the same config and seed; only the tags differ.
///
/// # Panics
///
/// Panics if `tenants` is empty or the weights sum to zero.
#[must_use]
pub fn multi_tenant_workload(
    config: &WorkloadConfig,
    tenants: &[(TenantId, f64)],
    seed: u64,
) -> Vec<QosQuery> {
    assert!(!tenants.is_empty(), "workload needs at least one tenant");
    let total: f64 = tenants.iter().map(|&(_, w)| w.max(0.0)).sum();
    assert!(total > 0.0, "tenant weights must not all vanish");
    let mut tags = SimRng::substream(seed, 0x7e4a);
    zipf_workload(config, seed)
        .into_iter()
        .map(|q| {
            let mut u = tags.unit() * total;
            let mut chosen = tenants[tenants.len() - 1].0;
            for &(t, w) in tenants {
                let w = w.max(0.0);
                if u < w {
                    chosen = t;
                    break;
                }
                u -= w;
            }
            q.for_tenant(chosen)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_workload() {
        let cfg = WorkloadConfig {
            scenarios: 50,
            skew: 1.0,
            queries: 500,
        };
        let a = zipf_workload(&cfg, 42);
        let b = zipf_workload(&cfg, 42);
        assert_eq!(a, b, "workloads are a pure function of the seed");
        let c = zipf_workload(&cfg, 43);
        assert_ne!(a, c, "a different seed must reshuffle");
    }

    #[test]
    fn zipf_skew_concentrates_mass() {
        let cfg = WorkloadConfig {
            scenarios: 100,
            skew: 1.0,
            queries: 10_000,
        };
        let queries = zipf_workload(&cfg, 7);
        let mut counts = std::collections::HashMap::new();
        for q in &queries {
            *counts.entry(q.key()).or_insert(0u32) += 1;
        }
        assert!(counts.len() > 30, "the tail must appear");
        let hottest = counts.values().copied().max().unwrap();
        assert!(
            hottest > 1000,
            "rank 1 of Zipf(1) over 100 scenarios carries ≈19% of 10k draws, got {hottest}"
        );
    }

    #[test]
    fn every_query_validates_and_measures_vary() {
        let cfg = WorkloadConfig {
            scenarios: 40,
            skew: 0.8,
            queries: 200,
        };
        let queries = zipf_workload(&cfg, 11);
        assert_eq!(queries.len(), 200);
        let cheap = queries
            .iter()
            .filter(|q| !q.measure().needs_capacity_solve())
            .count();
        assert!(cheap > 0, "conditional (cheap-layer) queries present");
        assert!(cheap < queries.len(), "capacity-bound queries present");
    }

    #[test]
    fn tenant_tags_follow_weights_without_touching_queries() {
        let cfg = WorkloadConfig {
            scenarios: 30,
            skew: 1.0,
            queries: 4_000,
        };
        let flooder = TenantId(1);
        let polite = TenantId(2);
        let tagged = multi_tenant_workload(&cfg, &[(flooder, 10.0), (polite, 1.0)], 5);
        let plain = zipf_workload(&cfg, 5);
        assert_eq!(tagged.len(), plain.len());
        let mut flood_count = 0usize;
        for (t, p) in tagged.iter().zip(&plain) {
            assert_eq!(t.key(), p.key(), "tenant tags never perturb the query");
            if t.tenant() == flooder {
                flood_count += 1;
            } else {
                assert_eq!(t.tenant(), polite);
            }
        }
        // 10:1 weights → the flooder holds ≈ 90.9% of the stream.
        assert!(
            (0.87..=0.94).contains(&(flood_count as f64 / 4_000.0)),
            "flooder share off: {flood_count}/4000"
        );
        assert_eq!(
            multi_tenant_workload(&cfg, &[(flooder, 10.0), (polite, 1.0)], 5),
            tagged,
            "tagging is deterministic per seed"
        );
    }
}
