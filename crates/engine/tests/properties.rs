//! The engine's two headline guarantees, tested end to end:
//!
//! 1. **Bit-identity** — for any seeded Zipf workload, every answer the
//!    concurrent, cached engine produces equals the naive single-threaded
//!    direct evaluation *bit for bit* (`assert_eq!` on f64, no tolerance).
//! 2. **Determinism** — two engines replaying the same seed produce
//!    byte-identical result JSON.

use proptest::prelude::*;

use oaq_engine::{
    direct_eval, report, zipf_workload, Engine, EngineConfig, EngineError, EngineResult, QosQuery,
    RejectReason, Ticket, WorkloadConfig,
};

/// Submits every query in order, absorbing backpressure by retrying after
/// yielding to the workers; returns answers in submission order.
fn replay(engine: &Engine, queries: &[QosQuery]) -> Vec<EngineResult> {
    let mut tickets: Vec<Ticket> = Vec::with_capacity(queries.len());
    for &q in queries {
        loop {
            match engine.submit(q) {
                Ok(t) => {
                    tickets.push(t);
                    break;
                }
                Err(EngineError::Rejected(RejectReason::QueueFull { .. })) => {
                    std::thread::yield_now();
                }
                Err(e) => panic!("unexpected submit error: {e}"),
            }
        }
    }
    tickets.into_iter().map(Ticket::wait).collect()
}

fn engine(workers: usize, queue: usize) -> Engine {
    Engine::new(EngineConfig {
        workers,
        queue_capacity: queue,
        batch_size: 8,
        result_cache: 512,
        pk_cache: 64,
        ..EngineConfig::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn engine_is_bit_identical_to_direct_eval(
        seed in any::<u64>(),
        scenarios in 4usize..20,
        queries in 40usize..160,
        workers in 1usize..5,
    ) {
        let workload = zipf_workload(
            &WorkloadConfig { scenarios, skew: 1.0, queries },
            seed,
        );
        let eng = engine(workers, 32);
        let served = replay(&eng, &workload);
        prop_assert_eq!(served.len(), workload.len());
        for (i, (q, r)) in workload.iter().zip(&served).enumerate() {
            let direct = direct_eval(q).expect("in-domain workload");
            let got = r.as_ref().expect("engine must answer in-domain queries");
            prop_assert_eq!(
                got, &direct,
                "query {} diverged from direct evaluation (seed {})", i, seed
            );
        }
        let m = eng.metrics();
        prop_assert_eq!(m.submitted, queries as u64);
        // Every accepted query is either answered directly (computed or
        // cache hit) or coalesced onto an identical in-flight computation.
        prop_assert_eq!(m.served + m.coalesced, queries as u64);
        prop_assert!(
            m.result_cache_hits + m.coalesced > 0,
            "a Zipf workload over {} scenarios must repeat itself", scenarios
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    #[test]
    fn same_seed_two_engines_identical_json(seed in any::<u64>()) {
        let cfg = WorkloadConfig { scenarios: 12, skew: 1.0, queries: 120 };
        let run = |workers: usize| {
            let workload = zipf_workload(&cfg, seed);
            let eng = engine(workers, 64);
            report::results_json(&replay(&eng, &workload))
        };
        // Different worker counts and scheduling, same seed: the result
        // digest (which excludes timing) must be byte-identical.
        prop_assert_eq!(run(1), run(4));
    }
}

#[test]
fn warm_replay_is_bit_identical_and_solve_free() {
    let cfg = WorkloadConfig {
        scenarios: 10,
        skew: 1.0,
        queries: 80,
    };
    let workload = zipf_workload(&cfg, 7);
    let eng = engine(3, 32);
    let cold = replay(&eng, &workload);
    let solves_after_cold = eng.metrics().pk_solves;
    let warm = replay(&eng, &workload);
    assert_eq!(
        cold, warm,
        "warm cache hits equal cold computes bit-for-bit"
    );
    let m = eng.metrics();
    assert_eq!(
        m.pk_solves, solves_after_cold,
        "a fully warm replay must not run any CTMC solve"
    );
    assert!(
        m.result_cache_hits >= cfg.queries as u64,
        "the second pass should be all cache hits: {m:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    /// Supervision property: under a seeded panicking evaluator, every
    /// submission still reaches exactly one terminal outcome, and every
    /// `Ok` answer remains bit-identical to the direct evaluation.
    #[test]
    fn panics_never_lose_queries_or_perturb_answers(
        seed in any::<u64>(),
        workers in 1usize..4,
    ) {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        use oaq_engine::{Evaluator, QueryError};

        /// Panics on ~1 in 6 solves, decided by a seeded counter stream.
        struct SeededBomb {
            seed: u64,
            calls: AtomicU64,
        }
        impl Evaluator for SeededBomb {
            fn solve_pk(&self, query: &oaq_engine::QosQuery) -> Result<Vec<f64>, EngineError> {
                let n = self.calls.fetch_add(1, Ordering::Relaxed);
                if oaq_sim::SimRng::substream(self.seed, n).chance(1.0 / 6.0) {
                    std::panic::panic_any(oaq_engine::INJECTED_FAULT);
                }
                query.capacity_params().distribution().map_err(EngineError::from)
            }
        }

        oaq_engine::silence_injected_panics();
        let workload = zipf_workload(
            &WorkloadConfig { scenarios: 12, skew: 1.0, queries: 60 },
            seed,
        );
        let eng = Engine::with_evaluator(
            EngineConfig {
                workers,
                queue_capacity: 32,
                batch_size: 4,
                result_cache: 256,
                pk_cache: 32,
                ..EngineConfig::default()
            },
            Arc::new(SeededBomb { seed, calls: AtomicU64::new(0) }),
        );
        let served = replay(&eng, &workload);
        prop_assert_eq!(served.len(), workload.len(), "no query may vanish");
        for (q, r) in workload.iter().zip(&served) {
            match r {
                Ok(v) => prop_assert_eq!(v, &direct_eval(q).unwrap(), "bit-identical"),
                Err(EngineError::Query(QueryError::EvalPanicked))
                | Err(EngineError::WorkerLost) => {}
                Err(e) => prop_assert!(false, "unexpected terminal outcome: {e}"),
            }
        }
        let m = eng.metrics();
        prop_assert_eq!(m.served + m.coalesced, workload.len() as u64);
    }
}

#[test]
fn backpressure_never_corrupts_results() {
    // A 4-slot queue under a 200-query burst: rejections are typed and
    // every accepted query still answers bit-identically.
    let workload = zipf_workload(
        &WorkloadConfig {
            scenarios: 30,
            skew: 0.8,
            queries: 200,
        },
        13,
    );
    let eng = engine(2, 4);
    let mut accepted = Vec::new();
    let mut rejections = 0u64;
    for &q in &workload {
        match eng.submit(q) {
            Ok(t) => accepted.push((q, t)),
            Err(EngineError::Rejected(RejectReason::QueueFull { capacity })) => {
                assert_eq!(capacity, 4);
                rejections += 1;
            }
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    assert_eq!(eng.metrics().rejected, rejections);
    for (q, t) in accepted {
        let got = t.wait().expect("accepted queries are answered");
        assert_eq!(got, direct_eval(&q).unwrap());
    }
}
