//! Property-based tests: SAN solvers and the plane availability model.

use oaq_linalg::Matrix;
use oaq_san::ctmc::Ctmc;
use oaq_san::model::{Delay, SanBuilder, SanModel};
use oaq_san::phase_type::{erlang_cdf, erlang_stage_rate};
use oaq_san::plane::{product_form_pk, PlaneModelConfig, SparePolicy};
use oaq_san::solver::{
    stationary_distribution, time_average_distribution_dense, transient_distribution,
    transient_distribution_dense, TransientKernel,
};
use proptest::prelude::*;

/// A random irreducible birth–death generator on `n` states.
fn birth_death_generator(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(0.1f64..5.0, 2 * (n - 1)).prop_map(move |rates| {
        let mut q = Matrix::zeros(n, n);
        for i in 0..n - 1 {
            let up = rates[i];
            let down = rates[n - 1 + i];
            q[(i, i + 1)] += up;
            q[(i, i)] -= up;
            q[(i + 1, i)] += down;
            q[(i + 1, i + 1)] -= down;
        }
        q
    })
}

fn birth_death_model(arrive: f64, serve: f64, cap: u32) -> SanModel {
    let mut b = SanBuilder::new();
    let n = b.add_place("n", 0);
    b.add_activity(
        "arrive",
        Delay::exponential_rate(arrive),
        move |m| m.tokens(n) < cap,
        move |m| m.add_tokens(n, 1),
    );
    b.add_activity(
        "serve",
        Delay::exponential_rate(serve),
        move |m| m.tokens(n) > 0,
        move |m| m.remove_tokens(n, 1),
    );
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn stationary_satisfies_balance(q in birth_death_generator(5)) {
        let pi = stationary_distribution(&q).unwrap();
        prop_assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let flow = q.vec_mul(&pi).unwrap();
        for f in flow {
            prop_assert!(f.abs() < 1e-9, "piQ component {f}");
        }
    }

    #[test]
    fn transient_is_a_distribution_at_all_times(
        q in birth_death_generator(4),
        t in 0.0f64..20.0,
    ) {
        let p = transient_distribution(&q, &[1.0, 0.0, 0.0, 0.0], t, 1e-12).unwrap();
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&x| x >= -1e-12));
    }

    #[test]
    fn transient_converges_to_stationary(q in birth_death_generator(4)) {
        let pi = stationary_distribution(&q).unwrap();
        let p = transient_distribution(&q, &[1.0, 0.0, 0.0, 0.0], 500.0, 1e-12).unwrap();
        for (a, b) in p.iter().zip(&pi) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn sparse_kernel_matches_dense_transient(
        q in birth_death_generator(5),
        t in 0.0f64..50.0,
    ) {
        // The shared-iterate CSR kernel and the dense per-time-point
        // reference must agree to 1e-12 on arbitrary generators.
        let p0 = [1.0, 0.0, 0.0, 0.0, 0.0];
        let sparse = transient_distribution(&q, &p0, t, 1e-12).unwrap();
        let dense = transient_distribution_dense(&q, &p0, t, 1e-12).unwrap();
        for (s, d) in sparse.iter().zip(&dense) {
            prop_assert!((s - d).abs() <= 1e-12, "sparse {s} vs dense {d}");
        }
    }

    #[test]
    fn sparse_kernel_matches_dense_time_average(
        q in birth_death_generator(4),
        horizon in 0.1f64..30.0,
        intervals in 1usize..64,
    ) {
        let p0 = [1.0, 0.0, 0.0, 0.0];
        let kernel = TransientKernel::new(&q).unwrap();
        let sparse = kernel.time_average(&p0, horizon, intervals).unwrap();
        let dense = time_average_distribution_dense(&q, &p0, horizon, intervals).unwrap();
        for (s, d) in sparse.iter().zip(&dense) {
            prop_assert!((s - d).abs() <= 1e-12, "sparse {s} vs dense {d}");
        }
    }

    #[test]
    fn transient_batch_is_batch_invariant(
        q in birth_death_generator(4),
        times in prop::collection::vec(0.0f64..30.0, 1..6),
    ) {
        // Each time point's answer is bit-identical whether it is solved
        // alone or as part of an arbitrary batch.
        let p0 = [1.0, 0.0, 0.0, 0.0];
        let kernel = TransientKernel::new(&q).unwrap();
        let batch = kernel.transient_batch(&p0, &times, 1e-12).unwrap();
        for (&t, row) in times.iter().zip(&batch) {
            let alone = kernel.transient(&p0, t, 1e-12).unwrap();
            prop_assert_eq!(row, &alone, "t = {}", t);
        }
    }

    #[test]
    fn ctmc_stationary_matches_detailed_balance(
        arrive in 0.2f64..3.0,
        serve in 0.2f64..3.0,
    ) {
        // Birth–death chains satisfy detailed balance: π_{k+1}/π_k = λ/µ.
        let model = birth_death_model(arrive, serve, 4);
        let ctmc = Ctmc::explore(&model, 100).unwrap();
        let pi = ctmc.stationary().unwrap();
        let rho = arrive / serve;
        for k in 0..4 {
            let ratio = pi[k + 1] / pi[k];
            prop_assert!((ratio - rho).abs() < 1e-6 * rho.max(1.0), "k={k}: {ratio} vs {rho}");
        }
    }

    #[test]
    fn erlang_cdf_is_a_cdf(shape in 1u32..50, mean in 0.1f64..50.0) {
        let rate = erlang_stage_rate(shape, mean);
        let mut last = 0.0;
        for i in 0..=40 {
            let t = mean * f64::from(i) / 10.0;
            let c = erlang_cdf(shape, rate, t);
            prop_assert!((0.0..=1.0).contains(&c));
            prop_assert!(c >= last - 1e-12);
            last = c;
        }
        // Median near the mean for large shapes.
        if shape >= 20 {
            let at_mean = erlang_cdf(shape, rate, mean);
            prop_assert!((at_mean - 0.5).abs() < 0.1);
        }
    }

    #[test]
    fn steady_state_detection_matches_full_transient_batch(
        q in birth_death_generator(5),
        times in prop::collection::vec(0.0f64..50_000.0, 1..6),
    ) {
        // The steady-state-detecting path and the full-iteration (PR 3)
        // path must agree to 1e-12 at every horizon, including horizons
        // deep past mixing where detection short-circuits the loop.
        let p0 = [1.0, 0.0, 0.0, 0.0, 0.0];
        let kernel = TransientKernel::new(&q).unwrap();
        let detected = kernel.transient_batch(&p0, &times, 1e-12).unwrap();
        let full = kernel.transient_batch_full(&p0, &times, 1e-12).unwrap();
        for ((d_row, f_row), &t) in detected.iter().zip(&full).zip(&times) {
            for (d, f) in d_row.iter().zip(f_row) {
                prop_assert!((d - f).abs() <= 1e-12, "t = {t}: detected {d} vs full {f}");
            }
        }
    }

    #[test]
    fn steady_state_detection_matches_full_time_average(
        q in birth_death_generator(4),
        horizons in prop::collection::vec(0.1f64..1000.0, 1..4),
        intervals in 2usize..32,
    ) {
        // Horizons are bounded so the comparison stays meaningful: the
        // full-iteration reference accumulates one weighted addition per
        // matvec, so its own summation rounding grows like Λ·φ·ε and
        // crosses 1e-12 near Λ·φ ≈ 1e4 — beyond that the detected path
        // (which serves converged tails in one fused addition) is the
        // *cleaner* of the two and the diff measures reference noise, not
        // detection error.
        let p0 = [0.0, 1.0, 0.0, 0.0];
        let kernel = TransientKernel::new(&q).unwrap();
        let detected = kernel.time_average_many(&p0, &horizons, intervals).unwrap();
        let full = kernel
            .time_average_many_full(&p0, &horizons, intervals)
            .unwrap();
        for ((d_row, f_row), &h) in detected.iter().zip(&full).zip(&horizons) {
            for (d, f) in d_row.iter().zip(f_row) {
                prop_assert!((d - f).abs() <= 1e-12, "phi = {h}: detected {d} vs full {f}");
            }
        }
    }

    #[test]
    fn product_form_matches_joint_solve(
        lambda_e in 1u32..10,
        eta in 9u32..12,
        phi_k in 1u32..4,
    ) {
        // The per-plane convolution decomposition must agree with the
        // exact joint chain over random paper-scale scenarios.
        let phi = 10_000.0 * f64::from(phi_k);
        let cfg = PlaneModelConfig {
            capacity: 14,
            spares: 2,
            lambda: f64::from(lambda_e) * 1e-5,
            phi,
            eta,
            policy: SparePolicy::PinAtThreshold,
        };
        let plane = cfg.capacity_solve(10_000).unwrap();
        let joint = cfg.joint_capacity_solve(2, 10_000).unwrap();
        let product = product_form_pk(&[&plane, &plane], phi, 64).unwrap();
        let exact = product_form_pk(&[&joint], phi, 64).unwrap();
        prop_assert_eq!(product.len(), exact.len());
        for (k, (p, e)) in product.iter().zip(&exact).enumerate() {
            prop_assert!((p - e).abs() <= 1e-12, "k = {k}: product {p} vs joint {e}");
        }
    }

    #[test]
    fn plane_markov_distribution_is_proper(
        lambda_e in 1u32..10,
        eta in 9u32..12,
    ) {
        let lambda = f64::from(lambda_e) * 1e-5;
        let cfg = PlaneModelConfig::reference(lambda, 30_000.0, eta);
        let d = cfg.build_markov(8).capacity_distribution_markov(100_000).unwrap();
        prop_assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for (k, &p) in d.iter().enumerate().take(eta as usize) {
            prop_assert_eq!(p, 0.0, "pinning forbids k = {}", k);
        }
        prop_assert!(d[14] > 0.0);
    }
}
