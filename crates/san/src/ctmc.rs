//! CTMC extraction from all-exponential SAN models.

use std::collections::HashMap;
use std::sync::OnceLock;

use oaq_linalg::Matrix;

use crate::model::{ActivityId, Delay, Marking, SanModel};
use crate::solver::{self, SolverError, TransientKernel};

/// Errors from state-space exploration.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CtmcError {
    /// The model contains a non-exponential timed activity; the CTMC path
    /// cannot represent it (see [`crate::phase_type`]).
    NonMarkovianActivity {
        /// The offending activity's name.
        activity: String,
    },
    /// Exploration exceeded the state budget.
    StateSpaceTooLarge {
        /// The configured limit.
        limit: usize,
    },
    /// A downstream numerical failure.
    Solver(SolverError),
}

impl std::fmt::Display for CtmcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CtmcError::NonMarkovianActivity { activity } => {
                write!(f, "activity '{activity}' is not exponential")
            }
            CtmcError::StateSpaceTooLarge { limit } => {
                write!(f, "state space exceeds {limit} states")
            }
            CtmcError::Solver(e) => write!(f, "solver failure: {e}"),
        }
    }
}

impl std::error::Error for CtmcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CtmcError::Solver(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SolverError> for CtmcError {
    fn from(e: SolverError) -> Self {
        CtmcError::Solver(e)
    }
}

/// An explicit continuous-time Markov chain extracted from a SAN.
///
/// See the [crate-level example](crate) for usage.
#[derive(Debug)]
pub struct Ctmc {
    states: Vec<Marking>,
    generator: Matrix,
    initial_index: usize,
    /// The sparse uniformization kernel, built on first transient use and
    /// shared by every subsequent solve (and thread).
    kernel: OnceLock<TransientKernel>,
}

impl Ctmc {
    /// Explores the reachable marking space of `model` (breadth-first from
    /// the initial marking) and builds the generator matrix.
    ///
    /// # Errors
    ///
    /// * [`CtmcError::NonMarkovianActivity`] if a reachable marking enables
    ///   a deterministic or Erlang activity.
    /// * [`CtmcError::StateSpaceTooLarge`] past `max_states`.
    pub fn explore(model: &SanModel, max_states: usize) -> Result<Self, CtmcError> {
        let initial = model.initial_marking();
        let mut index: HashMap<Marking, usize> = HashMap::from([(initial.clone(), 0)]);
        let mut states = vec![initial];
        let mut transitions: Vec<(usize, usize, f64)> = Vec::new();
        let mut frontier = vec![0usize];
        while let Some(si) = frontier.pop() {
            let marking = states[si].clone();
            for a in model.enabled_activities(&marking) {
                let rate = Self::activity_rate(model, a, &marking)?;
                let mut next = marking.clone();
                model.fire(a, &mut next);
                let ni = match index.get(&next) {
                    Some(&i) => i,
                    None => {
                        let i = states.len();
                        if i >= max_states {
                            return Err(CtmcError::StateSpaceTooLarge { limit: max_states });
                        }
                        index.insert(next.clone(), i);
                        states.push(next);
                        frontier.push(i);
                        i
                    }
                };
                if ni != si {
                    transitions.push((si, ni, rate));
                }
                // Self-loops contribute nothing to the generator.
            }
        }
        let n = states.len();
        let mut q = Matrix::zeros(n.max(1), n.max(1));
        for (i, j, r) in transitions {
            q[(i, j)] += r;
            q[(i, i)] -= r;
        }
        Ok(Ctmc {
            states,
            generator: q,
            initial_index: 0,
            kernel: OnceLock::new(),
        })
    }

    /// The shared [`TransientKernel`] over this chain's generator, built
    /// once (the generator is immutable, so the CSR form never changes).
    ///
    /// # Errors
    ///
    /// Propagates generator validation failures.
    pub fn kernel(&self) -> Result<&TransientKernel, CtmcError> {
        if let Some(k) = self.kernel.get() {
            return Ok(k);
        }
        let built = TransientKernel::new(&self.generator)?;
        // A racing thread may have installed its own copy; both were built
        // from the same generator by the same deterministic code, so which
        // one wins is unobservable.
        Ok(self.kernel.get_or_init(|| built))
    }

    fn activity_rate(
        model: &SanModel,
        activity: ActivityId,
        marking: &Marking,
    ) -> Result<f64, CtmcError> {
        match &model.activities[activity.0].delay {
            Delay::Exponential(rate) => Ok(rate(marking)),
            _ => Err(CtmcError::NonMarkovianActivity {
                activity: model.activity_name(activity).to_string(),
            }),
        }
    }

    /// Number of reachable states.
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// The marking of state `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn state(&self, i: usize) -> &Marking {
        &self.states[i]
    }

    /// The generator matrix `Q`.
    #[must_use]
    pub fn generator(&self) -> &Matrix {
        &self.generator
    }

    /// The initial distribution (a point mass on the initial marking).
    #[must_use]
    pub fn initial_distribution(&self) -> Vec<f64> {
        let mut p = vec![0.0; self.states.len()];
        p[self.initial_index] = 1.0;
        p
    }

    /// Stationary distribution over states.
    ///
    /// # Errors
    ///
    /// Propagates solver failures (e.g. reducible chains).
    pub fn stationary(&self) -> Result<Vec<f64>, CtmcError> {
        Ok(solver::stationary_distribution(&self.generator)?)
    }

    /// Transient distribution at time `t`, starting from the initial
    /// marking. Uses the cached sparse kernel.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn transient(&self, t: f64) -> Result<Vec<f64>, CtmcError> {
        Ok(self
            .kernel()?
            .transient(&self.initial_distribution(), t, 1e-12)?)
    }

    /// Transient distributions at every time in `times`, from the initial
    /// marking, over one shared iterate sequence (see
    /// [`TransientKernel::transient_batch`]). Each entry is bit-identical
    /// to the corresponding single-time [`Self::transient`] call.
    ///
    /// # Errors
    ///
    /// Propagates solver failures; rejects negative or non-finite times.
    pub fn transient_batch(&self, times: &[f64]) -> Result<Vec<Vec<f64>>, CtmcError> {
        Ok(self
            .kernel()?
            .transient_batch(&self.initial_distribution(), times, 1e-12)?)
    }

    /// Expected fraction of time in each state over `[0, horizon]`, from the
    /// initial marking: a Simpson quadrature whose panels are all evaluated
    /// over one shared iterate sequence.
    ///
    /// # Errors
    ///
    /// * [`SolverError::InvalidInput`] (wrapped in [`CtmcError::Solver`])
    ///   for `intervals == 0` or a non-finite / non-positive horizon.
    /// * Propagates other solver failures.
    pub fn time_average(&self, horizon: f64, intervals: usize) -> Result<Vec<f64>, CtmcError> {
        Ok(self
            .kernel()?
            .time_average(&self.initial_distribution(), horizon, intervals)?)
    }

    /// Expected instantaneous reward `Σᵢ p[i]·reward(state i)` under a state
    /// distribution `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p.len()` differs from the state count.
    #[must_use]
    pub fn expected_reward(&self, p: &[f64], reward: impl Fn(&Marking) -> f64) -> f64 {
        assert_eq!(p.len(), self.states.len(), "distribution length mismatch");
        p.iter()
            .zip(&self.states)
            .map(|(pi, s)| pi * reward(s))
            .sum()
    }

    /// Aggregates a state distribution into classes via `classify`.
    ///
    /// # Panics
    ///
    /// Panics if `classify` emits a class `>= classes` or `p` has the wrong
    /// length.
    #[must_use]
    pub fn classify_distribution(
        &self,
        p: &[f64],
        classify: impl Fn(&Marking) -> usize,
        classes: usize,
    ) -> Vec<f64> {
        assert_eq!(p.len(), self.states.len(), "distribution length mismatch");
        let mut out = vec![0.0; classes];
        for (pi, s) in p.iter().zip(&self.states) {
            let c = classify(s);
            assert!(c < classes, "class {c} out of range");
            out[c] += pi;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Delay, SanBuilder};

    fn birth_death() -> (SanModel, crate::model::PlaceId) {
        let mut b = SanBuilder::new();
        let n = b.add_place("n", 0);
        b.add_activity(
            "arrive",
            Delay::exponential_rate(1.0),
            move |m| m.tokens(n) < 3,
            move |m| m.add_tokens(n, 1),
        );
        b.add_activity(
            "serve",
            Delay::exponential_with(move |m| 2.0 * f64::from(m.tokens(n).min(1))),
            move |m| m.tokens(n) > 0,
            move |m| m.remove_tokens(n, 1),
        );
        (b.build(), n)
    }

    #[test]
    fn explores_exact_state_count() {
        let (model, _) = birth_death();
        let ctmc = Ctmc::explore(&model, 100).unwrap();
        assert_eq!(ctmc.num_states(), 4);
    }

    #[test]
    fn stationary_matches_closed_form() {
        let (model, n) = birth_death();
        let ctmc = Ctmc::explore(&model, 100).unwrap();
        let pi = ctmc.stationary().unwrap();
        let by_tokens = ctmc.classify_distribution(&pi, |m| m.tokens(n) as usize, 4);
        let expected = [8.0 / 15.0, 4.0 / 15.0, 2.0 / 15.0, 1.0 / 15.0];
        for (p, e) in by_tokens.iter().zip(&expected) {
            assert!((p - e).abs() < 1e-12, "{p} vs {e}");
        }
    }

    #[test]
    fn transient_starts_at_initial() {
        let (model, _) = birth_death();
        let ctmc = Ctmc::explore(&model, 100).unwrap();
        let p = ctmc.transient(0.0).unwrap();
        assert_eq!(p[0], 1.0);
    }

    #[test]
    fn ctmc_agrees_with_simulation() {
        let (model, n) = birth_death();
        let ctmc = Ctmc::explore(&model, 100).unwrap();
        let pi = ctmc.stationary().unwrap();
        let exact = ctmc.classify_distribution(&pi, |m| m.tokens(n) as usize, 4);
        let simulated = crate::sim::steady_state_distribution(
            &model,
            |m| m.tokens(n) as usize,
            4,
            &crate::sim::SteadyStateOptions {
                warmup: 200.0,
                horizon: 50_000.0,
                seed: 17,
            },
        );
        for (e, s) in exact.iter().zip(&simulated) {
            assert!((e - s).abs() < 0.01, "exact {e} vs simulated {s}");
        }
    }

    #[test]
    fn deterministic_activity_rejected() {
        let mut b = SanBuilder::new();
        let p = b.add_place("p", 0);
        b.add_activity(
            "det",
            Delay::deterministic(5.0),
            |_| true,
            move |m| m.add_tokens(p, 1),
        );
        let model = b.build();
        assert!(matches!(
            Ctmc::explore(&model, 10),
            Err(CtmcError::NonMarkovianActivity { .. })
        ));
    }

    #[test]
    fn state_budget_enforced() {
        let mut b = SanBuilder::new();
        let p = b.add_place("p", 0);
        b.add_activity(
            "grow",
            Delay::exponential_rate(1.0),
            |_| true,
            move |m| m.add_tokens(p, 1),
        );
        let model = b.build();
        assert!(matches!(
            Ctmc::explore(&model, 50),
            Err(CtmcError::StateSpaceTooLarge { limit: 50 })
        ));
    }

    #[test]
    fn self_loops_do_not_corrupt_generator() {
        // An activity whose effect is a no-op in some marking.
        let mut b = SanBuilder::new();
        let p = b.add_place("p", 1);
        b.add_activity(
            "toggle_or_nothing",
            Delay::exponential_rate(3.0),
            |_| true,
            move |m| {
                if m.tokens(p) == 1 {
                    m.set_tokens(p, 0);
                } else {
                    m.set_tokens(p, 1);
                }
            },
        );
        let model = b.build();
        let ctmc = Ctmc::explore(&model, 10).unwrap();
        let pi = ctmc.stationary().unwrap();
        assert!((pi[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn time_average_rejects_zero_intervals_and_bad_horizon() {
        let (model, _) = birth_death();
        let ctmc = Ctmc::explore(&model, 100).unwrap();
        for bad in [
            ctmc.time_average(10.0, 0),
            ctmc.time_average(f64::NAN, 8),
            ctmc.time_average(-1.0, 8),
        ] {
            assert!(
                matches!(bad, Err(CtmcError::Solver(SolverError::InvalidInput(_)))),
                "{bad:?}"
            );
        }
    }

    #[test]
    fn transient_batch_matches_single_calls_bitwise() {
        let (model, _) = birth_death();
        let ctmc = Ctmc::explore(&model, 100).unwrap();
        let times = [0.0, 0.3, 1.0, 10.0];
        let batch = ctmc.transient_batch(&times).unwrap();
        for (&t, row) in times.iter().zip(&batch) {
            assert_eq!(row, &ctmc.transient(t).unwrap());
        }
    }

    #[test]
    fn expected_reward_weights_states() {
        let (model, n) = birth_death();
        let ctmc = Ctmc::explore(&model, 100).unwrap();
        let pi = ctmc.stationary().unwrap();
        let mean_tokens = ctmc.expected_reward(&pi, |m| f64::from(m.tokens(n)));
        // Σ k π_k = (0·8 + 1·4 + 2·2 + 3·1)/15 = 11/15.
        assert!((mean_tokens - 11.0 / 15.0).abs() < 1e-12);
    }
}
