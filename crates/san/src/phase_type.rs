//! Erlang phase-type approximation of deterministic delays.
//!
//! UltraSAN solves models with deterministic activities directly; our exact
//! numerical path is a CTMC solver, which requires exponential stages. An
//! `Erlang(m, m/T)` delay has mean `T` and coefficient of variation
//! `1/√m`, so as `m` grows it converges (in distribution) to the
//! deterministic delay `T`. The plane model's Markov variant uses a stage
//! place advanced by a single exponential activity — the helpers here
//! quantify how large `m` must be for a target accuracy, which experiment
//! E11 (ablation) sweeps.

/// Per-stage rate of the Erlang(m) approximation of a deterministic `mean`.
///
/// # Panics
///
/// Panics if `shape == 0` or `mean <= 0`.
///
/// # Examples
///
/// ```
/// assert_eq!(oaq_san::phase_type::erlang_stage_rate(10, 5.0), 2.0);
/// ```
#[must_use]
pub fn erlang_stage_rate(shape: u32, mean: f64) -> f64 {
    assert!(shape > 0, "shape must be >= 1");
    assert!(mean.is_finite() && mean > 0.0, "mean must be positive");
    shape as f64 / mean
}

/// CDF of an Erlang(`shape`, `rate`) at `t`:
/// `1 − e^{−rt} Σ_{k<shape} (rt)^k / k!`.
///
/// # Panics
///
/// Panics if `shape == 0` or `rate <= 0`.
#[must_use]
pub fn erlang_cdf(shape: u32, rate: f64, t: f64) -> f64 {
    assert!(shape > 0, "shape must be >= 1");
    assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
    if t <= 0.0 {
        return 0.0;
    }
    let x = rate * t;
    let mut term = 1.0; // x^k / k!
    let mut sum = 1.0;
    for k in 1..shape {
        term *= x / f64::from(k);
        sum += term;
    }
    // Clamp: for tiny or huge x the subtraction can round a hair outside
    // the unit interval.
    (1.0 - (-x).exp() * sum).clamp(0.0, 1.0)
}

/// Coefficient of variation of the Erlang(`shape`) approximation — the
/// scale-free distance from determinism (`0` would be exact).
///
/// # Panics
///
/// Panics if `shape == 0`.
#[must_use]
pub fn erlang_cv(shape: u32) -> f64 {
    assert!(shape > 0, "shape must be >= 1");
    1.0 / (shape as f64).sqrt()
}

/// The smallest Erlang shape whose coefficient of variation is at most
/// `target_cv`.
///
/// # Panics
///
/// Panics if `target_cv <= 0`.
#[must_use]
pub fn shape_for_cv(target_cv: f64) -> u32 {
    assert!(target_cv > 0.0, "target CV must be positive");
    (1.0 / (target_cv * target_cv)).ceil().max(1.0) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_rate_preserves_mean() {
        // mean = shape / rate.
        let rate = erlang_stage_rate(8, 4.0);
        assert!((8.0 / rate - 4.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_basic_properties() {
        assert_eq!(erlang_cdf(3, 1.0, 0.0), 0.0);
        assert!(erlang_cdf(3, 1.0, 100.0) > 0.999_999);
        // Shape 1 is exponential.
        let t = 0.7;
        assert!((erlang_cdf(1, 2.0, t) - (1.0 - (-2.0 * t).exp())).abs() < 1e-12);
    }

    #[test]
    fn cdf_is_monotone_in_t() {
        let mut last = 0.0;
        for i in 1..50 {
            let c = erlang_cdf(5, 2.5, i as f64 * 0.1);
            assert!(c >= last);
            last = c;
        }
    }

    #[test]
    fn higher_shape_concentrates_at_mean() {
        // P(X < 0.8·mean) shrinks as shape grows, keeping the mean fixed.
        let mean = 10.0;
        let early = |m: u32| erlang_cdf(m, erlang_stage_rate(m, mean), 0.8 * mean);
        assert!(early(40) < early(10));
        assert!(early(10) < early(2));
    }

    #[test]
    fn cv_and_shape_roundtrip() {
        assert_eq!(erlang_cv(4), 0.5);
        assert_eq!(shape_for_cv(0.5), 4);
        assert_eq!(shape_for_cv(0.1), 100);
        assert!(erlang_cv(shape_for_cv(0.2)) <= 0.2);
    }
}
