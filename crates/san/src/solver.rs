//! Numerical solvers on explicit generator matrices.

use oaq_linalg::{LinalgError, Matrix};

/// Errors from the Markov solvers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SolverError {
    /// The generator matrix is not square or rows do not sum to ~0.
    InvalidGenerator(String),
    /// The linear solve failed (e.g. reducible chain).
    Numeric(LinalgError),
}

impl std::fmt::Display for SolverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolverError::InvalidGenerator(msg) => write!(f, "invalid generator: {msg}"),
            SolverError::Numeric(e) => write!(f, "numeric failure: {e}"),
        }
    }
}

impl std::error::Error for SolverError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SolverError::Numeric(e) => Some(e),
            SolverError::InvalidGenerator(_) => None,
        }
    }
}

fn validate_generator(q: &Matrix) -> Result<(), SolverError> {
    if !q.is_square() {
        return Err(SolverError::InvalidGenerator(format!(
            "generator must be square, got {}x{}",
            q.rows(),
            q.cols()
        )));
    }
    let scale = q.max_norm().max(1.0);
    for i in 0..q.rows() {
        let row_sum: f64 = (0..q.cols()).map(|j| q[(i, j)]).sum();
        if row_sum.abs() > 1e-8 * scale {
            return Err(SolverError::InvalidGenerator(format!(
                "row {i} sums to {row_sum}, expected 0"
            )));
        }
    }
    Ok(())
}

/// Solves `π Q = 0`, `Σπ = 1` for an irreducible CTMC generator `Q` by a
/// direct dense solve (the normalization replaces the last column of `Qᵀ`).
///
/// # Errors
///
/// * [`SolverError::InvalidGenerator`] if `Q` is malformed.
/// * [`SolverError::Numeric`] if the system is singular (reducible chain).
///
/// # Examples
///
/// ```
/// use oaq_linalg::Matrix;
/// use oaq_san::solver::stationary_distribution;
/// // Two-state chain: rate 1 up->down, rate 4 down->up → π = (0.8, 0.2).
/// let q = Matrix::from_rows(&[&[-1.0, 1.0], &[4.0, -4.0]]).unwrap();
/// let pi = stationary_distribution(&q).unwrap();
/// assert!((pi[0] - 0.8).abs() < 1e-12);
/// ```
pub fn stationary_distribution(q: &Matrix) -> Result<Vec<f64>, SolverError> {
    validate_generator(q)?;
    let n = q.rows();
    // Build A = Qᵀ with the last row replaced by the normalization Σπ = 1.
    let mut a = q.transpose();
    for j in 0..n {
        a[(n - 1, j)] = 1.0;
    }
    let mut b = vec![0.0; n];
    b[n - 1] = 1.0;
    let pi = a.solve(&b).map_err(SolverError::Numeric)?;
    // Clean tiny negative round-off and renormalize.
    let cleaned: Vec<f64> = pi.iter().map(|&x| x.max(0.0)).collect();
    oaq_linalg::vec_ops::normalize_prob(&cleaned)
        .ok_or_else(|| SolverError::InvalidGenerator("zero stationary mass".to_string()))
}

/// Transient distribution `p(t) = p0 · e^{Qt}` by uniformization, accurate
/// to `tol` in total variation.
///
/// # Errors
///
/// * [`SolverError::InvalidGenerator`] if `Q` is malformed or `p0` has the
///   wrong length / is not a distribution.
///
/// # Examples
///
/// ```
/// use oaq_linalg::Matrix;
/// use oaq_san::solver::transient_distribution;
/// let q = Matrix::from_rows(&[&[-1.0, 1.0], &[4.0, -4.0]]).unwrap();
/// let p = transient_distribution(&q, &[1.0, 0.0], 100.0, 1e-12).unwrap();
/// assert!((p[0] - 0.8).abs() < 1e-9); // converged to stationary
/// ```
pub fn transient_distribution(
    q: &Matrix,
    p0: &[f64],
    t: f64,
    tol: f64,
) -> Result<Vec<f64>, SolverError> {
    validate_generator(q)?;
    let n = q.rows();
    if p0.len() != n {
        return Err(SolverError::InvalidGenerator(format!(
            "p0 length {} does not match {n} states",
            p0.len()
        )));
    }
    let mass: f64 = p0.iter().sum();
    if p0.iter().any(|&x| x < -1e-12) || (mass - 1.0).abs() > 1e-9 {
        return Err(SolverError::InvalidGenerator(
            "p0 is not a probability vector".to_string(),
        ));
    }
    if t < 0.0 || !t.is_finite() {
        return Err(SolverError::InvalidGenerator(format!("bad time {t}")));
    }
    if t == 0.0 {
        return Ok(p0.to_vec());
    }
    // Uniformization: P = I + Q/Λ with Λ ≥ max |q_ii|.
    let lambda = (0..n)
        .map(|i| -q[(i, i)])
        .fold(0.0_f64, f64::max)
        .max(1e-12)
        * 1.000_001;
    let mut p_mat = Matrix::identity(n);
    for i in 0..n {
        for j in 0..n {
            p_mat[(i, j)] += q[(i, j)] / lambda;
        }
    }
    let lt = lambda * t;
    // Accumulate Σ_k Poisson(lt; k) · p0 Pᵏ with scaled Poisson weights.
    let mut term = p0.to_vec(); // p0 Pᵏ
    let mut out = vec![0.0; n];
    // Poisson weights computed iteratively in log space to avoid overflow.
    // Truncation: stop when the accumulated mass reaches 1 − tol, or —
    // because rounding can leave the numeric sum permanently short of it —
    // when k is safely past the Poisson bulk (mean lt, sd √lt) and the
    // current weight has fallen below tol. The discarded tail is
    // renormalized away below.
    let k_bulk = lt + 10.0 * lt.sqrt() + 50.0;
    let mut log_weight = -lt; // log Poisson(0)
    let mut accumulated = 0.0;
    let mut k: u64 = 0;
    loop {
        let w = log_weight.exp();
        if w > 0.0 {
            for (o, x) in out.iter_mut().zip(&term) {
                *o += w * x;
            }
            accumulated += w;
        }
        if accumulated >= 1.0 - tol || (k as f64 > k_bulk && w < tol) {
            break;
        }
        k += 1;
        if k > 10_000_000 {
            return Err(SolverError::InvalidGenerator(
                "uniformization failed to converge".to_string(),
            ));
        }
        log_weight += (lt / k as f64).ln();
        term = p_mat.vec_mul(&term).map_err(SolverError::Numeric)?;
    }
    // The truncated tail (≤ tol) is discarded; renormalize.
    Ok(oaq_linalg::vec_ops::normalize_prob(&out).unwrap_or(out))
}

/// Integral `∫₀ᵀ p(t) dt / T`: the expected fraction of time spent in each
/// state over `[0, T]`, computed by Simpson quadrature on the transient
/// distribution with `intervals` panels (rounded up to even).
///
/// This is the quantity the paper's P(k) reduces to under the deterministic
/// scheduled-deployment cycle: the time-average of the capacity process over
/// one cycle of length φ.
///
/// # Errors
///
/// Propagates [`SolverError`] from the transient solves.
pub fn time_average_distribution(
    q: &Matrix,
    p0: &[f64],
    horizon: f64,
    intervals: usize,
) -> Result<Vec<f64>, SolverError> {
    if horizon <= 0.0 || !horizon.is_finite() {
        return Err(SolverError::InvalidGenerator(format!(
            "bad horizon {horizon}"
        )));
    }
    let m = intervals.max(2).next_multiple_of(2);
    let n = q.rows();
    let h = horizon / m as f64;
    let mut acc = vec![0.0; n];
    for s in 0..=m {
        let p = transient_distribution(q, p0, h * s as f64, 1e-12)?;
        let w = if s == 0 || s == m {
            1.0
        } else if s % 2 == 1 {
            4.0
        } else {
            2.0
        };
        for (a, x) in acc.iter_mut().zip(&p) {
            *a += w * x;
        }
    }
    let scale = h / 3.0 / horizon;
    for a in &mut acc {
        *a *= scale;
    }
    Ok(oaq_linalg::vec_ops::normalize_prob(&acc).unwrap_or(acc))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_state() -> Matrix {
        Matrix::from_rows(&[&[-1.0, 1.0], &[4.0, -4.0]]).unwrap()
    }

    #[test]
    fn stationary_two_state() {
        let pi = stationary_distribution(&two_state()).unwrap();
        assert!((pi[0] - 0.8).abs() < 1e-12);
        assert!((pi[1] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn stationary_birth_death_matches_closed_form() {
        // Birth 1, death 2 on {0,1,2,3}: π ∝ 0.5^k.
        let q = Matrix::from_rows(&[
            &[-1.0, 1.0, 0.0, 0.0],
            &[2.0, -3.0, 1.0, 0.0],
            &[0.0, 2.0, -3.0, 1.0],
            &[0.0, 0.0, 2.0, -2.0],
        ])
        .unwrap();
        let pi = stationary_distribution(&q).unwrap();
        let expected = [8.0 / 15.0, 4.0 / 15.0, 2.0 / 15.0, 1.0 / 15.0];
        for (p, e) in pi.iter().zip(&expected) {
            assert!((p - e).abs() < 1e-12);
        }
    }

    #[test]
    fn invalid_generator_rejected() {
        let q = Matrix::from_rows(&[&[-1.0, 2.0], &[4.0, -4.0]]).unwrap();
        assert!(matches!(
            stationary_distribution(&q),
            Err(SolverError::InvalidGenerator(_))
        ));
        let rect = Matrix::zeros(2, 3);
        assert!(stationary_distribution(&rect).is_err());
    }

    #[test]
    fn transient_at_zero_is_initial() {
        let p = transient_distribution(&two_state(), &[0.3, 0.7], 0.0, 1e-12).unwrap();
        assert_eq!(p, vec![0.3, 0.7]);
    }

    #[test]
    fn transient_matches_closed_form() {
        // Two-state: p0(t) = π0 + (1-π0) e^{-(a+b)t} starting in state 0.
        let q = two_state();
        for &t in &[0.1, 0.5, 1.0, 2.0] {
            let p = transient_distribution(&q, &[1.0, 0.0], t, 1e-13).unwrap();
            let expected = 0.8 + 0.2 * (-5.0_f64 * t).exp();
            assert!(
                (p[0] - expected).abs() < 1e-9,
                "t={t}: {} vs {expected}",
                p[0]
            );
        }
    }

    #[test]
    fn transient_converges_to_stationary() {
        let p = transient_distribution(&two_state(), &[0.0, 1.0], 50.0, 1e-12).unwrap();
        assert!((p[0] - 0.8).abs() < 1e-9);
    }

    #[test]
    fn transient_rejects_bad_p0() {
        let q = two_state();
        assert!(transient_distribution(&q, &[1.0], 1.0, 1e-9).is_err());
        assert!(transient_distribution(&q, &[0.7, 0.7], 1.0, 1e-9).is_err());
        assert!(transient_distribution(&q, &[1.0, 0.0], f64::NAN, 1e-9).is_err());
    }

    #[test]
    fn time_average_matches_analytic() {
        // ∫₀ᵀ p0(t) dt / T with p0(t) = 0.8 + 0.2 e^{-5t}.
        let q = two_state();
        let horizon = 2.0;
        let avg = time_average_distribution(&q, &[1.0, 0.0], horizon, 64).unwrap();
        let expected = 0.8 + 0.2 * (1.0 - (-5.0_f64 * horizon).exp()) / (5.0 * horizon);
        assert!((avg[0] - expected).abs() < 1e-6, "{} vs {expected}", avg[0]);
    }

    #[test]
    fn time_average_rejects_bad_horizon() {
        assert!(time_average_distribution(&two_state(), &[1.0, 0.0], 0.0, 8).is_err());
    }
}
