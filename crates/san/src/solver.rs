//! Numerical solvers on explicit generator matrices.
//!
//! The transient path is built around a reusable [`TransientKernel`]: the
//! uniformized transition matrix stored sparse (CSR), with *shared-iterate*
//! batching — the vector sequence `vₖ = p₀ Pᵏ` is computed once and every
//! requested time point is a Poisson-weighted sum over that one sequence.
//! The dense per-time-point reference implementations are kept (suffixed
//! `_dense`) as the baseline the kernel is benchmarked and property-tested
//! against.

use oaq_linalg::{CsrMatrix, LinalgError, Matrix};

/// Errors from the Markov solvers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SolverError {
    /// The generator matrix is not square or rows do not sum to ~0.
    InvalidGenerator(String),
    /// A caller-supplied argument (time point, horizon, panel count,
    /// initial distribution) is out of domain.
    InvalidInput(String),
    /// The linear solve failed (e.g. reducible chain).
    Numeric(LinalgError),
}

impl std::fmt::Display for SolverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolverError::InvalidGenerator(msg) => write!(f, "invalid generator: {msg}"),
            SolverError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            SolverError::Numeric(e) => write!(f, "numeric failure: {e}"),
        }
    }
}

impl std::error::Error for SolverError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SolverError::Numeric(e) => Some(e),
            SolverError::InvalidGenerator(_) | SolverError::InvalidInput(_) => None,
        }
    }
}

fn validate_generator(q: &Matrix) -> Result<(), SolverError> {
    if !q.is_square() {
        return Err(SolverError::InvalidGenerator(format!(
            "generator must be square, got {}x{}",
            q.rows(),
            q.cols()
        )));
    }
    let scale = q.max_norm().max(1.0);
    for i in 0..q.rows() {
        let row_sum: f64 = (0..q.cols()).map(|j| q[(i, j)]).sum();
        if row_sum.abs() > 1e-8 * scale {
            return Err(SolverError::InvalidGenerator(format!(
                "row {i} sums to {row_sum}, expected 0"
            )));
        }
    }
    Ok(())
}

/// Solves `π Q = 0`, `Σπ = 1` for an irreducible CTMC generator `Q` by a
/// direct dense solve (the normalization replaces the last column of `Qᵀ`).
///
/// # Errors
///
/// * [`SolverError::InvalidGenerator`] if `Q` is malformed.
/// * [`SolverError::Numeric`] if the system is singular (reducible chain).
///
/// # Examples
///
/// ```
/// use oaq_linalg::Matrix;
/// use oaq_san::solver::stationary_distribution;
/// // Two-state chain: rate 1 up->down, rate 4 down->up → π = (0.8, 0.2).
/// let q = Matrix::from_rows(&[&[-1.0, 1.0], &[4.0, -4.0]]).unwrap();
/// let pi = stationary_distribution(&q).unwrap();
/// assert!((pi[0] - 0.8).abs() < 1e-12);
/// ```
pub fn stationary_distribution(q: &Matrix) -> Result<Vec<f64>, SolverError> {
    validate_generator(q)?;
    let n = q.rows();
    // Build A = Qᵀ with the last row replaced by the normalization Σπ = 1.
    let mut a = q.transpose();
    for j in 0..n {
        a[(n - 1, j)] = 1.0;
    }
    let mut b = vec![0.0; n];
    b[n - 1] = 1.0;
    let pi = a.solve(&b).map_err(SolverError::Numeric)?;
    // Clean tiny negative round-off and renormalize.
    let cleaned: Vec<f64> = pi.iter().map(|&x| x.max(0.0)).collect();
    oaq_linalg::vec_ops::normalize_prob(&cleaned)
        .ok_or_else(|| SolverError::InvalidGenerator("zero stationary mass".to_string()))
}

fn validate_p0(n: usize, p0: &[f64]) -> Result<(), SolverError> {
    if p0.len() != n {
        return Err(SolverError::InvalidInput(format!(
            "p0 length {} does not match {n} states",
            p0.len()
        )));
    }
    let mass: f64 = p0.iter().sum();
    if p0.iter().any(|&x| x < -1e-12) || (mass - 1.0).abs() > 1e-9 {
        return Err(SolverError::InvalidInput(
            "p0 is not a probability vector".to_string(),
        ));
    }
    Ok(())
}

fn validate_horizon(horizon: f64, intervals: usize) -> Result<(), SolverError> {
    if horizon <= 0.0 || !horizon.is_finite() {
        return Err(SolverError::InvalidInput(format!("bad horizon {horizon}")));
    }
    if intervals == 0 {
        return Err(SolverError::InvalidInput(
            "Simpson quadrature needs at least one panel".to_string(),
        ));
    }
    Ok(())
}

/// The Poisson truncation horizon: safely past the bulk (mean `lt`,
/// sd `√lt`). Shared by the dense reference and the sparse kernel so the
/// two paths truncate identically.
fn poisson_bulk(lt: f64) -> f64 {
    lt + 10.0 * lt.sqrt() + 50.0
}

/// Transient distribution `p(t) = p0 · e^{Qt}` by uniformization, accurate
/// to `tol` in total variation. Routed through the sparse shared-iterate
/// [`TransientKernel`]; callers evaluating many time points over one
/// generator should build the kernel once and use
/// [`TransientKernel::transient_batch`].
///
/// # Errors
///
/// * [`SolverError::InvalidGenerator`] if `Q` is malformed.
/// * [`SolverError::InvalidInput`] if `p0` is not a distribution or `t` is
///   negative/non-finite.
///
/// # Examples
///
/// ```
/// use oaq_linalg::Matrix;
/// use oaq_san::solver::transient_distribution;
/// let q = Matrix::from_rows(&[&[-1.0, 1.0], &[4.0, -4.0]]).unwrap();
/// let p = transient_distribution(&q, &[1.0, 0.0], 100.0, 1e-12).unwrap();
/// assert!((p[0] - 0.8).abs() < 1e-9); // converged to stationary
/// ```
pub fn transient_distribution(
    q: &Matrix,
    p0: &[f64],
    t: f64,
    tol: f64,
) -> Result<Vec<f64>, SolverError> {
    TransientKernel::new(q)?.transient(p0, t, tol)
}

/// The dense per-time-point uniformization — the pre-kernel reference
/// implementation, kept as the baseline the sparse shared-iterate path is
/// benchmarked (`pk_kernel`) and property-tested against.
///
/// # Errors
///
/// As [`transient_distribution`].
pub fn transient_distribution_dense(
    q: &Matrix,
    p0: &[f64],
    t: f64,
    tol: f64,
) -> Result<Vec<f64>, SolverError> {
    validate_generator(q)?;
    let n = q.rows();
    validate_p0(n, p0)?;
    if t < 0.0 || !t.is_finite() {
        return Err(SolverError::InvalidInput(format!("bad time {t}")));
    }
    if t == 0.0 {
        return Ok(p0.to_vec());
    }
    // Uniformization: P = I + Q/Λ with Λ ≥ max |q_ii|.
    let lambda = uniformization_rate(q);
    if lambda == 0.0 {
        // Every state absorbing: the chain never leaves p0.
        return Ok(p0.to_vec());
    }
    let mut p_mat = Matrix::identity(n);
    for i in 0..n {
        for j in 0..n {
            p_mat[(i, j)] += q[(i, j)] / lambda;
        }
    }
    let lt = lambda * t;
    // Accumulate Σ_k Poisson(lt; k) · p0 Pᵏ with scaled Poisson weights.
    let mut term = p0.to_vec(); // p0 Pᵏ
    let mut out = vec![0.0; n];
    // Poisson weights computed iteratively in log space to avoid overflow.
    // Truncation: stop when the accumulated mass reaches 1 − tol, or —
    // because rounding can leave the numeric sum permanently short of it —
    // when k is safely past the Poisson bulk and the current weight has
    // fallen below tol. The discarded tail is renormalized away below.
    let k_bulk = poisson_bulk(lt);
    let mut log_weight = -lt; // log Poisson(0)
    let mut accumulated = 0.0;
    let mut k: u64 = 0;
    loop {
        let w = log_weight.exp();
        if w > 0.0 {
            for (o, x) in out.iter_mut().zip(&term) {
                *o += w * x;
            }
            accumulated += w;
        }
        if accumulated >= 1.0 - tol || (k as f64 > k_bulk && w < tol) {
            break;
        }
        k += 1;
        if k > 10_000_000 {
            return Err(SolverError::InvalidGenerator(
                "uniformization failed to converge".to_string(),
            ));
        }
        log_weight += (lt / k as f64).ln();
        term = p_mat.vec_mul(&term).map_err(SolverError::Numeric)?;
    }
    // The truncated tail (≤ tol) is discarded; renormalize.
    Ok(oaq_linalg::vec_ops::normalize_prob(&out).unwrap_or(out))
}

/// Integral `∫₀ᵀ p(t) dt / T`: the expected fraction of time spent in each
/// state over `[0, T]`, computed by Simpson quadrature on the transient
/// distribution with `intervals` panels (rounded up to even). All Simpson
/// nodes are evaluated over **one** shared iterate sequence via the sparse
/// [`TransientKernel`].
///
/// This is the quantity the paper's P(k) reduces to under the deterministic
/// scheduled-deployment cycle: the time-average of the capacity process over
/// one cycle of length φ.
///
/// # Errors
///
/// * [`SolverError::InvalidInput`] for `intervals == 0` or a non-finite /
///   non-positive horizon.
/// * Propagates [`SolverError`] from the transient solves.
pub fn time_average_distribution(
    q: &Matrix,
    p0: &[f64],
    horizon: f64,
    intervals: usize,
) -> Result<Vec<f64>, SolverError> {
    TransientKernel::new(q)?.time_average(p0, horizon, intervals)
}

/// The dense reference for [`time_average_distribution`]: one independent
/// dense uniformization per Simpson node. O(panels · K · n²) where the
/// kernel is O(K · nnz); kept for benchmarking and agreement tests.
///
/// # Errors
///
/// As [`time_average_distribution`].
pub fn time_average_distribution_dense(
    q: &Matrix,
    p0: &[f64],
    horizon: f64,
    intervals: usize,
) -> Result<Vec<f64>, SolverError> {
    validate_horizon(horizon, intervals)?;
    let m = intervals.max(2).next_multiple_of(2);
    let n = q.rows();
    let h = horizon / m as f64;
    let mut acc = vec![0.0; n];
    for s in 0..=m {
        let p = transient_distribution_dense(q, p0, h * s as f64, 1e-12)?;
        let w = simpson_weight(s, m);
        for (a, x) in acc.iter_mut().zip(&p) {
            *a += w * x;
        }
    }
    let scale = h / 3.0 / horizon;
    for a in &mut acc {
        *a *= scale;
    }
    Ok(oaq_linalg::vec_ops::normalize_prob(&acc).unwrap_or(acc))
}

fn simpson_weight(s: usize, m: usize) -> f64 {
    if s == 0 || s == m {
        1.0
    } else if s % 2 == 1 {
        4.0
    } else {
        2.0
    }
}

/// The uniformization rate `Λ = 1.000001 · max |q_ii|`.
///
/// A generator whose diagonal is identically zero (every state absorbing,
/// e.g. a degenerate spare policy with no failures enabled) gets `Λ = 0`:
/// the chain never moves, `P = I`, and `p(t) = p0` at every horizon. The
/// old `1e-12` floor instead produced a vanishingly small positive rate
/// whose Poisson series could run millions of identity matvecs (or hit the
/// iteration cap) at large `t` before converging to the same answer.
fn uniformization_rate(q: &Matrix) -> f64 {
    (0..q.rows()).map(|i| -q[(i, i)]).fold(0.0_f64, f64::max) * 1.000_001
}

/// A reusable sparse uniformization kernel over one generator matrix.
///
/// Holds the uniformized transition matrix `P = I + Q/Λ` in CSR form.
/// [`Self::transient_batch`] evaluates *any number of time points* over a
/// single shared iterate sequence `vₖ = p₀ Pᵏ`: one CSR matvec per series
/// term total, with per-time-point Poisson weights (a multiplicative
/// recurrence, ramped in log space while a huge `λt` keeps the early
/// weights below f64 range) as the only per-point work. A 256-panel
/// Simpson integral therefore costs one matvec sweep instead of 256.
///
/// **Determinism / batch invariance:** the iterate sequence depends only on
/// `p₀` and `P`, and each time point accumulates its own weighted sum in
/// fixed order, so the answer for a given `t` is bit-identical regardless
/// of which other time points share the batch, and across repeated calls
/// and threads (`TransientKernel` is `Send + Sync` and immutable after
/// construction).
#[derive(Debug)]
pub struct TransientKernel {
    p_csr: CsrMatrix,
    lambda: f64,
    n: usize,
}

/// Weights below e^LOG_SWITCH are tracked in log space (their mass is far
/// below f64 resolution, so skipping their contribution is exact); above it
/// the weight runs the cheap linear recurrence w ← w · λt/(k+1), keeping
/// the per-point inner loop free of transcendentals.
const LOG_SWITCH: f64 = -700.0;

/// Per-series-term quantities shared by every Poisson weight in a batch:
/// ln(k+1) and 1/(k+1) are computed once per iterate, not once per point.
struct SharedStep {
    kf: f64,
    ln_k1: f64,
    inv_k1: f64,
}

impl SharedStep {
    fn at(k: u64) -> Self {
        let kf1 = (k + 1) as f64;
        SharedStep {
            kf: k as f64,
            ln_k1: kf1.ln(),
            inv_k1: 1.0 / kf1,
        }
    }
}

/// Steady-state detection checkpoint spacing: the shared iterate's
/// displacement is measured over windows of this many matvecs.
const STEADY_WINDOW: u64 = 128;
/// Relative floor on the *projected remaining drift* (see
/// [`SteadyWindow::within_floor`]) below which a time point is served
/// early — an order of magnitude under the kernel's 1e-12 dense-agreement
/// bar.
const STEADY_TAIL_REL_FLOOR: f64 = 1e-13;
/// Consecutive sub-floor windows required before declaring steady state
/// (one coincidentally small window must not end a still-mixing chain).
const STEADY_HITS: u32 = 2;

/// Tracks convergence of the shared iterate sequence `vₖ = p₀ Pᵏ` by
/// windowed displacement.
///
/// At each window boundary ([`Self::window`]) the detector measures two
/// quantities: the displacement `D = ‖vₖ − vₖ₋W‖∞` accumulated over the
/// last `W` steps, and the single-step difference `d = ‖vₖ − vₖ₋₁‖∞`.
/// `D/W` bounds the recent per-step rate of *coherent* drift, and because
/// uniformization iterates contract toward the stationary vector (drift
/// magnitude is non-increasing at this scale), `D·R/W` bounds the coherent
/// displacement any future iterate can still accumulate over `R` further
/// matvecs. `d` separately bounds the amplitude of *oscillating*
/// near-period-2 modes (the uniformization rate's `1.000001` margin maps
/// the most negative generator eigenvalue close to −1, where a whole
/// window's displacement aliases to nearly zero while consecutive iterates
/// still swing), so `D·R/W + d` bounds `‖vⱼ − vₖ‖∞` for every future `j` —
/// which in turn bounds the error of serving a time point's remaining
/// Poisson mass (at most `R` terms) from the current iterate. A point is
/// closed early once its projected drift sits [`STEADY_HITS`] consecutive
/// windows below `1e-13·‖vₖ‖∞`. A plain `‖vₖ₊₁ − vₖ‖∞` floor is *not*
/// sound here: a slow-mixing chain can creep by sub-1e-15 steps for tens
/// of thousands of matvecs and accumulate an over-1e-12 coherent drift.
///
/// The measurement sequence depends only on `p₀` and `P`, and each point's
/// `R` only on its own time, so early closure is a function of
/// `(p₀, P, t)` alone — never of which points share the batch — and the
/// kernel's batch-invariance guarantee survives: a point closed early in
/// one batch closes at the same step with the same served tail in every
/// batch.
struct SteadyDetector {
    enabled: bool,
    steps: u64,
    checkpoint: Vec<f64>,
    prev: Vec<f64>,
}

/// One window-boundary observation: the windowed displacement `D`, the
/// single-step difference `d`, and the iterate sup-norm, from which
/// per-point projected drifts are formed.
struct SteadyWindow {
    disp: f64,
    step_diff: f64,
    norm: f64,
}

impl SteadyWindow {
    /// Whether a point with `remaining` matvecs of Poisson mass left can
    /// be served from the current iterate within the drift floor.
    fn within_floor(&self, remaining: f64) -> bool {
        let projected = self.disp * remaining.max(0.0) / STEADY_WINDOW as f64 + self.step_diff;
        projected <= STEADY_TAIL_REL_FLOOR * self.norm
    }
}

impl SteadyDetector {
    fn new(enabled: bool, p0: &[f64]) -> Self {
        SteadyDetector {
            enabled,
            steps: 0,
            checkpoint: p0.to_vec(),
            prev: p0.to_vec(),
        }
    }

    /// Observes the iterate after an advance; returns the displacement
    /// measurement at window boundaries, `None` in between (or when
    /// detection is disabled).
    fn window(&mut self, term: &[f64]) -> Option<SteadyWindow> {
        if !self.enabled {
            return None;
        }
        self.steps += 1;
        let phase = self.steps % STEADY_WINDOW;
        if phase == STEADY_WINDOW - 1 {
            // Remember the iterate one step before the boundary, so the
            // boundary can sample the single-step difference.
            self.prev.copy_from_slice(term);
            return None;
        }
        if phase != 0 {
            return None;
        }
        let mut disp = 0.0_f64;
        let mut step_diff = 0.0_f64;
        let mut norm = 0.0_f64;
        for ((c, p), &t) in self.checkpoint.iter().zip(&self.prev).zip(term) {
            disp = disp.max((c - t).abs());
            step_diff = step_diff.max((p - t).abs());
            norm = norm.max(t.abs());
        }
        self.checkpoint.copy_from_slice(term);
        Some(SteadyWindow {
            disp,
            step_diff,
            norm,
        })
    }
}

/// An iteratively-advanced Poisson(λt; k) weight with underflow-safe
/// truncation: `step` returns the weight of term k (0.0 while still
/// sub-representable), accumulates its mass, and advances to k + 1,
/// setting `done` once the accumulated mass reaches 1 − tol or k is safely
/// past the Poisson bulk with a sub-tol weight.
struct PoissonWeight {
    lt: f64,
    ln_lt: f64,
    k_bulk: f64,
    log_weight: f64,
    weight: f64,
    linear: bool,
    accumulated: f64,
    done: bool,
}

impl PoissonWeight {
    fn new(lt: f64) -> Self {
        let linear = -lt > LOG_SWITCH;
        PoissonWeight {
            lt,
            ln_lt: if lt > 0.0 { lt.ln() } else { 0.0 },
            k_bulk: poisson_bulk(lt),
            log_weight: -lt,
            weight: if linear { (-lt).exp() } else { 0.0 },
            linear,
            accumulated: 0.0,
            done: false,
        }
    }

    fn step(&mut self, shared: &SharedStep, tol: f64) -> f64 {
        let w = self.weight;
        self.accumulated += w;
        if self.accumulated >= 1.0 - tol || (shared.kf > self.k_bulk && w < tol) {
            self.done = true;
        } else if self.linear {
            self.weight *= self.lt * shared.inv_k1;
        } else {
            self.log_weight += self.ln_lt - shared.ln_k1;
            if self.log_weight > LOG_SWITCH {
                self.linear = true;
                self.weight = self.log_weight.exp();
            }
        }
        w
    }
}

impl TransientKernel {
    /// Builds the kernel: validates `q` and stores `P = I + Q/Λ` sparse.
    ///
    /// # Errors
    ///
    /// [`SolverError::InvalidGenerator`] if `q` is malformed.
    pub fn new(q: &Matrix) -> Result<Self, SolverError> {
        validate_generator(q)?;
        let n = q.rows();
        let lambda = uniformization_rate(q);
        let mut triplets = Vec::new();
        if lambda == 0.0 {
            // All-absorbing chain (zero diagonal everywhere forces a zero
            // generator): P = I, and every Poisson series has λt = 0, so
            // each time point closes on the k = 0 term with p(t) = p0.
            // Dividing by Λ here would be 0/0.
            for i in 0..n {
                triplets.push((i, i, 1.0));
            }
        } else {
            for i in 0..n {
                for j in 0..n {
                    // Same arithmetic as the dense path: identity plus Q/Λ.
                    let base = if i == j { 1.0 } else { 0.0 };
                    let v = base + q[(i, j)] / lambda;
                    if v != 0.0 {
                        triplets.push((i, j, v));
                    }
                }
            }
        }
        let p_csr = CsrMatrix::from_triplets(n, n, &triplets).map_err(SolverError::Numeric)?;
        Ok(TransientKernel { p_csr, lambda, n })
    }

    /// Number of states.
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.n
    }

    /// The uniformization rate Λ.
    #[must_use]
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Stored entries of the uniformized transition matrix.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.p_csr.nnz()
    }

    /// Transient distribution at a single time point.
    ///
    /// # Errors
    ///
    /// As [`Self::transient_batch`].
    pub fn transient(&self, p0: &[f64], t: f64, tol: f64) -> Result<Vec<f64>, SolverError> {
        Ok(self
            .transient_batch(p0, &[t], tol)?
            .pop()
            .expect("one time"))
    }

    /// Transient distributions at every time in `times`, sharing one
    /// iterate sequence `vₖ = p₀ Pᵏ` across all of them.
    ///
    /// Each returned distribution is accurate to `tol` in total variation
    /// and independent of the rest of the batch (see the type-level
    /// determinism note). Adaptive steady-state detection is on: once the
    /// iterate sequence stops moving at rounding level (see
    /// [`Self::transient_batch_full`]), every still-open time point is
    /// served its remaining Poisson mass from the converged iterate, so the
    /// matvec count is capped by the chain's mixing time instead of `λ·tₘₐₓ`.
    ///
    /// # Errors
    ///
    /// [`SolverError::InvalidInput`] if `p0` is not a distribution, a time
    /// is negative or non-finite, or `tol` is out of `(0, 1)`.
    pub fn transient_batch(
        &self,
        p0: &[f64],
        times: &[f64],
        tol: f64,
    ) -> Result<Vec<Vec<f64>>, SolverError> {
        self.transient_batch_impl(p0, times, tol, true)
    }

    /// [`Self::transient_batch`] with steady-state detection disabled: the
    /// Poisson series of every time point runs to its own truncation. Kept
    /// as the pre-detection reference the detecting path is benchmarked
    /// (`mega_pk`) and property-tested against (agreement ≤ 1e-12).
    ///
    /// # Errors
    ///
    /// As [`Self::transient_batch`].
    pub fn transient_batch_full(
        &self,
        p0: &[f64],
        times: &[f64],
        tol: f64,
    ) -> Result<Vec<Vec<f64>>, SolverError> {
        self.transient_batch_impl(p0, times, tol, false)
    }

    fn transient_batch_impl(
        &self,
        p0: &[f64],
        times: &[f64],
        tol: f64,
        detect: bool,
    ) -> Result<Vec<Vec<f64>>, SolverError> {
        validate_p0(self.n, p0)?;
        if !(tol > 0.0 && tol < 1.0) {
            return Err(SolverError::InvalidInput(format!("bad tolerance {tol}")));
        }
        for &t in times {
            if t < 0.0 || !t.is_finite() {
                return Err(SolverError::InvalidInput(format!("bad time {t}")));
            }
        }
        // Per-time-point accumulator: the advancing Poisson weight, the
        // weighted iterate sum, and the steady-state hit counter.
        struct Point {
            pw: PoissonWeight,
            out: Vec<f64>,
            hits: u32,
        }
        let mut points: Vec<Point> = times
            .iter()
            .map(|&t| Point {
                pw: PoissonWeight::new(self.lambda * t),
                out: vec![0.0; self.n],
                hits: 0,
            })
            .collect();
        let mut term = p0.to_vec(); // vₖ = p₀ Pᵏ, shared by every time point
        let mut detector = SteadyDetector::new(detect, p0);
        let mut k: u64 = 0;
        while points.iter().any(|p| !p.pw.done) {
            let shared = SharedStep::at(k);
            for p in points.iter_mut().filter(|p| !p.pw.done) {
                let w = p.pw.step(&shared, tol);
                if w > 0.0 {
                    for (o, x) in p.out.iter_mut().zip(&term) {
                        *o += w * x;
                    }
                }
            }
            if points.iter().all(|p| p.pw.done) {
                break;
            }
            k += 1;
            if k > 10_000_000 {
                return Err(SolverError::InvalidGenerator(
                    "uniformization failed to converge".to_string(),
                ));
            }
            term = self.p_csr.vec_mul(&term).map_err(SolverError::Numeric)?;
            if let Some(win) = detector.window(&term) {
                // vⱼ ≈ v* for all j ≥ k within the projected drift: a point
                // whose remaining series fits inside the floor is served
                // its entire remaining Poisson mass from the current
                // iterate and closed early.
                for p in points.iter_mut().filter(|p| !p.pw.done) {
                    if win.within_floor(p.pw.k_bulk - k as f64) {
                        p.hits += 1;
                    } else {
                        p.hits = 0;
                    }
                    if p.hits >= STEADY_HITS {
                        let tail = (1.0 - p.pw.accumulated).max(0.0);
                        if tail > 0.0 {
                            for (o, x) in p.out.iter_mut().zip(&term) {
                                *o += tail * x;
                            }
                        }
                        p.pw.done = true;
                    }
                }
            }
        }
        Ok(points
            .into_iter()
            .zip(times)
            .map(|(p, &t)| {
                if t == 0.0 {
                    p0.to_vec()
                } else {
                    // The truncated tail (≤ tol) is discarded; renormalize.
                    oaq_linalg::vec_ops::normalize_prob(&p.out).unwrap_or(p.out)
                }
            })
            .collect())
    }

    /// Simpson time-average `∫₀ᵀ p(t) dt / T` with `intervals` panels
    /// (rounded up to even), all nodes over one shared iterate sequence.
    ///
    /// # Errors
    ///
    /// [`SolverError::InvalidInput`] for `intervals == 0` or a non-finite /
    /// non-positive horizon; otherwise as [`Self::transient_batch`].
    pub fn time_average(
        &self,
        p0: &[f64],
        horizon: f64,
        intervals: usize,
    ) -> Result<Vec<f64>, SolverError> {
        Ok(self
            .time_average_many(p0, &[horizon], intervals)?
            .pop()
            .expect("one horizon"))
    }

    /// Simpson time-averages over *several* horizons at once: every Simpson
    /// node of every horizon is evaluated over one shared iterate sequence,
    /// so a φ-sweep costs a single matvec sweep sized by the largest
    /// horizon. Batch invariance (see the type-level note) guarantees each
    /// row equals the corresponding single-horizon [`Self::time_average`]
    /// bit for bit.
    ///
    /// # Errors
    ///
    /// As [`Self::time_average`], applied to every horizon.
    pub fn time_average_many(
        &self,
        p0: &[f64],
        horizons: &[f64],
        intervals: usize,
    ) -> Result<Vec<Vec<f64>>, SolverError> {
        self.time_average_many_impl(p0, horizons, intervals, true)
    }

    /// [`Self::time_average_many`] with steady-state detection disabled —
    /// the PR 3 kernel behaviour, where every Simpson node's Poisson series
    /// runs to its own truncation (O(λ·φₘₐₓ) matvecs on long horizons).
    /// Kept as the baseline the detecting path is benchmarked and
    /// property-tested against.
    ///
    /// # Errors
    ///
    /// As [`Self::time_average_many`].
    pub fn time_average_many_full(
        &self,
        p0: &[f64],
        horizons: &[f64],
        intervals: usize,
    ) -> Result<Vec<Vec<f64>>, SolverError> {
        self.time_average_many_impl(p0, horizons, intervals, false)
    }

    fn time_average_many_impl(
        &self,
        p0: &[f64],
        horizons: &[f64],
        intervals: usize,
        detect: bool,
    ) -> Result<Vec<Vec<f64>>, SolverError> {
        validate_p0(self.n, p0)?;
        for &h in horizons {
            validate_horizon(h, intervals)?;
        }
        let tol = 1e-12;
        let m = intervals.max(2).next_multiple_of(2);
        // The quadrature is linear in the transients, which are themselves
        // Poisson-weighted sums over one iterate sequence, so the Simpson
        // coefficients fold into the weights:
        //   Σ_s c_s p(t_s) = Σ_k (Σ_s c_s · Poisson(λt_s; k)) · vₖ.
        // Each iterate then costs one combined axpy per *horizon* instead
        // of one per Simpson node; the per-node work is a scalar weight
        // recurrence. Each node is still truncated exactly as in
        // `transient_batch`, and a horizon's combined weight involves only
        // its own nodes (in fixed node order), so every row stays
        // independent of the rest of the batch.
        struct Node {
            pw: PoissonWeight,
            coeff: f64,
            hits: u32,
        }
        let mut nodes: Vec<Vec<Node>> = horizons
            .iter()
            .map(|&horizon| {
                let h = horizon / m as f64;
                (0..=m)
                    .map(|s| Node {
                        pw: PoissonWeight::new(self.lambda * h * s as f64),
                        coeff: simpson_weight(s, m) * h / 3.0 / horizon,
                        hits: 0,
                    })
                    .collect()
            })
            .collect();
        let mut accs: Vec<Vec<f64>> = vec![vec![0.0; self.n]; horizons.len()];
        let mut term = p0.to_vec(); // vₖ = p₀ Pᵏ, shared by every node
        let mut detector = SteadyDetector::new(detect, p0);
        let mut k: u64 = 0;
        loop {
            let shared = SharedStep::at(k);
            let mut any_open = false;
            for (row, acc) in nodes.iter_mut().zip(&mut accs) {
                let mut combined = 0.0;
                for node in row.iter_mut().filter(|nd| !nd.pw.done) {
                    combined += node.coeff * node.pw.step(&shared, tol);
                    any_open |= !node.pw.done;
                }
                if combined > 0.0 {
                    for (a, x) in acc.iter_mut().zip(&term) {
                        *a += combined * x;
                    }
                }
            }
            if !any_open {
                break;
            }
            k += 1;
            if k > 10_000_000 {
                return Err(SolverError::InvalidGenerator(
                    "uniformization failed to converge".to_string(),
                ));
            }
            term = self.p_csr.vec_mul(&term).map_err(SolverError::Numeric)?;
            if let Some(win) = detector.window(&term) {
                // Serve each steady node's remaining Poisson mass from the
                // current iterate, in the same fixed node order.
                for (row, acc) in nodes.iter_mut().zip(&mut accs) {
                    let mut combined = 0.0;
                    for node in row.iter_mut().filter(|nd| !nd.pw.done) {
                        if win.within_floor(node.pw.k_bulk - k as f64) {
                            node.hits += 1;
                        } else {
                            node.hits = 0;
                        }
                        if node.hits >= STEADY_HITS {
                            combined += node.coeff * (1.0 - node.pw.accumulated).max(0.0);
                            node.pw.done = true;
                        }
                    }
                    if combined > 0.0 {
                        for (a, x) in acc.iter_mut().zip(&term) {
                            *a += combined * x;
                        }
                    }
                }
            }
        }
        // The per-node truncated tails (≤ tol each, Σ coeff = 1) are
        // discarded; renormalize each average.
        Ok(accs
            .into_iter()
            .map(|acc| oaq_linalg::vec_ops::normalize_prob(&acc).unwrap_or(acc))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_state() -> Matrix {
        Matrix::from_rows(&[&[-1.0, 1.0], &[4.0, -4.0]]).unwrap()
    }

    #[test]
    fn stationary_two_state() {
        let pi = stationary_distribution(&two_state()).unwrap();
        assert!((pi[0] - 0.8).abs() < 1e-12);
        assert!((pi[1] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn stationary_birth_death_matches_closed_form() {
        // Birth 1, death 2 on {0,1,2,3}: π ∝ 0.5^k.
        let q = Matrix::from_rows(&[
            &[-1.0, 1.0, 0.0, 0.0],
            &[2.0, -3.0, 1.0, 0.0],
            &[0.0, 2.0, -3.0, 1.0],
            &[0.0, 0.0, 2.0, -2.0],
        ])
        .unwrap();
        let pi = stationary_distribution(&q).unwrap();
        let expected = [8.0 / 15.0, 4.0 / 15.0, 2.0 / 15.0, 1.0 / 15.0];
        for (p, e) in pi.iter().zip(&expected) {
            assert!((p - e).abs() < 1e-12);
        }
    }

    #[test]
    fn invalid_generator_rejected() {
        let q = Matrix::from_rows(&[&[-1.0, 2.0], &[4.0, -4.0]]).unwrap();
        assert!(matches!(
            stationary_distribution(&q),
            Err(SolverError::InvalidGenerator(_))
        ));
        let rect = Matrix::zeros(2, 3);
        assert!(stationary_distribution(&rect).is_err());
    }

    #[test]
    fn transient_at_zero_is_initial() {
        let p = transient_distribution(&two_state(), &[0.3, 0.7], 0.0, 1e-12).unwrap();
        assert_eq!(p, vec![0.3, 0.7]);
    }

    #[test]
    fn transient_matches_closed_form() {
        // Two-state: p0(t) = π0 + (1-π0) e^{-(a+b)t} starting in state 0.
        let q = two_state();
        for &t in &[0.1, 0.5, 1.0, 2.0] {
            let p = transient_distribution(&q, &[1.0, 0.0], t, 1e-13).unwrap();
            let expected = 0.8 + 0.2 * (-5.0_f64 * t).exp();
            assert!(
                (p[0] - expected).abs() < 1e-9,
                "t={t}: {} vs {expected}",
                p[0]
            );
        }
    }

    #[test]
    fn transient_converges_to_stationary() {
        let p = transient_distribution(&two_state(), &[0.0, 1.0], 50.0, 1e-12).unwrap();
        assert!((p[0] - 0.8).abs() < 1e-9);
    }

    #[test]
    fn transient_rejects_bad_p0() {
        let q = two_state();
        assert!(transient_distribution(&q, &[1.0], 1.0, 1e-9).is_err());
        assert!(transient_distribution(&q, &[0.7, 0.7], 1.0, 1e-9).is_err());
        assert!(transient_distribution(&q, &[1.0, 0.0], f64::NAN, 1e-9).is_err());
    }

    #[test]
    fn time_average_matches_analytic() {
        // ∫₀ᵀ p0(t) dt / T with p0(t) = 0.8 + 0.2 e^{-5t}.
        let q = two_state();
        let horizon = 2.0;
        let avg = time_average_distribution(&q, &[1.0, 0.0], horizon, 64).unwrap();
        let expected = 0.8 + 0.2 * (1.0 - (-5.0_f64 * horizon).exp()) / (5.0 * horizon);
        assert!((avg[0] - expected).abs() < 1e-6, "{} vs {expected}", avg[0]);
    }

    #[test]
    fn time_average_rejects_bad_horizon() {
        assert!(time_average_distribution(&two_state(), &[1.0, 0.0], 0.0, 8).is_err());
    }

    #[test]
    fn time_average_rejects_zero_panels_and_nonfinite_horizon_typed() {
        for bad in [
            time_average_distribution(&two_state(), &[1.0, 0.0], 2.0, 0),
            time_average_distribution(&two_state(), &[1.0, 0.0], f64::NAN, 8),
            time_average_distribution(&two_state(), &[1.0, 0.0], f64::INFINITY, 8),
            time_average_distribution_dense(&two_state(), &[1.0, 0.0], 2.0, 0),
        ] {
            assert!(matches!(bad, Err(SolverError::InvalidInput(_))), "{bad:?}");
        }
    }

    #[test]
    fn kernel_matches_dense_per_time_point() {
        let q = Matrix::from_rows(&[
            &[-1.0, 1.0, 0.0, 0.0],
            &[2.0, -3.0, 1.0, 0.0],
            &[0.0, 2.0, -3.0, 1.0],
            &[0.0, 0.0, 2.0, -2.0],
        ])
        .unwrap();
        let kernel = TransientKernel::new(&q).unwrap();
        let p0 = [1.0, 0.0, 0.0, 0.0];
        let times = [0.0, 0.05, 0.5, 3.0, 40.0];
        let batch = kernel.transient_batch(&p0, &times, 1e-12).unwrap();
        for (&t, sparse) in times.iter().zip(&batch) {
            let dense = transient_distribution_dense(&q, &p0, t, 1e-12).unwrap();
            for (s, d) in sparse.iter().zip(&dense) {
                assert!((s - d).abs() <= 1e-12, "t={t}: {s} vs {d}");
            }
        }
    }

    #[test]
    fn batch_membership_does_not_change_answers() {
        // Batch invariance: the answer for t must not depend on which other
        // time points share the iterate sequence.
        let q = two_state();
        let kernel = TransientKernel::new(&q).unwrap();
        let p0 = [1.0, 0.0];
        let alone = kernel.transient(&p0, 0.7, 1e-12).unwrap();
        let crowded = kernel
            .transient_batch(&p0, &[0.0, 10.0, 0.7, 250.0], 1e-12)
            .unwrap();
        assert_eq!(crowded[2], alone, "must be bit-identical, not just close");
    }

    #[test]
    fn time_average_many_rows_match_single_horizon_calls() {
        let q = two_state();
        let kernel = TransientKernel::new(&q).unwrap();
        let p0 = [1.0, 0.0];
        let horizons = [0.5, 2.0, 8.0];
        let many = kernel.time_average_many(&p0, &horizons, 64).unwrap();
        for (&h, row) in horizons.iter().zip(&many) {
            assert_eq!(row, &kernel.time_average(&p0, h, 64).unwrap());
        }
    }

    #[test]
    fn kernel_time_average_matches_dense_reference() {
        let q = two_state();
        let kernel = TransientKernel::new(&q).unwrap();
        let sparse = kernel.time_average(&[1.0, 0.0], 2.0, 64).unwrap();
        let dense = time_average_distribution_dense(&q, &[1.0, 0.0], 2.0, 64).unwrap();
        for (s, d) in sparse.iter().zip(&dense) {
            assert!((s - d).abs() <= 1e-12, "{s} vs {d}");
        }
    }

    #[test]
    fn kernel_is_sparse_for_banded_generators() {
        let q = Matrix::from_rows(&[
            &[-1.0, 1.0, 0.0, 0.0],
            &[2.0, -3.0, 1.0, 0.0],
            &[0.0, 2.0, -3.0, 1.0],
            &[0.0, 0.0, 2.0, -2.0],
        ])
        .unwrap();
        let kernel = TransientKernel::new(&q).unwrap();
        assert_eq!(kernel.num_states(), 4);
        assert_eq!(kernel.nnz(), 10, "tridiagonal: 3n - 2 stored entries");
    }

    #[test]
    fn all_absorbing_chain_returns_p0_at_every_horizon() {
        // Regression: a zero generator (every state absorbing) used to be
        // uniformized at the 1e-12 floor rate, spinning identity matvecs —
        // up to the 10M iteration cap at astronomical horizons — before
        // returning p0. With Λ = 0 the answer is immediate and exact.
        let q = Matrix::zeros(3, 3);
        let p0 = [0.25, 0.25, 0.5];
        let kernel = TransientKernel::new(&q).unwrap();
        assert_eq!(kernel.lambda(), 0.0);
        for t in [0.0, 1.0, 30_000.0, 1e12, 1e20] {
            assert_eq!(
                transient_distribution(&q, &p0, t, 1e-12).unwrap(),
                p0.to_vec(),
                "t = {t}"
            );
            assert_eq!(
                transient_distribution_dense(&q, &p0, t, 1e-12).unwrap(),
                p0.to_vec(),
                "dense t = {t}"
            );
        }
        for horizon in [1.0, 30_000.0, 1e18] {
            assert_eq!(
                kernel.time_average(&p0, horizon, 64).unwrap(),
                p0.to_vec(),
                "horizon = {horizon}"
            );
        }
    }

    #[test]
    fn partially_absorbing_generator_still_solves() {
        // One absorbing row must not trip the zero-diagonal special case.
        let q = Matrix::from_rows(&[&[-1.0, 1.0], &[0.0, 0.0]]).unwrap();
        let p = transient_distribution(&q, &[1.0, 0.0], 200.0, 1e-12).unwrap();
        assert!(p[1] > 1.0 - 1e-9, "mass absorbs into state 1: {p:?}");
    }

    #[test]
    fn steady_state_detection_agrees_with_full_iteration() {
        let q = Matrix::from_rows(&[
            &[-1.0, 1.0, 0.0, 0.0],
            &[2.0, -3.0, 1.0, 0.0],
            &[0.0, 2.0, -3.0, 1.0],
            &[0.0, 0.0, 2.0, -2.0],
        ])
        .unwrap();
        let kernel = TransientKernel::new(&q).unwrap();
        let p0 = [1.0, 0.0, 0.0, 0.0];
        let times = [0.5, 10.0, 500.0, 20_000.0];
        let detected = kernel.transient_batch(&p0, &times, 1e-12).unwrap();
        let full = kernel.transient_batch_full(&p0, &times, 1e-12).unwrap();
        for ((&t, d), f) in times.iter().zip(&detected).zip(&full) {
            for (a, b) in d.iter().zip(f) {
                assert!((a - b).abs() <= 1e-12, "t={t}: detected {a} vs full {b}");
            }
        }
        let horizons = [5.0, 900.0, 50_000.0];
        let avg_detected = kernel.time_average_many(&p0, &horizons, 64).unwrap();
        let avg_full = kernel.time_average_many_full(&p0, &horizons, 64).unwrap();
        for ((&h, d), f) in horizons.iter().zip(&avg_detected).zip(&avg_full) {
            for (a, b) in d.iter().zip(f) {
                assert!((a - b).abs() <= 1e-12, "phi={h}: detected {a} vs full {b}");
            }
        }
    }

    #[test]
    fn detection_preserves_batch_invariance() {
        // The detected-tail answer for one horizon must not depend on which
        // longer horizons share the iterate sequence.
        let q = two_state();
        let kernel = TransientKernel::new(&q).unwrap();
        let p0 = [1.0, 0.0];
        let alone = kernel.transient(&p0, 5_000.0, 1e-12).unwrap();
        let crowded = kernel
            .transient_batch(&p0, &[0.2, 5_000.0, 1e9], 1e-12)
            .unwrap();
        assert_eq!(crowded[1], alone, "must be bit-identical, not just close");
    }

    #[test]
    fn kernel_rejects_bad_times_and_tolerance() {
        let kernel = TransientKernel::new(&two_state()).unwrap();
        for bad in [
            kernel.transient_batch(&[1.0, 0.0], &[1.0, -0.5], 1e-12),
            kernel.transient_batch(&[1.0, 0.0], &[f64::NAN], 1e-12),
            kernel.transient_batch(&[1.0, 0.0], &[1.0], 0.0),
        ] {
            assert!(matches!(bad, Err(SolverError::InvalidInput(_))), "{bad:?}");
        }
    }
}
