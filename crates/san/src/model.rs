//! The SAN formalism: places, markings, activities.

use std::fmt;

use crate::gate::{Effect, Predicate};

/// Index of a place in a [`SanModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlaceId(pub(crate) usize);

/// Index of an activity in a [`SanModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ActivityId(pub(crate) usize);

/// A marking: the token count of every place.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Marking(Vec<u32>);

impl Marking {
    /// Token count of `place`.
    ///
    /// # Panics
    ///
    /// Panics if `place` belongs to a different model.
    #[must_use]
    pub fn tokens(&self, place: PlaceId) -> u32 {
        self.0[place.0]
    }

    /// Sets the token count of `place`.
    ///
    /// # Panics
    ///
    /// Panics if `place` belongs to a different model.
    pub fn set_tokens(&mut self, place: PlaceId, tokens: u32) {
        self.0[place.0] = tokens;
    }

    /// Adds tokens to `place`.
    pub fn add_tokens(&mut self, place: PlaceId, tokens: u32) {
        self.0[place.0] += tokens;
    }

    /// Removes tokens from `place`, saturating at zero.
    pub fn remove_tokens(&mut self, place: PlaceId, tokens: u32) {
        self.0[place.0] = self.0[place.0].saturating_sub(tokens);
    }

    /// The raw token vector (for hashing/state-space exploration).
    #[must_use]
    pub fn as_slice(&self) -> &[u32] {
        &self.0
    }
}

/// The firing-time distribution of a timed activity.
pub enum Delay {
    /// Exponential with a marking-dependent rate. A rate of zero (or less)
    /// in some marking disables the activity there.
    Exponential(Box<dyn Fn(&Marking) -> f64 + Send + Sync>),
    /// A fixed delay (UltraSAN's deterministic activity). Supported by the
    /// simulator; the CTMC path rejects it (see [`crate::phase_type`] for
    /// the Erlang workaround).
    Deterministic(f64),
    /// Erlang(shape, rate) — the phase-type bridge between the two.
    Erlang {
        /// Number of exponential stages.
        shape: u32,
        /// Per-stage rate.
        rate: f64,
    },
}

impl Delay {
    /// An exponential delay with constant rate.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not strictly positive and finite.
    #[must_use]
    pub fn exponential_rate(rate: f64) -> Delay {
        assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
        Delay::Exponential(Box::new(move |_| rate))
    }

    /// An exponential delay whose rate depends on the marking.
    #[must_use]
    pub fn exponential_with(rate: impl Fn(&Marking) -> f64 + Send + Sync + 'static) -> Delay {
        Delay::Exponential(Box::new(rate))
    }

    /// A deterministic delay.
    ///
    /// # Panics
    ///
    /// Panics if `time` is not strictly positive and finite.
    #[must_use]
    pub fn deterministic(time: f64) -> Delay {
        assert!(time.is_finite() && time > 0.0, "time must be positive");
        Delay::Deterministic(time)
    }

    /// An Erlang delay with the given shape and mean (`rate = shape/mean`).
    ///
    /// # Panics
    ///
    /// Panics if `shape == 0` or `mean` is not strictly positive.
    #[must_use]
    pub fn erlang_with_mean(shape: u32, mean: f64) -> Delay {
        assert!(shape > 0, "Erlang shape must be >= 1");
        assert!(mean.is_finite() && mean > 0.0, "mean must be positive");
        Delay::Erlang {
            shape,
            rate: shape as f64 / mean,
        }
    }
}

impl fmt::Debug for Delay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Delay::Exponential(_) => write!(f, "Exponential(<rate fn>)"),
            Delay::Deterministic(t) => write!(f, "Deterministic({t})"),
            Delay::Erlang { shape, rate } => write!(f, "Erlang({shape}, {rate})"),
        }
    }
}

pub(crate) struct Activity {
    pub(crate) name: String,
    pub(crate) delay: Delay,
    pub(crate) enabled: Predicate,
    pub(crate) effect: Effect,
}

impl fmt::Debug for Activity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Activity")
            .field("name", &self.name)
            .field("delay", &self.delay)
            .finish()
    }
}

/// A complete stochastic activity network.
#[derive(Debug)]
pub struct SanModel {
    place_names: Vec<String>,
    initial: Marking,
    pub(crate) activities: Vec<Activity>,
}

impl SanModel {
    /// The initial marking.
    #[must_use]
    pub fn initial_marking(&self) -> Marking {
        self.initial.clone()
    }

    /// Number of places.
    #[must_use]
    pub fn num_places(&self) -> usize {
        self.place_names.len()
    }

    /// Number of activities.
    #[must_use]
    pub fn num_activities(&self) -> usize {
        self.activities.len()
    }

    /// Name of a place.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn place_name(&self, place: PlaceId) -> &str {
        &self.place_names[place.0]
    }

    /// Name of an activity.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn activity_name(&self, activity: ActivityId) -> &str {
        &self.activities[activity.0].name
    }

    /// Whether `activity` is enabled in `marking` (predicate holds and, for
    /// exponential delays, the rate is positive).
    #[must_use]
    pub fn is_enabled(&self, activity: ActivityId, marking: &Marking) -> bool {
        let a = &self.activities[activity.0];
        if !(a.enabled)(marking) {
            return false;
        }
        match &a.delay {
            Delay::Exponential(rate) => rate(marking) > 0.0,
            _ => true,
        }
    }

    /// Ids of all activities enabled in `marking`.
    #[must_use]
    pub fn enabled_activities(&self, marking: &Marking) -> Vec<ActivityId> {
        (0..self.activities.len())
            .map(ActivityId)
            .filter(|&a| self.is_enabled(a, marking))
            .collect()
    }

    /// Applies `activity`'s completion effect to `marking`.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn fire(&self, activity: ActivityId, marking: &mut Marking) {
        (self.activities[activity.0].effect)(marking);
    }
}

/// Incremental construction of a [`SanModel`].
///
/// See the [crate-level example](crate) for usage.
#[derive(Default)]
pub struct SanBuilder {
    place_names: Vec<String>,
    initial: Vec<u32>,
    activities: Vec<Activity>,
}

impl fmt::Debug for SanBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SanBuilder")
            .field("places", &self.place_names.len())
            .field("activities", &self.activities.len())
            .finish()
    }
}

impl SanBuilder {
    /// An empty builder.
    #[must_use]
    pub fn new() -> Self {
        SanBuilder::default()
    }

    /// Adds a place with an initial token count.
    pub fn add_place(&mut self, name: impl Into<String>, initial: u32) -> PlaceId {
        self.place_names.push(name.into());
        self.initial.push(initial);
        PlaceId(self.place_names.len() - 1)
    }

    /// Adds a timed activity with its enabling predicate and completion
    /// effect (input/output gates in SAN terminology).
    pub fn add_activity(
        &mut self,
        name: impl Into<String>,
        delay: Delay,
        enabled: impl Fn(&Marking) -> bool + Send + Sync + 'static,
        effect: impl Fn(&mut Marking) + Send + Sync + 'static,
    ) -> ActivityId {
        self.activities.push(Activity {
            name: name.into(),
            delay,
            enabled: Box::new(enabled),
            effect: Box::new(effect),
        });
        ActivityId(self.activities.len() - 1)
    }

    /// Finalizes the model.
    ///
    /// # Panics
    ///
    /// Panics if the model has no places or no activities.
    #[must_use]
    pub fn build(self) -> SanModel {
        assert!(!self.place_names.is_empty(), "model needs places");
        assert!(!self.activities.is_empty(), "model needs activities");
        SanModel {
            place_names: self.place_names,
            initial: Marking(self.initial),
            activities: self.activities,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> (SanModel, PlaceId) {
        let mut b = SanBuilder::new();
        let p = b.add_place("tokens", 2);
        b.add_activity(
            "drain",
            Delay::exponential_with(move |m| f64::from(m.tokens(p))),
            move |m| m.tokens(p) > 0,
            move |m| m.remove_tokens(p, 1),
        );
        (b.build(), p)
    }

    #[test]
    fn marking_accessors() {
        let (model, p) = toy();
        let mut m = model.initial_marking();
        assert_eq!(m.tokens(p), 2);
        m.add_tokens(p, 3);
        assert_eq!(m.tokens(p), 5);
        m.remove_tokens(p, 10);
        assert_eq!(m.tokens(p), 0, "removal saturates");
        m.set_tokens(p, 7);
        assert_eq!(m.as_slice(), &[7]);
    }

    #[test]
    fn enabled_follows_predicate_and_rate() {
        let (model, p) = toy();
        let mut m = model.initial_marking();
        assert_eq!(model.enabled_activities(&m).len(), 1);
        m.set_tokens(p, 0);
        assert!(model.enabled_activities(&m).is_empty());
    }

    #[test]
    fn zero_rate_disables_exponential() {
        let mut b = SanBuilder::new();
        let p = b.add_place("p", 0);
        let a = b.add_activity(
            "a",
            Delay::exponential_with(move |m| f64::from(m.tokens(p))),
            |_| true,
            |_| {},
        );
        let model = b.build();
        assert!(!model.is_enabled(a, &model.initial_marking()));
    }

    #[test]
    fn fire_applies_effect() {
        let (model, p) = toy();
        let mut m = model.initial_marking();
        model.fire(ActivityId(0), &mut m);
        assert_eq!(m.tokens(p), 1);
    }

    #[test]
    fn names_are_kept() {
        let (model, _) = toy();
        assert_eq!(model.place_name(PlaceId(0)), "tokens");
        assert_eq!(model.activity_name(ActivityId(0)), "drain");
        assert_eq!(model.num_places(), 1);
        assert_eq!(model.num_activities(), 1);
    }

    #[test]
    fn delay_constructors_validate() {
        assert!(std::panic::catch_unwind(|| Delay::exponential_rate(0.0)).is_err());
        assert!(std::panic::catch_unwind(|| Delay::deterministic(-1.0)).is_err());
        assert!(std::panic::catch_unwind(|| Delay::erlang_with_mean(0, 1.0)).is_err());
        let d = Delay::erlang_with_mean(4, 2.0);
        match d {
            Delay::Erlang { shape, rate } => {
                assert_eq!(shape, 4);
                assert!((rate - 2.0).abs() < 1e-12);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn debug_formats() {
        let (model, _) = toy();
        assert!(format!("{model:?}").contains("SanModel"));
        assert!(format!("{:?}", Delay::deterministic(3.0)).contains("Deterministic"));
    }
}
