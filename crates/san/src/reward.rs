//! Reward variables (the UltraSAN performance-variable formalism).
//!
//! A reward variable earns *rate rewards* while the SAN sits in a marking
//! and *impulse rewards* when specific activities fire. Steady-state
//! expected reward rates come from the CTMC solution; accumulated rewards
//! over an interval come from simulation. The paper's P(k) is itself a
//! rate reward (the indicator of capacity k); this module generalizes it.

use std::collections::HashMap;

use crate::ctmc::{Ctmc, CtmcError};
use crate::model::{ActivityId, Delay, Marking, SanModel};
use crate::sim::SanSimulation;

type RateFn = Box<dyn Fn(&Marking) -> f64 + Send + Sync>;

/// A reward structure over a SAN.
pub struct RewardSpec {
    rate: Option<RateFn>,
    impulses: HashMap<ActivityId, RateFn>,
}

impl std::fmt::Debug for RewardSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RewardSpec")
            .field("has_rate", &self.rate.is_some())
            .field("impulses", &self.impulses.len())
            .finish()
    }
}

impl RewardSpec {
    /// An empty (zero) reward structure.
    #[must_use]
    pub fn new() -> Self {
        RewardSpec {
            rate: None,
            impulses: HashMap::new(),
        }
    }

    /// Sets the rate reward earned per unit time in a marking.
    #[must_use]
    pub fn with_rate(mut self, rate: impl Fn(&Marking) -> f64 + Send + Sync + 'static) -> Self {
        self.rate = Some(Box::new(rate));
        self
    }

    /// Adds an impulse reward earned each time `activity` fires, evaluated
    /// on the marking *before* the firing.
    #[must_use]
    pub fn with_impulse(
        mut self,
        activity: ActivityId,
        reward: impl Fn(&Marking) -> f64 + Send + Sync + 'static,
    ) -> Self {
        self.impulses.insert(activity, Box::new(reward));
        self
    }

    fn rate_at(&self, m: &Marking) -> f64 {
        self.rate.as_ref().map_or(0.0, |r| r(m))
    }
}

impl Default for RewardSpec {
    fn default() -> Self {
        RewardSpec::new()
    }
}

/// Steady-state expected reward *rate*: `Σ_s π(s)·rate(s)` plus, for each
/// impulse on activity `a`, `Σ_s π(s)·λ_a(s)·impulse(s)` (the impulse value
/// times the activity's steady-state firing frequency).
///
/// # Errors
///
/// Propagates CTMC solver failures; fails for non-exponential activities
/// carrying impulses.
///
/// # Panics
///
/// Panics if `pi` has the wrong length.
pub fn steady_state_reward_rate(
    model: &SanModel,
    ctmc: &Ctmc,
    pi: &[f64],
    spec: &RewardSpec,
) -> Result<f64, CtmcError> {
    assert_eq!(pi.len(), ctmc.num_states(), "distribution length mismatch");
    let mut total = 0.0;
    for (s, &p) in pi.iter().enumerate() {
        if p == 0.0 {
            continue;
        }
        let marking = ctmc.state(s);
        total += p * spec.rate_at(marking);
        for (&activity, impulse) in &spec.impulses {
            if !model.is_enabled(activity, marking) {
                continue;
            }
            let Delay::Exponential(rate) = &model.activities[activity.0].delay else {
                return Err(CtmcError::NonMarkovianActivity {
                    activity: model.activity_name(activity).to_string(),
                });
            };
            total += p * rate(marking) * impulse(marking);
        }
    }
    Ok(total)
}

/// Simulates the reward accumulated over `[0, horizon]`: the time integral
/// of the rate reward plus every impulse earned.
///
/// # Panics
///
/// Panics on a non-positive horizon.
#[must_use]
pub fn simulate_accumulated_reward(
    model: &SanModel,
    spec: &RewardSpec,
    horizon: f64,
    seed: u64,
) -> f64 {
    assert!(horizon.is_finite() && horizon > 0.0, "bad horizon");
    let mut sim = SanSimulation::new(model, seed);
    let mut total = 0.0;
    let mut last_t = 0.0;
    let mut last_rate = spec.rate_at(sim.marking());
    loop {
        let before = sim.marking().clone();
        let Some((t, fired)) = sim.step() else {
            break;
        };
        let t = t.as_minutes();
        if t > horizon {
            // The firing lies beyond the horizon: accumulate the tail and
            // drop the firing's impulse.
            total += last_rate * (horizon - last_t);
            return total;
        }
        total += last_rate * (t - last_t);
        if let Some(impulse) = spec.impulses.get(&fired) {
            total += impulse(&before);
        }
        last_t = t;
        last_rate = spec.rate_at(sim.marking());
    }
    total + last_rate * (horizon - last_t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Delay, SanBuilder};

    /// Birth–death on {0..3}, λ=1, µ=2 (π ∝ 0.5^k).
    fn birth_death() -> (SanModel, crate::model::PlaceId, ActivityId, ActivityId) {
        let mut b = SanBuilder::new();
        let n = b.add_place("n", 0);
        let arrive = b.add_activity(
            "arrive",
            Delay::exponential_rate(1.0),
            move |m| m.tokens(n) < 3,
            move |m| m.add_tokens(n, 1),
        );
        let serve = b.add_activity(
            "serve",
            Delay::exponential_rate(2.0),
            move |m| m.tokens(n) > 0,
            move |m| m.remove_tokens(n, 1),
        );
        (b.build(), n, arrive, serve)
    }

    #[test]
    fn rate_reward_is_mean_queue_length() {
        let (model, n, _, _) = birth_death();
        let ctmc = Ctmc::explore(&model, 100).unwrap();
        let pi = ctmc.stationary().unwrap();
        let spec = RewardSpec::new().with_rate(move |m| f64::from(m.tokens(n)));
        let mean = steady_state_reward_rate(&model, &ctmc, &pi, &spec).unwrap();
        // Σ k π_k = (0·8 + 4 + 4 + 3)/15 = 11/15.
        assert!((mean - 11.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn impulse_reward_is_throughput() {
        let (model, _, _, serve) = birth_death();
        let ctmc = Ctmc::explore(&model, 100).unwrap();
        let pi = ctmc.stationary().unwrap();
        // One unit per service completion → steady-state throughput.
        let spec = RewardSpec::new().with_impulse(serve, |_| 1.0);
        let throughput = steady_state_reward_rate(&model, &ctmc, &pi, &spec).unwrap();
        // Served rate = arrival rate accepted = λ·P(n<3) = 1·(1−π_3) = 14/15.
        assert!((throughput - 14.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn simulated_accumulation_matches_steady_state() {
        let (model, n, arrive, _) = birth_death();
        let ctmc = Ctmc::explore(&model, 100).unwrap();
        let pi = ctmc.stationary().unwrap();
        let spec = || {
            RewardSpec::new()
                .with_rate(move |m: &Marking| f64::from(m.tokens(n)))
                .with_impulse(arrive, |_| 0.5)
        };
        let exact = steady_state_reward_rate(&model, &ctmc, &pi, &spec()).unwrap();
        let horizon = 200_000.0;
        let sim = simulate_accumulated_reward(&model, &spec(), horizon, 3) / horizon;
        assert!(
            (sim - exact).abs() < 0.02,
            "simulated rate {sim} vs exact {exact}"
        );
    }

    #[test]
    fn horizon_clips_rate_accumulation() {
        // A model whose first firing is far beyond the horizon: the reward
        // is exactly rate(initial) · horizon.
        let mut b = SanBuilder::new();
        let p = b.add_place("p", 2);
        b.add_activity(
            "slow",
            Delay::exponential_rate(1e-9),
            |_| true,
            move |m| m.remove_tokens(p, 1),
        );
        let model = b.build();
        let spec = RewardSpec::new().with_rate(move |m| f64::from(m.tokens(p)));
        let total = simulate_accumulated_reward(&model, &spec, 100.0, 1);
        assert!((total - 200.0).abs() < 1e-6);
    }

    #[test]
    fn empty_spec_earns_nothing() {
        let (model, _, _, _) = birth_death();
        let total = simulate_accumulated_reward(&model, &RewardSpec::new(), 50.0, 2);
        assert_eq!(total, 0.0);
        let ctmc = Ctmc::explore(&model, 100).unwrap();
        let pi = ctmc.stationary().unwrap();
        assert_eq!(
            steady_state_reward_rate(&model, &ctmc, &pi, &RewardSpec::new()).unwrap(),
            0.0
        );
    }

    #[test]
    fn deterministic_impulse_activity_is_rejected_in_steady_state() {
        let mut b = SanBuilder::new();
        let p = b.add_place("p", 0);
        let tick = b.add_activity(
            "tick",
            Delay::exponential_rate(1.0),
            |_| true,
            move |m| m.set_tokens(p, (m.tokens(p) + 1) % 2),
        );
        let det = b.add_activity("det", Delay::deterministic(5.0), |_| true, |_| {});
        let model = b.build();
        let _ = tick;
        // CTMC exploration itself refuses deterministic activities; the
        // reward API surfaces the same error for impulse specs evaluated
        // against a hand-built chain. Here exploration fails first:
        assert!(Ctmc::explore(&model, 100).is_err());
        let _ = det;
    }
}
