//! Discrete-event simulation of SAN models.
//!
//! Execution policy: *enabling memory*. When the marking changes, an
//! activity that stays enabled keeps its scheduled completion time; an
//! activity that becomes disabled forgets it; an activity that becomes
//! enabled samples a fresh delay. This is the policy UltraSAN applies to
//! its timed activities and is what makes the deterministic
//! scheduled-deployment clock of the plane model behave like a wall clock.

use std::collections::HashMap;

use oaq_sim::stats::TimeWeighted;
use oaq_sim::{EventHandle, EventQueue, SimRng, SimTime};

use crate::model::{ActivityId, Delay, Marking, SanModel};

/// Options for steady-state estimation.
#[derive(Debug, Clone, Copy)]
pub struct SteadyStateOptions {
    /// Simulated time discarded before measurement starts.
    pub warmup: f64,
    /// Total simulated time (must exceed `warmup`).
    pub horizon: f64,
    /// RNG seed.
    pub seed: u64,
}

/// A running SAN simulation (step-by-step API; the free functions below
/// cover the common whole-run uses).
pub struct SanSimulation<'m> {
    model: &'m SanModel,
    marking: Marking,
    now: SimTime,
    queue: EventQueue<ActivityId>,
    /// Pending completion per activity, with the rate it was sampled at
    /// (`None` for non-exponential delays).
    pending: HashMap<ActivityId, (EventHandle, Option<f64>)>,
    rng: SimRng,
    fired: u64,
}

impl std::fmt::Debug for SanSimulation<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SanSimulation")
            .field("now", &self.now)
            .field("fired", &self.fired)
            .field("pending", &self.pending.len())
            .finish()
    }
}

impl<'m> SanSimulation<'m> {
    /// Starts a simulation in the model's initial marking.
    #[must_use]
    pub fn new(model: &'m SanModel, seed: u64) -> Self {
        let mut sim = SanSimulation {
            marking: model.initial_marking(),
            model,
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            pending: HashMap::new(),
            rng: SimRng::seed_from(seed),
            fired: 0,
        };
        sim.resync();
        sim
    }

    /// Samples a delay; returns `(delay, rate_used)` where the rate is only
    /// set for exponential activities (whose samples must be invalidated if
    /// the marking-dependent rate changes — memorylessness makes resampling
    /// exact).
    fn sample_delay(&mut self, activity: ActivityId) -> (f64, Option<f64>) {
        let a = &self.model.activities[activity.0];
        match &a.delay {
            Delay::Exponential(rate) => {
                let r = rate(&self.marking);
                debug_assert!(r > 0.0, "enabled exponential must have positive rate");
                (self.rng.exp(r), Some(r))
            }
            Delay::Deterministic(t) => (*t, None),
            Delay::Erlang { shape, rate } => (self.rng.erlang(*shape, *rate), None),
        }
    }

    fn current_rate(&self, activity: ActivityId) -> Option<f64> {
        match &self.model.activities[activity.0].delay {
            Delay::Exponential(rate) => Some(rate(&self.marking)),
            _ => None,
        }
    }

    /// Reconciles the pending-event set with the currently enabled
    /// activities (enabling-memory policy).
    fn resync(&mut self) {
        let enabled = self.model.enabled_activities(&self.marking);
        // Cancel activities that lost their enabling, and invalidate
        // exponential samples whose rate changed with the marking.
        let stale: Vec<ActivityId> = self
            .pending
            .iter()
            .filter(|(a, (_, sampled_rate))| {
                !enabled.contains(a)
                    || sampled_rate.is_some_and(|r| self.current_rate(**a) != Some(r))
            })
            .map(|(a, _)| *a)
            .collect();
        for a in stale {
            if let Some((h, _)) = self.pending.remove(&a) {
                self.queue.cancel(h);
            }
        }
        // Schedule newly enabled (or invalidated) activities.
        for a in enabled {
            if !self.pending.contains_key(&a) {
                let (d, rate) = self.sample_delay(a);
                let h = self.queue.push(SimTime::new(self.now.as_minutes() + d), a);
                self.pending.insert(a, (h, rate));
            }
        }
    }

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Current marking.
    #[must_use]
    pub fn marking(&self) -> &Marking {
        &self.marking
    }

    /// Activities fired so far.
    #[must_use]
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// Fires the next activity; returns what fired, or `None` when no
    /// activity is enabled (the SAN is absorbed).
    pub fn step(&mut self) -> Option<(SimTime, ActivityId)> {
        let (time, activity) = self.queue.pop()?;
        self.pending.remove(&activity);
        self.now = time;
        self.model.fire(activity, &mut self.marking);
        self.fired += 1;
        self.resync();
        Some((time, activity))
    }

    /// Runs until `horizon`; the marking is the state at the horizon.
    pub fn run_until(&mut self, horizon: f64) {
        let h = SimTime::new(horizon);
        while let Some(next) = self.queue.peek_time() {
            if next > h {
                break;
            }
            self.step();
        }
        self.now = h.max(self.now);
    }
}

/// Runs the model to `horizon` and returns the final marking.
#[must_use]
pub fn simulate_transient(model: &SanModel, horizon: f64, seed: u64) -> Marking {
    let mut sim = SanSimulation::new(model, seed);
    sim.run_until(horizon);
    sim.marking().clone()
}

/// Estimates the steady-state probability that `classify(marking) == c` for
/// each class `c < classes`, as the long-run fraction of time (after
/// warm-up).
///
/// # Panics
///
/// Panics if `classes == 0`, the options are inconsistent
/// (`horizon <= warmup`), or the classifier emits an out-of-range class.
#[must_use]
pub fn steady_state_distribution(
    model: &SanModel,
    classify: impl Fn(&Marking) -> usize,
    classes: usize,
    options: &SteadyStateOptions,
) -> Vec<f64> {
    assert!(classes > 0, "need at least one class");
    assert!(
        options.horizon > options.warmup && options.warmup >= 0.0,
        "horizon must exceed warmup"
    );
    let mut sim = SanSimulation::new(model, options.seed);
    sim.run_until(options.warmup);
    let start = SimTime::new(options.warmup);
    let mut trackers: Vec<TimeWeighted> = (0..classes)
        .map(|c| {
            let level = if classify(sim.marking()) == c {
                1.0
            } else {
                0.0
            };
            TimeWeighted::new(level, start)
        })
        .collect();
    let horizon = SimTime::new(options.horizon);
    while let Some(next) = sim.queue.peek_time() {
        if next > horizon {
            break;
        }
        sim.step();
        let t = sim.now().max(start);
        let class = classify(sim.marking());
        assert!(class < classes, "classifier returned {class} >= {classes}");
        for (c, tr) in trackers.iter_mut().enumerate() {
            tr.update(if c == class { 1.0 } else { 0.0 }, t);
        }
    }
    trackers.iter().map(|tr| tr.time_average(horizon)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Delay, SanBuilder};

    /// M/M/1-like birth–death on {0..3} with λ=1, µ=2.
    fn birth_death() -> (SanModel, crate::model::PlaceId) {
        let mut b = SanBuilder::new();
        let n = b.add_place("n", 0);
        b.add_activity(
            "arrive",
            Delay::exponential_rate(1.0),
            move |m| m.tokens(n) < 3,
            move |m| m.add_tokens(n, 1),
        );
        b.add_activity(
            "serve",
            Delay::exponential_rate(2.0),
            move |m| m.tokens(n) > 0,
            move |m| m.remove_tokens(n, 1),
        );
        (b.build(), n)
    }

    #[test]
    fn steady_state_matches_birth_death_closed_form() {
        let (model, n) = birth_death();
        // π_k ∝ (λ/µ)^k = 0.5^k on {0..3}: π = (8,4,2,1)/15.
        let dist = steady_state_distribution(
            &model,
            |m| m.tokens(n) as usize,
            4,
            &SteadyStateOptions {
                warmup: 100.0,
                horizon: 50_000.0,
                seed: 42,
            },
        );
        let expected = [8.0 / 15.0, 4.0 / 15.0, 2.0 / 15.0, 1.0 / 15.0];
        for (d, e) in dist.iter().zip(&expected) {
            assert!((d - e).abs() < 0.01, "{d} vs {e}");
        }
        let total: f64 = dist.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_clock_fires_on_schedule() {
        let mut b = SanBuilder::new();
        let count = b.add_place("count", 0);
        let noise = b.add_place("noise", 0);
        b.add_activity(
            "tick",
            Delay::deterministic(10.0),
            |_| true,
            move |m| m.add_tokens(count, 1),
        );
        // A fast exponential churner that must NOT reset the deterministic
        // clock (enabling-memory policy).
        b.add_activity(
            "churn",
            Delay::exponential_rate(50.0),
            |_| true,
            move |m| m.set_tokens(noise, (m.tokens(noise) + 1) % 2),
        );
        let model = b.build();
        let final_marking = simulate_transient(&model, 95.0, 7);
        assert_eq!(
            final_marking.tokens(count),
            9,
            "ticks at 10,20,...,90 despite churn"
        );
    }

    #[test]
    fn absorbed_model_stops() {
        let mut b = SanBuilder::new();
        let p = b.add_place("p", 2);
        b.add_activity(
            "drain",
            Delay::exponential_rate(1.0),
            move |m| m.tokens(p) > 0,
            move |m| m.remove_tokens(p, 1),
        );
        let model = b.build();
        let mut sim = SanSimulation::new(&model, 1);
        assert!(sim.step().is_some());
        assert!(sim.step().is_some());
        assert!(sim.step().is_none(), "absorbed after two firings");
        assert_eq!(sim.fired(), 2);
    }

    #[test]
    fn erlang_delay_has_correct_mean() {
        let mut b = SanBuilder::new();
        let fired = b.add_place("fired", 0);
        b.add_activity(
            "erl",
            Delay::erlang_with_mean(4, 2.0),
            |_| true,
            move |m| m.add_tokens(fired, 1),
        );
        let model = b.build();
        let m = simulate_transient(&model, 10_000.0, 3);
        let count = f64::from(m.tokens(fired));
        assert!(
            (count - 5000.0).abs() < 200.0,
            "renewals with mean 2 over 10k: got {count}"
        );
    }

    #[test]
    fn run_until_advances_clock_past_last_event() {
        let (model, _) = birth_death();
        let mut sim = SanSimulation::new(&model, 2);
        sim.run_until(5.0);
        assert_eq!(sim.now(), SimTime::new(5.0));
    }

    #[test]
    fn deterministic_runs_are_reproducible() {
        let (model, n) = birth_death();
        let a = simulate_transient(&model, 123.0, 9).tokens(n);
        let b = simulate_transient(&model, 123.0, 9).tokens(n);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "horizon must exceed warmup")]
    fn bad_options_rejected() {
        let (model, n) = birth_death();
        let _ = steady_state_distribution(
            &model,
            move |m| m.tokens(n) as usize,
            4,
            &SteadyStateOptions {
                warmup: 10.0,
                horizon: 5.0,
                seed: 0,
            },
        );
    }
}
