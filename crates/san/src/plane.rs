//! The paper's orbital-plane availability model (Figure 7's P(k)).
//!
//! One orbital plane holds `capacity` active satellites plus in-orbit
//! `spares`. Satellites fail independently at rate λ each; a failure
//! consumes a spare while any remain, then reduces the active capacity `k`.
//! The constellation is protected by two ground-spare deployment policies
//! (paper Section 4.1):
//!
//! * **Scheduled deployment** — every φ hours (deterministic) the plane is
//!   restored to its full complement.
//! * **Threshold-triggered deployment at k = η** — the paper does not fully
//!   specify the mechanics; we model it as one-for-one replenishment that
//!   pins the plane at `k = η` until the next scheduled restore
//!   ([`SparePolicy::PinAtThreshold`]). This is the reading that reproduces
//!   Figure 7's reported shape: P(η) negligible at λ = 1e-5 and rapidly
//!   dominant as λ grows. The alternative reading — a full restore
//!   launched after a deployment delay — is also implemented
//!   ([`SparePolicy::FullRestoreAfterDelay`]) and compared in the ablation
//!   experiment (E11).
//!
//! Time unit: **hours** (matching the paper's λ and φ).

use crate::ctmc::{Ctmc, CtmcError};
use crate::model::{Delay, Marking, PlaceId, SanBuilder, SanModel};
use crate::phase_type::erlang_stage_rate;
use crate::sim::{steady_state_distribution, SteadyStateOptions};

/// How ground spares respond to the threshold crossing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SparePolicy {
    /// Failures at `k = η` (with in-orbit spares exhausted) are replaced
    /// one-for-one from the ground, pinning the plane at the threshold until
    /// the scheduled restore.
    PinAtThreshold,
    /// Hitting `k = η` triggers a full-restore launch that completes after a
    /// random delay (Erlang-distributed; shape 1 is exponential). Failures
    /// continue during the delay.
    FullRestoreAfterDelay {
        /// Mean launch-to-restore delay in hours.
        mean_delay_hours: f64,
        /// Erlang shape of the delay distribution.
        erlang_shape: u32,
    },
}

/// Parameters of one orbital plane's availability model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlaneModelConfig {
    /// Full active capacity (14 in the reference design).
    pub capacity: u32,
    /// In-orbit spares (2 in the reference design).
    pub spares: u32,
    /// Per-satellite failure rate, per hour.
    pub lambda: f64,
    /// Scheduled ground-spare deployment period φ, hours.
    pub phi: f64,
    /// Threshold capacity η.
    pub eta: u32,
    /// Threshold-policy mechanics.
    pub policy: SparePolicy,
}

impl PlaneModelConfig {
    /// The reference plane (14 + 2) with the pin-at-threshold policy.
    ///
    /// # Panics
    ///
    /// Panics on non-positive λ or φ, or `eta >= capacity`.
    #[must_use]
    pub fn reference(lambda: f64, phi: f64, eta: u32) -> Self {
        let cfg = PlaneModelConfig {
            capacity: 14,
            spares: 2,
            lambda,
            phi,
            eta,
            policy: SparePolicy::PinAtThreshold,
        };
        cfg.validate();
        cfg
    }

    fn validate(&self) {
        assert!(
            self.lambda.is_finite() && self.lambda > 0.0,
            "lambda must be positive"
        );
        assert!(
            self.phi.is_finite() && self.phi > 0.0,
            "phi must be positive"
        );
        assert!(self.eta < self.capacity, "threshold must be below capacity");
        assert!(self.capacity > 0, "capacity must be positive");
        if let SparePolicy::FullRestoreAfterDelay {
            mean_delay_hours,
            erlang_shape,
        } = self.policy
        {
            assert!(
                mean_delay_hours.is_finite() && mean_delay_hours > 0.0,
                "delay must be positive"
            );
            assert!(erlang_shape > 0, "Erlang shape must be >= 1");
        }
    }

    /// Builds the simulation variant (deterministic scheduled-restore
    /// clock).
    #[must_use]
    pub fn build_sim(&self) -> PlaneModel {
        self.build(RestoreClock::Deterministic)
    }

    /// Builds the Markov variant: the deterministic clock becomes an
    /// Erlang(`erlang_shape`) stage chain so the model is a CTMC.
    ///
    /// # Panics
    ///
    /// Panics if `erlang_shape == 0`.
    #[must_use]
    pub fn build_markov(&self, erlang_shape: u32) -> PlaneModel {
        assert!(erlang_shape > 0, "Erlang shape must be >= 1");
        self.build(RestoreClock::ErlangStages(erlang_shape))
    }

    fn build(&self, clock: RestoreClock) -> PlaneModel {
        self.validate();
        let cfg = *self;
        let mut b = SanBuilder::new();
        let active = b.add_place("active", cfg.capacity);
        let spares = b.add_place("spares", cfg.spares);

        // --- Satellite failures -----------------------------------------
        let failure_enabled = move |m: &Marking| {
            let k = m.tokens(active);
            if k == 0 {
                return false;
            }
            match cfg.policy {
                // Failures at the pinned threshold are replaced instantly:
                // model them as disabled (they would be CTMC self-loops).
                SparePolicy::PinAtThreshold => m.tokens(spares) > 0 || k > cfg.eta,
                SparePolicy::FullRestoreAfterDelay { .. } => true,
            }
        };
        // Failures strike active satellites (rate k·λ); dormant in-orbit
        // spares are assumed not to fail, consistent with the paper's
        // "14 active plus 2 in-orbit spares" accounting.
        let lambda = cfg.lambda;
        let failure_rate = move |m: &Marking| lambda * f64::from(m.tokens(active));
        b.add_activity(
            "satellite_failure",
            Delay::exponential_with(failure_rate),
            failure_enabled,
            move |m| {
                if m.tokens(spares) > 0 {
                    // The failed unit is replaced in place by an in-orbit
                    // spare; active capacity is preserved.
                    m.remove_tokens(spares, 1);
                } else {
                    m.remove_tokens(active, 1);
                }
            },
        );

        // --- Scheduled ground-spare deployment (period φ) -----------------
        let restore = move |m: &mut Marking| {
            m.set_tokens(active, cfg.capacity);
            m.set_tokens(spares, cfg.spares);
        };
        let mut stage_place = None;
        match clock {
            RestoreClock::Deterministic => {
                b.add_activity(
                    "scheduled_restore",
                    Delay::deterministic(cfg.phi),
                    |_| true,
                    restore,
                );
            }
            RestoreClock::ErlangStages(shape) => {
                let stage = b.add_place("restore_stage", 0);
                stage_place = Some(stage);
                let rate = erlang_stage_rate(shape, cfg.phi);
                b.add_activity(
                    "restore_stage_tick",
                    Delay::exponential_rate(rate),
                    |_| true,
                    move |m| {
                        let s = m.tokens(stage) + 1;
                        if s >= shape {
                            m.set_tokens(stage, 0);
                            restore(m);
                        } else {
                            m.set_tokens(stage, s);
                        }
                    },
                );
            }
        }

        // --- Threshold-triggered launch (full-restore variant) -----------
        if let SparePolicy::FullRestoreAfterDelay {
            mean_delay_hours,
            erlang_shape,
        } = cfg.policy
        {
            let launch_stage = b.add_place("launch_stage", 0);
            let rate = erlang_stage_rate(erlang_shape, mean_delay_hours);
            let below_threshold =
                move |m: &Marking| m.tokens(active) <= cfg.eta && m.tokens(spares) == 0;
            b.add_activity(
                "launch_stage_tick",
                Delay::exponential_rate(rate),
                below_threshold,
                move |m| {
                    let s = m.tokens(launch_stage) + 1;
                    if s >= erlang_shape {
                        m.set_tokens(launch_stage, 0);
                        restore(m);
                    } else {
                        m.set_tokens(launch_stage, s);
                    }
                },
            );
        }

        PlaneModel {
            model: b.build(),
            active,
            spares,
            stage_place,
            config: cfg,
        }
    }
}

impl PlaneModelConfig {
    /// Builds and explores the *within-cycle* capacity process — the pinned
    /// pure-death CTMC between two scheduled restores, with no restore
    /// clock — into a [`CapacitySolve`] that can be reused for any horizon
    /// φ and shared across threads (`CapacitySolve` is `Send + Sync`).
    ///
    /// This is the expensive half of the Figure 7 regeneration-cycle
    /// integral `P(k) = (1/φ)∫₀^φ P(K(t)=k) dt`: state-space exploration
    /// and generator construction depend only on (capacity, spares, λ, η),
    /// so a serving layer can solve once per failure scenario and evaluate
    /// [`CapacitySolve::distribution_over`] for many deployment periods.
    ///
    /// # Errors
    ///
    /// Propagates CTMC exploration failures (state budget).
    ///
    /// # Panics
    ///
    /// Panics unless the policy is [`SparePolicy::PinAtThreshold`] (the
    /// full-restore variant's within-cycle process is not a pure death
    /// process, so the regeneration-cycle reading does not apply).
    pub fn capacity_solve(&self, max_states: usize) -> Result<CapacitySolve, CtmcError> {
        self.validate();
        assert!(
            self.policy == SparePolicy::PinAtThreshold,
            "capacity_solve requires the pin-at-threshold policy"
        );
        let cfg = *self;
        let mut b = SanBuilder::new();
        let active = b.add_place("active", cfg.capacity);
        let spares = b.add_place("spares", cfg.spares);
        let lambda = cfg.lambda;
        b.add_activity(
            "satellite_failure",
            Delay::exponential_with(move |m: &Marking| lambda * f64::from(m.tokens(active))),
            move |m: &Marking| {
                m.tokens(active) > 0 && (m.tokens(spares) > 0 || m.tokens(active) > cfg.eta)
            },
            move |m: &mut Marking| {
                if m.tokens(spares) > 0 {
                    m.remove_tokens(spares, 1);
                } else {
                    m.remove_tokens(active, 1);
                }
            },
        );
        let ctmc = Ctmc::explore(&b.build(), max_states)?;
        Ok(CapacitySolve {
            ctmc,
            actives: vec![active],
            classes: cfg.capacity as usize + 1,
        })
    }

    /// Builds and explores the **exact joint** within-cycle chain of
    /// `num_planes` identical planes: one (active, spares) place pair and
    /// one failure activity per plane, classified by the *total* active
    /// count. The state space is the `num_planes`-fold product of the
    /// single-plane chain (7ⁿ states at the paper's 14 + 2 design), so this
    /// is only feasible for a handful of planes — it exists as the ground
    /// truth the product-form decomposition ([`product_form_pk`]) is
    /// cross-checked against.
    ///
    /// # Errors
    ///
    /// Propagates CTMC exploration failures (state budget).
    ///
    /// # Panics
    ///
    /// Panics if `num_planes == 0`, or unless the policy is
    /// [`SparePolicy::PinAtThreshold`] (as [`Self::capacity_solve`]).
    pub fn joint_capacity_solve(
        &self,
        num_planes: usize,
        max_states: usize,
    ) -> Result<CapacitySolve, CtmcError> {
        self.validate();
        assert!(num_planes > 0, "need at least one plane");
        assert!(
            self.policy == SparePolicy::PinAtThreshold,
            "joint_capacity_solve requires the pin-at-threshold policy"
        );
        let cfg = *self;
        let mut b = SanBuilder::new();
        let mut actives = Vec::with_capacity(num_planes);
        for p in 0..num_planes {
            let active = b.add_place(format!("active_{p}"), cfg.capacity);
            let spares = b.add_place(format!("spares_{p}"), cfg.spares);
            actives.push(active);
            let lambda = cfg.lambda;
            b.add_activity(
                format!("satellite_failure_{p}"),
                Delay::exponential_with(move |m: &Marking| lambda * f64::from(m.tokens(active))),
                move |m: &Marking| {
                    m.tokens(active) > 0 && (m.tokens(spares) > 0 || m.tokens(active) > cfg.eta)
                },
                move |m: &mut Marking| {
                    if m.tokens(spares) > 0 {
                        m.remove_tokens(spares, 1);
                    } else {
                        m.remove_tokens(active, 1);
                    }
                },
            );
        }
        let ctmc = Ctmc::explore(&b.build(), max_states)?;
        Ok(CapacitySolve {
            ctmc,
            actives,
            classes: num_planes * cfg.capacity as usize + 1,
        })
    }
}

/// A reusable capacity solve: the explored within-cycle CTMC of one plane
/// (see [`PlaneModelConfig::capacity_solve`]) or of a small joint group of
/// planes ([`PlaneModelConfig::joint_capacity_solve`], classified by total
/// active count). Holds no closures over external state, so it is
/// `Send + Sync` and can back a multi-threaded serving layer; one solve
/// answers `P(k)` for any horizon φ.
#[derive(Debug)]
pub struct CapacitySolve {
    ctmc: Ctmc,
    actives: Vec<PlaceId>,
    classes: usize,
}

impl CapacitySolve {
    /// Number of reachable within-cycle states.
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.ctmc.num_states()
    }

    /// The underlying within-cycle CTMC.
    #[must_use]
    pub fn ctmc(&self) -> &Ctmc {
        &self.ctmc
    }

    /// The capacity distribution `P(K = k)`, `k = 0..=capacity`, for a
    /// regeneration cycle of length `phi` hours, integrated with `panels`
    /// Simpson panels — all of them evaluated over one shared iterate
    /// sequence of the sparse uniformization kernel.
    ///
    /// # Errors
    ///
    /// Rejects `panels == 0` and non-finite / non-positive `phi` with a
    /// typed [`CtmcError::Solver`]; propagates transient-solver failures.
    pub fn distribution_over(&self, phi: f64, panels: usize) -> Result<Vec<f64>, CtmcError> {
        let avg = self.ctmc.time_average(phi, panels)?;
        Ok(self.classify(&avg))
    }

    /// Capacity distributions for *many* cycle lengths at once: every
    /// Simpson node of every φ rides one shared iterate sequence, so a
    /// φ-sweep costs a single matvec sweep. Each row is bit-identical to
    /// the corresponding [`Self::distribution_over`] call.
    ///
    /// # Errors
    ///
    /// As [`Self::distribution_over`], applied to every φ.
    pub fn distributions_over(
        &self,
        phis: &[f64],
        panels: usize,
    ) -> Result<Vec<Vec<f64>>, CtmcError> {
        let averages = self.ctmc.kernel()?.time_average_many(
            &self.ctmc.initial_distribution(),
            phis,
            panels,
        )?;
        Ok(averages.iter().map(|avg| self.classify(avg)).collect())
    }

    /// The dense per-panel reference for [`Self::distribution_over`] — one
    /// independent dense uniformization per Simpson node. Kept as the
    /// baseline the sparse shared-iterate kernel is benchmarked
    /// (`pk_kernel`) and property-tested against.
    ///
    /// # Errors
    ///
    /// As [`Self::distribution_over`].
    pub fn distribution_over_dense(&self, phi: f64, panels: usize) -> Result<Vec<f64>, CtmcError> {
        let avg = crate::solver::time_average_distribution_dense(
            self.ctmc.generator(),
            &self.ctmc.initial_distribution(),
            phi,
            panels,
        )?;
        Ok(self.classify(&avg))
    }

    /// Number of capacity classes (`total capacity + 1`).
    #[must_use]
    pub fn num_classes(&self) -> usize {
        self.classes
    }

    /// Capacity distributions `P(K(tₛ) = k)` at every Simpson node of
    /// `[0, phi]` — the per-node marginals the product-form assembly
    /// convolves *before* integrating (the convolution is nonlinear in the
    /// per-plane distributions, so it must happen inside the integral).
    ///
    /// # Errors
    ///
    /// As [`Self::distribution_over`].
    fn node_class_distributions(
        &self,
        phi: f64,
        panels: usize,
        tol: f64,
    ) -> Result<Vec<Vec<f64>>, CtmcError> {
        let m = simpson_panels(phi, panels)?;
        let h = phi / m as f64;
        let times: Vec<f64> = (0..=m).map(|s| h * s as f64).collect();
        let rows =
            self.ctmc
                .kernel()?
                .transient_batch(&self.ctmc.initial_distribution(), &times, tol)?;
        Ok(rows.iter().map(|r| self.classify(r)).collect())
    }

    fn classify(&self, avg: &[f64]) -> Vec<f64> {
        self.ctmc.classify_distribution(
            avg,
            |m| {
                self.actives
                    .iter()
                    .map(|&a| m.tokens(a) as usize)
                    .sum::<usize>()
            },
            self.classes,
        )
    }
}

/// Validates `(phi, panels)` and returns the (even) Simpson panel count.
fn simpson_panels(phi: f64, panels: usize) -> Result<usize, CtmcError> {
    if !(phi.is_finite() && phi > 0.0) {
        return Err(CtmcError::Solver(crate::solver::SolverError::InvalidInput(
            format!("bad horizon {phi}"),
        )));
    }
    if panels == 0 {
        return Err(CtmcError::Solver(crate::solver::SolverError::InvalidInput(
            "Simpson quadrature needs at least one panel".to_string(),
        )));
    }
    Ok(panels.max(2).next_multiple_of(2))
}

/// Poisson-series tolerance of the product-form and joint P(k) paths.
///
/// Tighter than the 1e-12 of the time-average kernel: the product and joint
/// paths take *different* uniformization routes (per-plane Λ vs joint Λ),
/// so their truncation errors do not cancel in the cross-check the way the
/// sparse/dense pair's do. Solving each transient an order of magnitude
/// past the agreement bar keeps the assembled distributions within 1e-12 of
/// each other.
const PRODUCT_FORM_TOL: f64 = 1e-13;

/// The constellation-level capacity distribution `P(K₁ + … + K_q = k)` over
/// one regeneration cycle, assembled by **per-plane product form**: plane
/// failure processes are mutually independent and restores are synchronized
/// (one shared scheduled-deployment epoch), so at every instant `t` the
/// joint capacity distribution is the convolution of the per-plane
/// marginals, and
///
/// ```text
/// P(K = k) = (1/φ) ∫₀^φ (p₁(t) ∗ … ∗ p_q(t))(k) dt .
/// ```
///
/// Each *distinct* solve's Simpson-node marginals are computed once (one
/// shared-iterate sweep per plane CTMC); repeated references — the
/// homogeneous-constellation case — reuse them, so a 72-plane Starlink
/// shell costs one 7-state solve plus convolutions instead of a 7⁷²-state
/// joint chain. Passing a single [`PlaneModelConfig::joint_capacity_solve`]
/// reference evaluates the exact joint chain under the *same* quadrature,
/// which is how the decomposition is cross-checked at paper scale.
///
/// # Errors
///
/// Rejects an empty `solves` slice, `panels == 0` and non-finite /
/// non-positive `phi` with a typed [`CtmcError::Solver`]; propagates
/// transient-solver failures.
pub fn product_form_pk(
    solves: &[&CapacitySolve],
    phi: f64,
    panels: usize,
) -> Result<Vec<f64>, CtmcError> {
    if solves.is_empty() {
        return Err(CtmcError::Solver(crate::solver::SolverError::InvalidInput(
            "product form needs at least one plane solve".to_string(),
        )));
    }
    let m = simpson_panels(phi, panels)?;
    // One transient sweep per *distinct* solve (pointer identity): the
    // homogeneous case solves its plane CTMC once however many planes ride.
    let mut cache: Vec<(*const CapacitySolve, Vec<Vec<f64>>)> = Vec::new();
    let mut node_rows: Vec<usize> = Vec::with_capacity(solves.len());
    for &solve in solves {
        let key = std::ptr::from_ref(solve);
        let idx = match cache.iter().position(|(k, _)| std::ptr::eq(*k, key)) {
            Some(i) => i,
            None => {
                let rows = solve.node_class_distributions(phi, m, PRODUCT_FORM_TOL)?;
                cache.push((key, rows));
                cache.len() - 1
            }
        };
        node_rows.push(idx);
    }
    let total_classes: usize = solves.iter().map(|s| s.classes - 1).sum::<usize>() + 1;
    let h = phi / m as f64;
    let mut acc = vec![0.0; total_classes];
    for s in 0..=m {
        // Convolve the per-plane marginals at this node, then integrate.
        let mut conv = cache[node_rows[0]].1[s].clone();
        for &idx in &node_rows[1..] {
            conv = convolve(&conv, &cache[idx].1[s]);
        }
        let w = simpson_weight(s, m) * h / 3.0 / phi;
        for (a, x) in acc.iter_mut().zip(&conv) {
            *a += w * x;
        }
    }
    Ok(oaq_linalg::vec_ops::normalize_prob(&acc).unwrap_or(acc))
}

/// Discrete convolution of two probability vectors.
fn convolve(a: &[f64], b: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; a.len() + b.len() - 1];
    for (i, &x) in a.iter().enumerate() {
        if x == 0.0 {
            continue;
        }
        for (j, &y) in b.iter().enumerate() {
            out[i + j] += x * y;
        }
    }
    out
}

fn simpson_weight(s: usize, m: usize) -> f64 {
    if s == 0 || s == m {
        1.0
    } else if s % 2 == 1 {
        4.0
    } else {
        2.0
    }
}

#[derive(Debug, Clone, Copy)]
enum RestoreClock {
    Deterministic,
    ErlangStages(u32),
}

/// A built plane model with handles to its places.
#[derive(Debug)]
pub struct PlaneModel {
    model: SanModel,
    active: PlaceId,
    spares: PlaceId,
    stage_place: Option<PlaceId>,
    config: PlaneModelConfig,
}

impl PlaneModel {
    /// The underlying SAN.
    #[must_use]
    pub fn san(&self) -> &SanModel {
        &self.model
    }

    /// The configuration the model was built from.
    #[must_use]
    pub fn config(&self) -> &PlaneModelConfig {
        &self.config
    }

    /// The place holding the active-satellite count `k`.
    #[must_use]
    pub fn active_place(&self) -> PlaceId {
        self.active
    }

    /// The place holding the remaining in-orbit spares.
    #[must_use]
    pub fn spares_place(&self) -> PlaceId {
        self.spares
    }

    /// Active capacity `k` in a marking.
    #[must_use]
    pub fn capacity_of(&self, m: &Marking) -> u32 {
        m.tokens(self.active)
    }

    /// Estimates `P(K = k)` for `k = 0..=capacity` by long-run simulation.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent options (see
    /// [`steady_state_distribution`]).
    #[must_use]
    pub fn capacity_distribution_sim(&self, options: &SteadyStateOptions) -> Vec<f64> {
        let active = self.active;
        steady_state_distribution(
            &self.model,
            move |m| m.tokens(active) as usize,
            self.config.capacity as usize + 1,
            options,
        )
    }

    /// Computes `P(K = k)` exactly for the Markov variant.
    ///
    /// # Errors
    ///
    /// Fails on models built with [`PlaneModelConfig::build_sim`] (the
    /// deterministic clock is not Markovian) or if exploration exceeds
    /// `max_states`.
    pub fn capacity_distribution_markov(&self, max_states: usize) -> Result<Vec<f64>, CtmcError> {
        let ctmc = Ctmc::explore(&self.model, max_states)?;
        let pi = ctmc.stationary()?;
        let active = self.active;
        Ok(ctmc.classify_distribution(
            &pi,
            |m| m.tokens(active) as usize,
            self.config.capacity as usize + 1,
        ))
    }

    /// Whether this model has the Erlang stage clock (Markov variant).
    #[must_use]
    pub fn is_markovian(&self) -> bool {
        self.stage_place.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PHI: f64 = 30_000.0;

    fn sim_opts(seed: u64) -> SteadyStateOptions {
        SteadyStateOptions {
            warmup: 5.0 * PHI,
            horizon: 400.0 * PHI,
            seed,
        }
    }

    #[test]
    fn distribution_sums_to_one_and_respects_threshold() {
        let cfg = PlaneModelConfig::reference(5e-5, PHI, 10);
        let dist = cfg.build_sim().capacity_distribution_sim(&sim_opts(1));
        let total: f64 = dist.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        for (k, &p) in dist.iter().enumerate().take(10) {
            assert_eq!(p, 0.0, "pinning forbids k={k}");
        }
    }

    #[test]
    fn low_failure_rate_keeps_full_capacity() {
        let cfg = PlaneModelConfig::reference(1e-6, PHI, 10);
        let dist = cfg.build_sim().capacity_distribution_sim(&sim_opts(2));
        assert!(dist[14] > 0.95, "P(14) = {}", dist[14]);
    }

    #[test]
    fn high_failure_rate_pins_at_threshold() {
        let cfg = PlaneModelConfig::reference(1e-4, PHI, 10);
        let dist = cfg.build_sim().capacity_distribution_sim(&sim_opts(3));
        assert!(
            dist[10] > dist[14],
            "threshold should dominate: P(10)={} P(14)={}",
            dist[10],
            dist[14]
        );
        assert!(dist[10] > 0.5, "P(10) = {}", dist[10]);
    }

    #[test]
    fn markov_variant_matches_simulation() {
        let cfg = PlaneModelConfig::reference(5e-5, PHI, 10);
        let sim_dist = cfg.build_sim().capacity_distribution_sim(&sim_opts(4));
        let markov = cfg.build_markov(25);
        assert!(markov.is_markovian());
        let exact = markov.capacity_distribution_markov(50_000).unwrap();
        for k in 10..=14 {
            assert!(
                (sim_dist[k] - exact[k]).abs() < 0.03,
                "k={k}: sim {} vs markov {}",
                sim_dist[k],
                exact[k]
            );
        }
    }

    #[test]
    fn full_restore_policy_allows_below_threshold() {
        let cfg = PlaneModelConfig {
            capacity: 14,
            spares: 2,
            lambda: 2e-4,
            phi: PHI,
            eta: 10,
            policy: SparePolicy::FullRestoreAfterDelay {
                mean_delay_hours: 2000.0,
                erlang_shape: 1,
            },
        };
        let dist = cfg.build_sim().capacity_distribution_sim(&sim_opts(5));
        let below: f64 = dist[..10].iter().sum();
        assert!(below > 0.0, "launch delay exposes k < eta");
        let total: f64 = dist.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn spare_consumption_shields_capacity() {
        // With spares, brief capacity excursions below 14 require 3+
        // failures inside one cycle; compare against a spare-less plane.
        let with_spares = PlaneModelConfig::reference(2e-5, PHI, 10);
        let without = PlaneModelConfig {
            spares: 0,
            ..with_spares
        };
        let d_with = with_spares
            .build_sim()
            .capacity_distribution_sim(&sim_opts(6));
        let d_without = without.build_sim().capacity_distribution_sim(&sim_opts(6));
        assert!(
            d_with[14] > d_without[14] + 0.05,
            "spares must raise P(14): {} vs {}",
            d_with[14],
            d_without[14]
        );
    }

    #[test]
    fn sim_and_markov_reject_mismatched_solvers() {
        let cfg = PlaneModelConfig::reference(5e-5, PHI, 10);
        let sim_model = cfg.build_sim();
        assert!(!sim_model.is_markovian());
        assert!(sim_model.capacity_distribution_markov(10_000).is_err());
    }

    #[test]
    #[should_panic(expected = "threshold must be below capacity")]
    fn invalid_threshold_rejected() {
        let _ = PlaneModelConfig::reference(1e-5, PHI, 14);
    }

    #[test]
    fn capacity_solve_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CapacitySolve>();
        assert_send_sync::<SanModel>();
    }

    #[test]
    fn capacity_solve_reuses_across_horizons() {
        let solve = PlaneModelConfig::reference(5e-5, PHI, 10)
            .capacity_solve(10_000)
            .unwrap();
        // One within-cycle state per (active, spares) reachable pair:
        // (14,2), (14,1), (14,0), then 13..=10 with no spares.
        assert_eq!(solve.num_states(), 7);
        let long = solve.distribution_over(30_000.0, 256).unwrap();
        let short = solve.distribution_over(10_000.0, 256).unwrap();
        for d in [&long, &short] {
            let total: f64 = d.iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
        assert!(short[14] > long[14], "shorter cycles keep the plane fuller");
    }

    #[test]
    fn capacity_solve_shared_across_threads() {
        let solve = PlaneModelConfig::reference(5e-5, PHI, 10)
            .capacity_solve(10_000)
            .unwrap();
        let baseline = solve.distribution_over(PHI, 256).unwrap();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|| solve.distribution_over(PHI, 256).unwrap()))
                .collect();
            for h in handles {
                assert_eq!(h.join().unwrap(), baseline, "solves are bit-identical");
            }
        });
    }

    #[test]
    fn distribution_over_rejects_zero_panels_and_bad_phi() {
        let solve = PlaneModelConfig::reference(5e-5, PHI, 10)
            .capacity_solve(10_000)
            .unwrap();
        for bad in [
            solve.distribution_over(PHI, 0),
            solve.distribution_over(f64::NAN, 256),
            solve.distribution_over(0.0, 256),
            solve.distribution_over(f64::INFINITY, 256),
        ] {
            assert!(
                matches!(bad, Err(CtmcError::Solver(_))),
                "typed rejection expected, got {bad:?}"
            );
        }
    }

    #[test]
    fn distributions_over_matches_per_phi_calls_bitwise() {
        let solve = PlaneModelConfig::reference(5e-5, PHI, 10)
            .capacity_solve(10_000)
            .unwrap();
        let phis = [5_000.0, 10_000.0, 30_000.0];
        let rows = solve.distributions_over(&phis, 256).unwrap();
        for (&phi, row) in phis.iter().zip(&rows) {
            assert_eq!(row, &solve.distribution_over(phi, 256).unwrap());
        }
    }

    #[test]
    fn sparse_kernel_agrees_with_dense_reference() {
        let solve = PlaneModelConfig::reference(5e-5, PHI, 10)
            .capacity_solve(10_000)
            .unwrap();
        let sparse = solve.distribution_over(PHI, 256).unwrap();
        let dense = solve.distribution_over_dense(PHI, 256).unwrap();
        for (k, (s, d)) in sparse.iter().zip(&dense).enumerate() {
            assert!((s - d).abs() <= 1e-12, "k={k}: sparse {s} vs dense {d}");
        }
    }

    #[test]
    fn product_form_matches_joint_solve_at_paper_scale() {
        // The decomposition's ground truth: 2 and 3 paper-scale planes,
        // exact joint chain (49 / 343 states) vs per-plane convolution.
        let cfg = PlaneModelConfig::reference(5e-5, PHI, 10);
        let plane = cfg.capacity_solve(10_000).unwrap();
        for planes in [2usize, 3] {
            let joint = cfg.joint_capacity_solve(planes, 10_000).unwrap();
            assert_eq!(joint.num_states(), 7usize.pow(planes as u32));
            assert_eq!(joint.num_classes(), planes * 14 + 1);
            let exact = product_form_pk(&[&joint], PHI, 64).unwrap();
            let refs: Vec<&CapacitySolve> = (0..planes).map(|_| &plane).collect();
            let product = product_form_pk(&refs, PHI, 64).unwrap();
            assert_eq!(product.len(), exact.len());
            for (k, (p, e)) in product.iter().zip(&exact).enumerate() {
                assert!(
                    (p - e).abs() <= 1e-12,
                    "{planes} planes, k={k}: product {p} vs joint {e}"
                );
            }
        }
    }

    #[test]
    fn product_form_single_plane_matches_time_average_path() {
        let solve = PlaneModelConfig::reference(5e-5, PHI, 10)
            .capacity_solve(10_000)
            .unwrap();
        let nodewise = product_form_pk(&[&solve], PHI, 256).unwrap();
        let averaged = solve.distribution_over(PHI, 256).unwrap();
        for (k, (a, b)) in nodewise.iter().zip(&averaged).enumerate() {
            assert!((a - b).abs() <= 1e-12, "k={k}: {a} vs {b}");
        }
    }

    #[test]
    fn product_form_is_proper_and_pinned_above_total_threshold() {
        let cfg = PlaneModelConfig::reference(1e-4, PHI, 10);
        let plane = cfg.capacity_solve(10_000).unwrap();
        let pk = product_form_pk(&[&plane, &plane, &plane, &plane], PHI, 64).unwrap();
        assert_eq!(pk.len(), 4 * 14 + 1);
        let total: f64 = pk.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        for (k, &p) in pk.iter().enumerate().take(4 * 10) {
            assert_eq!(p, 0.0, "pinning forbids total k = {k}");
        }
        assert!(pk[4 * 14] > 0.0);
    }

    #[test]
    fn product_form_rejects_bad_inputs() {
        let solve = PlaneModelConfig::reference(5e-5, PHI, 10)
            .capacity_solve(10_000)
            .unwrap();
        for bad in [
            product_form_pk(&[], PHI, 64),
            product_form_pk(&[&solve], f64::NAN, 64),
            product_form_pk(&[&solve], 0.0, 64),
            product_form_pk(&[&solve], PHI, 0),
        ] {
            assert!(matches!(bad, Err(CtmcError::Solver(_))), "{bad:?}");
        }
    }

    #[test]
    #[should_panic(expected = "pin-at-threshold")]
    fn joint_solve_rejects_full_restore_policy() {
        let cfg = PlaneModelConfig {
            policy: SparePolicy::FullRestoreAfterDelay {
                mean_delay_hours: 2000.0,
                erlang_shape: 1,
            },
            ..PlaneModelConfig::reference(1e-5, PHI, 10)
        };
        let _ = cfg.joint_capacity_solve(2, 10_000);
    }

    #[test]
    #[should_panic(expected = "pin-at-threshold")]
    fn capacity_solve_rejects_full_restore_policy() {
        let cfg = PlaneModelConfig {
            policy: SparePolicy::FullRestoreAfterDelay {
                mean_delay_hours: 2000.0,
                erlang_shape: 1,
            },
            ..PlaneModelConfig::reference(1e-5, PHI, 10)
        };
        let _ = cfg.capacity_solve(10_000);
    }
}
