//! Gate types: SAN input gates (enabling predicates) and output gates
//! (marking transformations).
//!
//! In the SAN formalism, *input gates* decide when an activity may complete
//! and *output gates* describe how the marking changes on completion. In
//! this crate they are plain boxed closures over [`crate::model::Marking`];
//! the aliases exist so model-building code reads in SAN vocabulary.

use crate::model::Marking;

/// An input gate: enables an activity as a function of the marking.
pub type Predicate = Box<dyn Fn(&Marking) -> bool + Send + Sync>;

/// An output gate: transforms the marking when an activity completes.
pub type Effect = Box<dyn Fn(&mut Marking) + Send + Sync>;

/// Combines predicates conjunctively.
#[must_use]
pub fn all_of(preds: Vec<Predicate>) -> Predicate {
    Box::new(move |m| preds.iter().all(|p| p(m)))
}

/// Combines predicates disjunctively.
#[must_use]
pub fn any_of(preds: Vec<Predicate>) -> Predicate {
    Box::new(move |m| preds.iter().any(|p| p(m)))
}

/// Chains effects in order.
#[must_use]
pub fn in_sequence(effects: Vec<Effect>) -> Effect {
    Box::new(move |m| {
        for e in &effects {
            e(m);
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SanBuilder;

    #[test]
    fn combinators_compose() {
        let mut b = SanBuilder::new();
        let p = b.add_place("p", 1);
        let q = b.add_place("q", 0);
        b.add_activity(
            "noop",
            crate::model::Delay::exponential_rate(1.0),
            |_| true,
            |_| {},
        );
        let model = b.build();
        let m = model.initial_marking();

        let both = all_of(vec![
            Box::new(move |m: &Marking| m.tokens(p) == 1),
            Box::new(move |m: &Marking| m.tokens(q) == 0),
        ]);
        assert!(both(&m));

        let either = any_of(vec![
            Box::new(move |m: &Marking| m.tokens(p) == 9),
            Box::new(move |m: &Marking| m.tokens(q) == 0),
        ]);
        assert!(either(&m));

        let mut m2 = model.initial_marking();
        let seq = in_sequence(vec![
            Box::new(move |m: &mut Marking| m.add_tokens(q, 2)),
            Box::new(move |m: &mut Marking| m.remove_tokens(p, 1)),
        ]);
        seq(&mut m2);
        assert_eq!(m2.tokens(q), 2);
        assert_eq!(m2.tokens(p), 0);
    }

    #[test]
    fn empty_combinators() {
        let mut b = SanBuilder::new();
        let _p = b.add_place("p", 0);
        b.add_activity(
            "noop",
            crate::model::Delay::exponential_rate(1.0),
            |_| true,
            |_| {},
        );
        let model = b.build();
        let m = model.initial_marking();
        assert!(all_of(vec![])(&m), "vacuous conjunction is true");
        assert!(!any_of(vec![])(&m), "vacuous disjunction is false");
    }
}
