//! # oaq-san — stochastic activity networks and Markov solvers
//!
//! The paper computes the orbital-plane capacity distribution P(k) with
//! UltraSAN, a (closed-source) stochastic-activity-network tool supporting
//! deterministic activity times. This crate is the substitute substrate: a
//! SAN modeling formalism plus three solution methods, cross-validated
//! against each other by this workspace's tests and experiments:
//!
//! * [`model`] — places, markings, timed activities (exponential with
//!   marking-dependent rates, deterministic, Erlang) with enabling
//!   predicates and output gates ([`gate`]);
//! * [`sim`] — discrete-event simulation on the `oaq-sim` kernel
//!   (enabling-memory execution policy): transient runs and steady-state
//!   time-fraction estimation with batch-means error bounds;
//! * [`ctmc`] / [`solver`] — exact numerical solution for all-exponential
//!   models: reachability exploration, stationary distribution by direct
//!   linear solve, transient distribution by uniformization;
//! * [`phase_type`] — Erlang phase-type machinery for approximating
//!   deterministic activities inside the CTMC path;
//! * [`plane`] — the paper's orbital-plane spare-deployment model
//!   (scheduled restore every φ hours + threshold-triggered policy at
//!   k = η), ready to solve for P(k) — the Figure 7 experiment.
//!
//! ## Example
//!
//! A two-state failure/repair SAN solved both ways:
//!
//! ```
//! use oaq_san::model::{Delay, SanBuilder};
//! use oaq_san::sim::{SteadyStateOptions, steady_state_distribution};
//! use oaq_san::ctmc::Ctmc;
//!
//! let mut b = SanBuilder::new();
//! let up = b.add_place("up", 1);
//! let fail = Delay::exponential_rate(1.0);
//! let repair = Delay::exponential_rate(4.0);
//! b.add_activity("fail", fail, move |m| m.tokens(up) == 1, move |m| m.set_tokens(up, 0));
//! b.add_activity("repair", repair, move |m| m.tokens(up) == 0, move |m| m.set_tokens(up, 1));
//! let model = b.build();
//!
//! // Exact: availability = 4/5.
//! let ctmc = Ctmc::explore(&model, 100).unwrap();
//! let pi = ctmc.stationary().unwrap();
//! let avail: f64 = ctmc.expected_reward(&pi, |m| f64::from(m.tokens(up)));
//! assert!((avail - 0.8).abs() < 1e-10);
//!
//! // Simulated: agrees within noise.
//! let dist = steady_state_distribution(
//!     &model, |m| m.tokens(up) as usize, 2,
//!     &SteadyStateOptions { warmup: 100.0, horizon: 20_000.0, seed: 1 });
//! assert!((dist[1] - 0.8).abs() < 0.02);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ctmc;
pub mod gate;
pub mod model;
pub mod phase_type;
pub mod plane;
pub mod reward;
pub mod sim;
pub mod solver;

pub use ctmc::Ctmc;
pub use model::{ActivityId, Delay, Marking, PlaceId, SanBuilder, SanModel};
