//! Property-based tests of the measurement models and estimator.

use oaq_geoloc::emitter::Emitter;
use oaq_geoloc::scenario::PassScenario;
use oaq_geoloc::sequential::SequentialLocalizer;
use oaq_geoloc::wls::Observation;
use oaq_orbit::units::Degrees;
use oaq_orbit::GroundPoint;
use oaq_sim::SimRng;
use proptest::prelude::*;

fn emitter_strategy() -> impl Strategy<Value = Emitter> {
    (-55.0f64..55.0, -170.0f64..170.0, 1.0f64..10.0).prop_map(|(lat, lon, f_hundreds_mhz)| {
        Emitter::new(
            GroundPoint::from_degrees(Degrees(lat), Degrees(lon)),
            f_hundreds_mhz * 1e8,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn noiseless_prediction_matches_observation(e in emitter_strategy(), seed in any::<u64>()) {
        let scenario = PassScenario::reference(&e).with_sigma_hz(1e-9);
        let mut rng = SimRng::seed_from(seed);
        let truth = [
            e.position().lat().value(),
            e.position().lon().value(),
            e.frequency_hz(),
        ];
        for m in scenario.synthesize_pass(0, &mut rng) {
            prop_assert!((m.predict(&truth) - m.observed()).abs() < 1e-5);
        }
    }

    #[test]
    fn two_pass_estimate_lands_near_truth(e in emitter_strategy(), seed in any::<u64>()) {
        let scenario = PassScenario::reference(&e);
        let mut rng = SimRng::seed_from(seed);
        let mut loc = SequentialLocalizer::new(e.initial_guess_nearby(0.8));
        loc.add_pass(scenario.synthesize_pass(0, &mut rng));
        loc.add_pass(scenario.synthesize_pass(1, &mut rng));
        let est = loc.estimate().unwrap();
        prop_assert!(
            est.position_error_km(&e.position()) < 25.0,
            "error {} km at {:?}",
            est.position_error_km(&e.position()),
            e
        );
    }

    #[test]
    fn adding_a_pass_never_inflates_reported_error_much(
        e in emitter_strategy(),
        seed in any::<u64>(),
    ) {
        let scenario = PassScenario::reference(&e);
        let mut rng = SimRng::seed_from(seed);
        let mut loc = SequentialLocalizer::new(e.initial_guess_nearby(0.8));
        loc.add_pass(scenario.synthesize_pass(0, &mut rng));
        loc.add_pass(scenario.synthesize_pass(1, &mut rng));
        let two = loc.estimate().unwrap().error_radius_km();
        loc.add_pass(scenario.synthesize_pass(2, &mut rng));
        let three = loc.estimate().unwrap().error_radius_km();
        // More information cannot make the reported uncertainty much worse
        // (tiny slack for the state-dependent Jacobian).
        prop_assert!(three <= two * 1.05, "{two} -> {three}");
    }

    #[test]
    fn doppler_shift_bounded_by_orbital_speed(e in emitter_strategy(), seed in any::<u64>()) {
        let scenario = PassScenario::reference(&e).with_sigma_hz(1e-9);
        let mut rng = SimRng::seed_from(seed);
        let beta_max = 8.0 / 299_792.458; // LEO speed ~7.6 km/s, margin
        for m in scenario.synthesize_pass(0, &mut rng) {
            let shift = (m.observed() - e.frequency_hz()).abs();
            prop_assert!(shift <= e.frequency_hz() * beta_max);
        }
    }
}
