//! Property-based tests of the measurement models and estimator.

use oaq_geoloc::emitter::Emitter;
use oaq_geoloc::scenario::PassScenario;
use oaq_geoloc::sequential::SequentialLocalizer;
use oaq_geoloc::wls::Observation;
use oaq_orbit::units::Degrees;
use oaq_orbit::GroundPoint;
use oaq_sim::SimRng;
use proptest::prelude::*;

fn emitter_strategy() -> impl Strategy<Value = Emitter> {
    (-55.0f64..55.0, -170.0f64..170.0, 1.0f64..10.0).prop_map(|(lat, lon, f_hundreds_mhz)| {
        Emitter::new(
            GroundPoint::from_degrees(Degrees(lat), Degrees(lon)),
            f_hundreds_mhz * 1e8,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn noiseless_prediction_matches_observation(e in emitter_strategy(), seed in any::<u64>()) {
        let scenario = PassScenario::reference(&e).with_sigma_hz(1e-9);
        let mut rng = SimRng::seed_from(seed);
        let truth = [
            e.position().lat().value(),
            e.position().lon().value(),
            e.frequency_hz(),
        ];
        for m in scenario.synthesize_pass(0, &mut rng) {
            prop_assert!((m.predict(&truth) - m.observed()).abs() < 1e-5);
        }
    }

    #[test]
    fn two_pass_estimate_lands_near_truth(e in emitter_strategy(), seed in any::<u64>()) {
        let scenario = PassScenario::reference(&e);
        let mut rng = SimRng::seed_from(seed);
        let mut loc = SequentialLocalizer::new(e.initial_guess_nearby(0.8));
        loc.add_pass(scenario.synthesize_pass(0, &mut rng));
        loc.add_pass(scenario.synthesize_pass(1, &mut rng));
        let est = loc.estimate().unwrap();
        prop_assert!(
            est.position_error_km(&e.position()) < 25.0,
            "error {} km at {:?}",
            est.position_error_km(&e.position()),
            e
        );
    }

    #[test]
    fn adding_a_pass_never_inflates_reported_error_much(
        e in emitter_strategy(),
        seed in any::<u64>(),
    ) {
        let scenario = PassScenario::reference(&e);
        let mut rng = SimRng::seed_from(seed);
        let mut loc = SequentialLocalizer::new(e.initial_guess_nearby(0.8));
        loc.add_pass(scenario.synthesize_pass(0, &mut rng));
        loc.add_pass(scenario.synthesize_pass(1, &mut rng));
        let two = loc.estimate().unwrap().error_radius_km();
        loc.add_pass(scenario.synthesize_pass(2, &mut rng));
        let three = loc.estimate().unwrap().error_radius_km();
        // More information cannot make the reported uncertainty much worse
        // (tiny slack for the state-dependent Jacobian).
        prop_assert!(three <= two * 1.05, "{two} -> {three}");
    }

    #[test]
    fn doppler_shift_bounded_by_orbital_speed(e in emitter_strategy(), seed in any::<u64>()) {
        let scenario = PassScenario::reference(&e).with_sigma_hz(1e-9);
        let mut rng = SimRng::seed_from(seed);
        let beta_max = 8.0 / 299_792.458; // LEO speed ~7.6 km/s, margin
        for m in scenario.synthesize_pass(0, &mut rng) {
            let shift = (m.observed() - e.frequency_hz()).abs();
            prop_assert!(shift <= e.frequency_hz() * beta_max);
        }
    }

    #[test]
    fn analytic_jacobians_track_finite_differences(
        e in emitter_strategy(),
        seed in any::<u64>(),
        offset in 0.05f64..1.5,
    ) {
        // Doppler and TOA closed-form gradients vs the finite-difference
        // reference: ≤ 1e-6 relative, plus the FD scheme's own roundoff
        // floor ε·|f(x)|/step (which dominates only when a carrier-scale
        // prediction is differenced for a low-sensitivity component).
        let scenario = PassScenario::reference(&e);
        let mut rng = SimRng::seed_from(seed);
        let x = e.initial_guess_nearby(offset);
        let doppler = scenario.synthesize_pass(0, &mut rng);
        let toa = scenario.synthesize_toa_pass(1, 0.5, &mut rng);
        let check = |a: &[f64; 3], fd: &[f64; 3], fx: f64, label: &str|
            -> Result<(), TestCaseError> {
            for j in 0..3 {
                let floor = 8.0 * f64::EPSILON * fx.abs() / oaq_geoloc::wls::FD_STEPS[j];
                let tol = 1e-6 * a[j].abs().max(fd[j].abs()) + floor + 1e-9;
                prop_assert!(
                    (a[j] - fd[j]).abs() <= tol,
                    "{} [{}]: {} vs {}", label, j, a[j], fd[j]
                );
            }
            Ok(())
        };
        for m in &doppler {
            check(&m.jacobian_row(&x), &m.jacobian_row_fd(&x), m.predict(&x), "doppler")?;
        }
        for m in &toa {
            check(&m.jacobian_row(&x), &m.jacobian_row_fd(&x), m.predict(&x), "toa")?;
        }
    }

    #[test]
    fn fast_estimate_matches_heap_dyn_reference_bitwise(
        e in emitter_strategy(),
        seed in any::<u64>(),
    ) {
        // The monomorphized stack fast path vs the pre-PR heap/dyn
        // reference, over real measurement chains, bit for bit.
        let scenario = PassScenario::reference(&e);
        let mut rng_a = SimRng::seed_from(seed);
        let mut rng_b = SimRng::seed_from(seed);
        let mut fast = SequentialLocalizer::new(e.initial_guess_nearby(0.8));
        let mut heap = SequentialLocalizer::new(e.initial_guess_nearby(0.8));
        for pass in 0..2 {
            fast.add_pass(scenario.synthesize_pass(pass, &mut rng_a));
            heap.add_pass(scenario.synthesize_pass(pass, &mut rng_b));
        }
        let f = fast.estimate().unwrap();
        let h = heap.estimate_heap_dyn().unwrap();
        prop_assert_eq!(f.iterations, h.iterations);
        prop_assert_eq!(f.cost.to_bits(), h.cost.to_bits());
        for (a, b) in f.state.iter().zip(&h.state) {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "{} vs {}", a, b);
        }
        for i in 0..3 {
            for j in 0..3 {
                prop_assert_eq!(
                    f.covariance[(i, j)].to_bits(),
                    h.covariance[(i, j)].to_bits()
                );
            }
        }
    }

    #[test]
    fn incremental_estimates_agree_with_batch(
        e in emitter_strategy(),
        seed in any::<u64>(),
    ) {
        // Chain extensions through the information-filter path land within
        // a small fraction of the reported uncertainty of the batch answer.
        let scenario = PassScenario::reference(&e);
        let mut rng_a = SimRng::seed_from(seed);
        let mut rng_b = SimRng::seed_from(seed);
        let mut inc = SequentialLocalizer::new(e.initial_guess_nearby(0.8));
        let mut batch = SequentialLocalizer::new(e.initial_guess_nearby(0.8));
        // Pass 1 (cross-track offset) first: starting on the center-line
        // pass can leave the single-pass system outright singular.
        for pass in [1usize, 0, 2] {
            inc.add_pass(scenario.synthesize_pass(pass, &mut rng_a));
            batch.add_pass(scenario.synthesize_pass(pass, &mut rng_b));
            let i = inc.estimate_incremental().unwrap();
            let b = batch.estimate().unwrap();
            let d = i.position().great_circle_distance(&b.position()).value();
            prop_assert!(
                d <= 0.05 * b.error_radius_km().max(0.1),
                "pass {}: incremental drifted {} km (radius {})",
                pass, d, b.error_radius_km()
            );
        }
    }
}
