//! Satellite position/velocity states in earth-centered coordinates.

use oaq_orbit::geo::EARTH_RADIUS;
use oaq_orbit::orbit::CircularOrbit;
use oaq_orbit::units::{Km, Minutes, Radians};

use crate::MU_EARTH;

/// A satellite's instantaneous kinematic state: position (km) and velocity
/// (km/s), earth-centered.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SatelliteState {
    /// Position in km, earth-centered (x toward lon 0, z toward north pole).
    pub position_km: [f64; 3],
    /// Inertial velocity in km/s.
    pub velocity_km_s: [f64; 3],
}

/// The altitude a circular orbit of the given period must have (Kepler's
/// third law): `a = (µ (T/2π)²)^{1/3} − R`.
///
/// # Examples
///
/// ```
/// use oaq_geoloc::satstate::altitude_for_period;
/// use oaq_orbit::units::Minutes;
/// let h = altitude_for_period(Minutes(90.0));
/// assert!((h.value() - 282.0).abs() < 10.0); // ~280 km for a 90-min orbit
/// ```
#[must_use]
pub fn altitude_for_period(period: Minutes) -> Km {
    let t_s = period.value() * 60.0;
    let a = (MU_EARTH * (t_s / std::f64::consts::TAU).powi(2)).cbrt();
    Km(a - EARTH_RADIUS.value())
}

impl SatelliteState {
    /// Kinematic state of a satellite on `orbit` with initial phase
    /// `phase0`, at time `t`, flying at the Keplerian altitude implied by
    /// the orbit period.
    ///
    /// Earth rotation is ignored for the velocity (the Doppler contribution
    /// of earth surface rotation is second-order for LEO passes and the
    /// synthetic measurements and the estimator share the same model, which
    /// is what the estimator tests require).
    #[must_use]
    pub fn on_orbit(orbit: &CircularOrbit, phase0: Radians, t: Minutes) -> Self {
        let a = EARTH_RADIUS.value() + altitude_for_period(orbit.period()).value();
        let u = orbit.phase_at(phase0, t).value();
        let i = orbit.inclination().value();
        let raan = orbit.raan().value();
        // Position in the orbital plane, rotated by inclination then RAAN.
        let (su, cu) = u.sin_cos();
        let (si, ci) = i.sin_cos();
        let (sr, cr) = raan.sin_cos();
        let x_orb = [cu, su * ci, su * si];
        let position_km = [
            a * (x_orb[0] * cr - x_orb[1] * sr),
            a * (x_orb[0] * sr + x_orb[1] * cr),
            a * x_orb[2],
        ];
        // Velocity = d(position)/du · du/dt, |v| = 2πa/T.
        let rate = std::f64::consts::TAU / (orbit.period().value() * 60.0); // rad/s
        let dx_orb = [-su, cu * ci, cu * si];
        let velocity_km_s = [
            a * rate * (dx_orb[0] * cr - dx_orb[1] * sr),
            a * rate * (dx_orb[0] * sr + dx_orb[1] * cr),
            a * rate * dx_orb[2],
        ];
        SatelliteState {
            position_km,
            velocity_km_s,
        }
    }

    /// Slant range to a ground point given as an earth-centered position (km).
    #[must_use]
    pub fn range_to(&self, target_km: &[f64; 3]) -> f64 {
        let d = [
            self.position_km[0] - target_km[0],
            self.position_km[1] - target_km[1],
            self.position_km[2] - target_km[2],
        ];
        (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt()
    }

    /// Range rate (km/s) toward the target: the projection of the satellite
    /// velocity on the satellite→target line of sight. Negative while
    /// approaching.
    #[must_use]
    pub fn range_rate_to(&self, target_km: &[f64; 3]) -> f64 {
        let d = [
            self.position_km[0] - target_km[0],
            self.position_km[1] - target_km[1],
            self.position_km[2] - target_km[2],
        ];
        let r = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
        if r == 0.0 {
            return 0.0;
        }
        (self.velocity_km_s[0] * d[0] + self.velocity_km_s[1] * d[1] + self.velocity_km_s[2] * d[2])
            / r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oaq_orbit::units::Degrees;

    fn orbit() -> CircularOrbit {
        CircularOrbit::new(Degrees(85.0).to_radians(), Radians(0.2), Minutes(90.0))
            .with_earth_rotation(false)
    }

    #[test]
    fn radius_is_constant() {
        let o = orbit();
        let a = EARTH_RADIUS.value() + altitude_for_period(Minutes(90.0)).value();
        for i in 0..10 {
            let s = SatelliteState::on_orbit(&o, Radians(0.3), Minutes(i as f64 * 7.0));
            let r =
                (s.position_km[0].powi(2) + s.position_km[1].powi(2) + s.position_km[2].powi(2))
                    .sqrt();
            assert!((r - a).abs() < 1e-6);
        }
    }

    #[test]
    fn speed_matches_circular_orbit() {
        let o = orbit();
        let a = EARTH_RADIUS.value() + altitude_for_period(Minutes(90.0)).value();
        let expected = std::f64::consts::TAU * a / (90.0 * 60.0);
        let s = SatelliteState::on_orbit(&o, Radians(1.0), Minutes(13.0));
        let v =
            (s.velocity_km_s[0].powi(2) + s.velocity_km_s[1].powi(2) + s.velocity_km_s[2].powi(2))
                .sqrt();
        assert!((v - expected).abs() < 1e-9);
        // ~7.6 km/s for LEO.
        assert!((v - 7.6).abs() < 0.3, "LEO speed sanity: {v}");
    }

    #[test]
    fn velocity_is_tangential() {
        let o = orbit();
        let s = SatelliteState::on_orbit(&o, Radians(0.0), Minutes(5.0));
        let dot = s.position_km[0] * s.velocity_km_s[0]
            + s.position_km[1] * s.velocity_km_s[1]
            + s.position_km[2] * s.velocity_km_s[2];
        assert!(dot.abs() < 1e-6, "r·v = {dot} must vanish");
    }

    #[test]
    fn range_rate_sign_flips_at_closest_approach() {
        let o = orbit();
        // Target at the sub-satellite point of t = 10 min.
        let gp = o.subsatellite_point(Radians(0.0), Minutes(10.0));
        let u = gp.unit_vector();
        let target = [u[0] * 6371.0, u[1] * 6371.0, u[2] * 6371.0];
        let before = SatelliteState::on_orbit(&o, Radians(0.0), Minutes(8.0));
        let after = SatelliteState::on_orbit(&o, Radians(0.0), Minutes(12.0));
        assert!(before.range_rate_to(&target) < 0.0, "approaching");
        assert!(after.range_rate_to(&target) > 0.0, "receding");
    }

    #[test]
    fn subsatellite_point_agrees_with_orbit_crate() {
        let o = orbit();
        let s = SatelliteState::on_orbit(&o, Radians(0.7), Minutes(21.0));
        let from_state = oaq_orbit::GroundPoint::from_vector(s.position_km);
        let from_orbit = o.subsatellite_point(Radians(0.7), Minutes(21.0));
        assert!(from_state.central_angle(&from_orbit).value() < 1e-9);
    }

    #[test]
    fn altitude_for_longer_period_is_higher() {
        assert!(altitude_for_period(Minutes(100.0)) > altitude_for_period(Minutes(90.0)));
    }
}
