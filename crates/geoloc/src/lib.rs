//! # oaq-geoloc — RF-emitter geolocation by sequential localization
//!
//! The OAQ paper builds on the satellite-literature result (Levanon '98;
//! Chan & Towers '92) that measurements accumulated by satellites that
//! *successively* fly over an emitter support an iterative weighted
//! least-squares estimator, so each additional pass improves position
//! accuracy — the mechanism the paper calls **sequential localization** and
//! exploits for fault tolerance.
//!
//! This crate implements that machinery end to end:
//!
//! * [`emitter::Emitter`] — a ground RF source with an (unknown to the
//!   estimator) carrier frequency;
//! * [`satstate::SatelliteState`] — satellite position/velocity in
//!   earth-centered coordinates, derivable from an `oaq-orbit` circular
//!   orbit;
//! * [`doppler::DopplerMeasurement`] / [`toa::ToaMeasurement`] — noisy
//!   measurement models with synthetic generators (**substitution**: no real
//!   RF front-end is available, so physically-modeled synthetic measurements
//!   exercise the same estimator code path);
//! * [`wls`] — damped Gauss–Newton iterative weighted least squares over the
//!   state `[latitude, longitude, carrier frequency]`;
//! * [`sequential::SequentialLocalizer`] — accumulates passes and re-solves,
//!   exposing the error history that OAQ's termination condition TC-1
//!   (estimated error below threshold) consumes;
//! * [`accuracy`] — CEP and error-radius summaries from the WLS covariance.
//!
//! ## Example
//!
//! ```
//! use oaq_geoloc::emitter::Emitter;
//! use oaq_geoloc::scenario::PassScenario;
//! use oaq_geoloc::sequential::SequentialLocalizer;
//! use oaq_orbit::units::Degrees;
//! use oaq_sim::SimRng;
//!
//! let emitter = Emitter::new(
//!     oaq_orbit::GroundPoint::from_degrees(Degrees(30.0), Degrees(10.0)),
//!     400.0e6,
//! );
//! let mut rng = SimRng::seed_from(1);
//! let scenario = PassScenario::reference(&emitter);
//! let mut loc = SequentialLocalizer::new(emitter.initial_guess_nearby(1.0));
//! loc.add_pass(scenario.synthesize_pass(0, &mut rng));
//! let first = loc.estimate().expect("pass 1 converges");
//! loc.add_pass(scenario.synthesize_pass(1, &mut rng));
//! let second = loc.estimate().expect("pass 2 converges");
//! let e1 = first.position_error_km(&emitter.position());
//! let e2 = second.position_error_km(&emitter.position());
//! assert!(e2 < e1, "second pass must improve accuracy: {e1} -> {e2}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
pub mod batch;
pub mod doppler;
pub mod emitter;
pub mod error;
pub mod satstate;
pub mod scenario;
pub mod sequential;
pub mod toa;
pub mod wls;

pub use batch::{BatchObservation, BatchSolver, SoaColumns};
pub use emitter::Emitter;
pub use error::MeasurementError;
pub use sequential::SequentialLocalizer;
pub use wls::{Estimate, FdJacobian, InformationPrior, Observation, SolveError, WlsSolver};

/// Speed of light in km/s.
pub const SPEED_OF_LIGHT_KM_S: f64 = 299_792.458;

/// Earth gravitational parameter, km³/s².
pub const MU_EARTH: f64 = 398_600.441_8;
