//! Synthetic revisit scenarios: successive satellites of one plane flying
//! over an emitter.
//!
//! The frame convention: the earth is frozen (emitters have fixed
//! earth-centered positions) and the westward drift of successive ground
//! tracks that earth rotation would produce is modeled as a per-pass RAAN
//! shift of `ω_⊕ · Tr`. This is geometrically equivalent for the short
//! horizons of a geolocation episode and keeps the synthesizer and the
//! estimator in a single consistent frame.

use oaq_orbit::orbit::{CircularOrbit, EARTH_ROTATION_RATE};
use oaq_orbit::units::{Degrees, Minutes, Radians};
use oaq_sim::SimRng;

use crate::doppler::DopplerMeasurement;
use crate::emitter::Emitter;
use crate::satstate::SatelliteState;
use crate::toa::ToaMeasurement;

/// Generator of measurement batches ("passes") for successive revisits of an
/// emitter, the workload of the paper's sequential-localization mechanism.
///
/// See the crate-level example for end-to-end use.
#[derive(Debug, Clone)]
pub struct PassScenario {
    emitter: Emitter,
    inclination: Radians,
    period: Minutes,
    base_raan: Radians,
    phase_at_crossing: Radians,
    first_overflight: Minutes,
    revisit: Minutes,
    samples_per_pass: usize,
    window: Minutes,
    sigma_hz: f64,
}

impl PassScenario {
    /// A scenario matching the reference constellation in its underlapping
    /// regime: θ = 90 min, 85° inclination, revisits every Tr = 9 min,
    /// 9 Doppler samples per pass over ±2 min, 1 Hz measurement noise.
    #[must_use]
    pub fn reference(emitter: &Emitter) -> Self {
        PassScenario::new(
            emitter,
            Degrees(85.0).to_radians(),
            Minutes(90.0),
            Minutes(10.0),
            Minutes(9.0),
        )
    }

    /// Creates a scenario with explicit orbit geometry and revisit interval.
    ///
    /// The base orbit is positioned so that the first satellite crosses the
    /// emitter's latitude directly over the emitter at `first_overflight`.
    ///
    /// # Panics
    ///
    /// Panics if the emitter latitude exceeds the inclination (no ascending
    /// crossing exists) or the revisit interval is non-positive.
    #[must_use]
    pub fn new(
        emitter: &Emitter,
        inclination: Radians,
        period: Minutes,
        first_overflight: Minutes,
        revisit: Minutes,
    ) -> Self {
        assert!(revisit.value() > 0.0, "revisit interval must be positive");
        let lat = emitter.position().lat().value();
        let i = inclination.value();
        let sin_u = lat.sin() / i.sin();
        assert!(
            sin_u.abs() <= 1.0,
            "emitter latitude unreachable at this inclination"
        );
        let u_e = sin_u.asin();
        // Longitude of the ascending-pass crossing relative to the node.
        let dlon = (i.cos() * u_e.sin()).atan2(u_e.cos());
        let base_raan = Radians(emitter.position().lon().value() - dlon).wrap_two_pi();
        PassScenario {
            emitter: *emitter,
            inclination,
            period,
            base_raan,
            phase_at_crossing: Radians(u_e),
            first_overflight,
            revisit,
            samples_per_pass: 9,
            window: Minutes(2.0),
            sigma_hz: 1.0,
        }
    }

    /// Overrides the number of samples per pass.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn with_samples_per_pass(mut self, n: usize) -> Self {
        assert!(n >= 2, "need at least two samples per pass");
        self.samples_per_pass = n;
        self
    }

    /// Overrides the Doppler noise level.
    ///
    /// # Panics
    ///
    /// Panics if `sigma_hz <= 0`.
    #[must_use]
    pub fn with_sigma_hz(mut self, sigma_hz: f64) -> Self {
        assert!(sigma_hz > 0.0, "sigma must be positive");
        self.sigma_hz = sigma_hz;
        self
    }

    /// The emitter this scenario observes.
    #[must_use]
    pub fn emitter(&self) -> &Emitter {
        &self.emitter
    }

    /// When pass `j` crosses the emitter latitude.
    #[must_use]
    pub fn overflight_time(&self, pass: usize) -> Minutes {
        Minutes(self.first_overflight.value() + self.revisit.value() * pass as f64)
    }

    /// The orbit of the satellite performing pass `j`: shared plane geometry
    /// with the per-pass RAAN drift described in the module docs.
    #[must_use]
    pub fn pass_orbit(&self, pass: usize) -> CircularOrbit {
        let drift = EARTH_ROTATION_RATE * self.revisit.value() * pass as f64;
        CircularOrbit::new(
            self.inclination,
            Radians(self.base_raan.value() - drift).wrap_two_pi(),
            self.period,
        )
        .with_earth_rotation(false)
    }

    fn pass_phase0(&self, pass: usize) -> Radians {
        let orbit = self.pass_orbit(pass);
        Radians(
            self.phase_at_crossing.value()
                - orbit.mean_motion() * self.overflight_time(pass).value(),
        )
        .wrap_two_pi()
    }

    /// Satellite state during pass `j` at absolute time `t`.
    #[must_use]
    pub fn satellite_state(&self, pass: usize, t: Minutes) -> SatelliteState {
        SatelliteState::on_orbit(&self.pass_orbit(pass), self.pass_phase0(pass), t)
    }

    /// Sample instants of pass `j` (uniform over the overflight window).
    #[must_use]
    pub fn sample_times(&self, pass: usize) -> Vec<Minutes> {
        let t0 = self.overflight_time(pass).value() - self.window.value();
        let span = 2.0 * self.window.value();
        (0..self.samples_per_pass)
            .map(|s| Minutes(t0 + span * s as f64 / (self.samples_per_pass - 1) as f64))
            .collect()
    }

    /// Synthesizes the Doppler measurements of pass `j`.
    #[must_use]
    pub fn synthesize_pass(&self, pass: usize, rng: &mut SimRng) -> Vec<DopplerMeasurement> {
        self.sample_times(pass)
            .into_iter()
            .map(|t| {
                DopplerMeasurement::synthesize(
                    self.satellite_state(pass, t),
                    &self.emitter,
                    self.sigma_hz,
                    rng,
                )
            })
            .collect()
    }

    /// Synthesizes a *simultaneous dual-coverage* measurement set: two
    /// satellites on cross-track-offset orbits observe the emitter over the
    /// same time window (the paper's QoS level 3 situation, where
    /// overlapped footprints co-visit the target). The second satellite
    /// flies the same plane geometry shifted by `cross_track` radians of
    /// RAAN, trailing by `lag` minutes.
    ///
    /// # Panics
    ///
    /// Panics if `pass` timing underflows the lag (use small lags).
    #[must_use]
    pub fn synthesize_simultaneous_pair(
        &self,
        pass: usize,
        cross_track: Radians,
        lag: Minutes,
        rng: &mut SimRng,
    ) -> Vec<DopplerMeasurement> {
        let mut out = self.synthesize_pass(pass, rng);
        let partner_orbit = CircularOrbit::new(
            self.inclination,
            Radians(self.pass_orbit(pass).raan().value() - cross_track.value()).wrap_two_pi(),
            self.period,
        )
        .with_earth_rotation(false);
        let partner_phase = Radians(
            self.phase_at_crossing.value()
                - partner_orbit.mean_motion() * (self.overflight_time(pass).value() + lag.value()),
        )
        .wrap_two_pi();
        for t in self.sample_times(pass) {
            let state = SatelliteState::on_orbit(&partner_orbit, partner_phase, t);
            out.push(DopplerMeasurement::synthesize(
                state,
                &self.emitter,
                self.sigma_hz,
                rng,
            ));
        }
        out
    }

    /// Synthesizes slant-range (TOA) measurements of pass `j` with the given
    /// range noise.
    #[must_use]
    pub fn synthesize_toa_pass(
        &self,
        pass: usize,
        sigma_km: f64,
        rng: &mut SimRng,
    ) -> Vec<ToaMeasurement> {
        self.sample_times(pass)
            .into_iter()
            .map(|t| {
                ToaMeasurement::synthesize(
                    self.satellite_state(pass, t),
                    &self.emitter,
                    sigma_km,
                    rng,
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wls::Observation;
    use oaq_orbit::GroundPoint;

    fn emitter() -> Emitter {
        Emitter::new(
            GroundPoint::from_degrees(Degrees(30.0), Degrees(15.0)),
            400.0e6,
        )
    }

    #[test]
    fn pass_zero_overflies_the_emitter() {
        let e = emitter();
        let s = PassScenario::reference(&e);
        let at_overflight = s.satellite_state(0, s.overflight_time(0));
        let sub = GroundPoint::from_vector(at_overflight.position_km);
        let miss = sub.great_circle_distance(&e.position()).value();
        assert!(miss < 1.0, "pass 0 closest approach misses by {miss} km");
    }

    #[test]
    fn later_passes_drift_cross_track() {
        let e = emitter();
        let s = PassScenario::reference(&e);
        let miss = |j: usize| {
            let st = s.satellite_state(j, s.overflight_time(j));
            GroundPoint::from_vector(st.position_km)
                .great_circle_distance(&e.position())
                .value()
        };
        assert!(miss(1) > miss(0));
        assert!(miss(2) > miss(1));
        // ω_⊕ · 9 min ≈ 2.26° ≈ 250 km at the equator, less at 30°.
        assert!(miss(1) > 100.0 && miss(1) < 400.0, "drift {} km", miss(1));
    }

    #[test]
    fn sample_times_span_the_window() {
        let s = PassScenario::reference(&emitter());
        let ts = s.sample_times(0);
        assert_eq!(ts.len(), 9);
        assert!((ts[0].value() - 8.0).abs() < 1e-9);
        assert!((ts[8].value() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn doppler_sweeps_from_blue_to_red() {
        let e = emitter();
        let s = PassScenario::reference(&e).with_sigma_hz(1e-6);
        let mut rng = SimRng::seed_from(5);
        let pass = s.synthesize_pass(0, &mut rng);
        let first = pass.first().unwrap().observed();
        let last = pass.last().unwrap().observed();
        assert!(first > e.frequency_hz(), "approaching at window start");
        assert!(last < e.frequency_hz(), "receding at window end");
    }

    #[test]
    fn toa_minimum_near_overflight() {
        let e = emitter();
        let s = PassScenario::reference(&e);
        let mut rng = SimRng::seed_from(6);
        let pass = s.synthesize_toa_pass(0, 1e-6, &mut rng);
        let ranges: Vec<f64> = pass.iter().map(crate::wls::Observation::observed).collect();
        let min_idx = ranges
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(min_idx, 4, "range minimum at the window center");
    }

    #[test]
    fn simultaneous_pair_doubles_the_measurements() {
        let e = emitter();
        let s = PassScenario::reference(&e);
        let mut rng = SimRng::seed_from(9);
        let pair =
            s.synthesize_simultaneous_pair(0, Degrees(3.0).to_radians(), Minutes(0.5), &mut rng);
        assert_eq!(pair.len(), 18, "both satellites' samples");
    }

    #[test]
    fn simultaneous_dual_beats_single_pass_accuracy() {
        // The physical basis of QoS level 3: co-visiting satellites give
        // instant geometric diversity, collapsing the single-pass ambiguity
        // without waiting for a revisit.
        use crate::sequential::SequentialLocalizer;
        let e = emitter();
        let s = PassScenario::reference(&e);
        let mut rng = SimRng::seed_from(10);

        let mut single = SequentialLocalizer::new(e.initial_guess_nearby(0.8));
        single.add_pass(s.synthesize_pass(0, &mut rng));
        let single_err = single.estimate().unwrap().error_radius_km();

        let mut dual = SequentialLocalizer::new(e.initial_guess_nearby(0.8));
        dual.add_pass(s.synthesize_simultaneous_pair(
            0,
            Degrees(3.0).to_radians(),
            Minutes(0.5),
            &mut rng,
        ));
        let dual_err = dual.estimate().unwrap().error_radius_km();
        assert!(
            dual_err < single_err / 10.0,
            "simultaneous dual {dual_err} must crush single {single_err}"
        );
    }

    #[test]
    #[should_panic(expected = "unreachable")]
    fn polar_emitter_with_low_inclination_rejected() {
        let e = Emitter::new(
            GroundPoint::from_degrees(Degrees(80.0), Degrees(0.0)),
            100.0e6,
        );
        let _ = PassScenario::new(
            &e,
            Degrees(45.0).to_radians(),
            Minutes(90.0),
            Minutes(5.0),
            Minutes(9.0),
        );
    }
}
