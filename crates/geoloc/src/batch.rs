//! Structure-of-arrays batched WLS: many independent emitter tracks per
//! solve call.
//!
//! The many-emitter tracking workload solves thousands of small (3-state)
//! WLS problems per step. Solving them one [`crate::wls::WlsSolver::solve_obs`]
//! call at a time leaves two costs on the table:
//!
//! * every `predict`/`jacobian_row` call recomputes the trial-state
//!   geometry (trig of the hypothesized latitude/longitude) even though it
//!   is identical for all observations of a track at a given trial state —
//!   [`BatchObservation`] hoists it to once per (track, trial state);
//! * residuals, weights, and Jacobian rows live in short-lived per-solve
//!   allocations — [`BatchSolver`] stores them as flat structure-of-arrays
//!   columns over *all* tracks (CSR offsets delimiting each track's range),
//!   reused across calls, so the inner loops are branch-free passes over
//!   contiguous `f64` slices the compiler can autovectorize.
//!
//! ## Bit-identity contract
//!
//! Per track, [`BatchSolver::solve_all`] performs exactly the operations of
//! [`crate::wls::WlsSolver::solve_obs`] in exactly the same order: the
//! hoisted kernels reproduce the un-hoisted ones bit for bit (asserted by
//! the Doppler tests), weights are `1/σ²` computed once instead of per
//! iteration (a pure function of σ, so the same value), and the
//! accumulation order of the normal equations per observation is unchanged.
//! Batched results are therefore **bit-identical** to the looped solver —
//! asserted by the property tests here and re-asserted in-bench by
//! `geoloc_batch` (E22).

use oaq_linalg::{SCholesky, SMat};

use crate::wls::{Estimate, Observation, SolveError, WlsSolver, STATE_DIM};

/// An [`Observation`] whose prediction and gradient split into a
/// per-trial-state part (the "geometry", shared by every observation of a
/// track) and a cheap per-observation part.
///
/// Contract: for any state `x`,
/// `predict_hoisted(&Self::geom(&x), &x)` must equal `predict(&x)` **bit
/// for bit**, and likewise for the Jacobian row — the batch solver relies
/// on this to stay bit-identical to the looped path.
pub trait BatchObservation: Observation + Sized {
    /// The hoisted per-trial-state geometry.
    type Geom;

    /// The structure-of-arrays store for this observation type's
    /// per-observation constants (the batch solver's hot-loop input).
    type Soa: SoaColumns<Self, Geom = Self::Geom>;

    /// Computes the shared geometry at trial state `x`.
    fn geom(x: &[f64; STATE_DIM]) -> Self::Geom;

    /// [`Observation::predict`] with the geometry precomputed.
    fn predict_hoisted(&self, geom: &Self::Geom, x: &[f64; STATE_DIM]) -> f64;

    /// [`Observation::jacobian_row`] with the geometry precomputed.
    fn jacobian_row_hoisted(&self, geom: &Self::Geom, x: &[f64; STATE_DIM]) -> [f64; STATE_DIM];
}

/// Structure-of-arrays storage for one observation type: the constants of
/// each observation decomposed into contiguous `f64` columns, plus the two
/// column kernels the batched solver's inner loop runs over them.
///
/// The kernels are where the SoA layout pays: each output element is an
/// independent element-wise function of the columns (no cross-element
/// accumulation), so the compiler can autovectorize the `sqrt`/`div`
/// chains that dominate the per-observation cost. Contract: element `k` of
/// `predict_into` must equal `predict_hoisted` of observation `k` **bit
/// for bit** (likewise `jacobian_into` vs `jacobian_row_hoisted`) — IEEE
/// element-wise SIMD lanes are bitwise identical to scalar ops, so
/// vectorization never breaks the batch/looped identity.
pub trait SoaColumns<O>: Clone + Default + std::fmt::Debug {
    /// The hoisted per-trial-state geometry (same as the observation's).
    type Geom;

    /// Clears all columns, keeping capacity.
    fn clear(&mut self);

    /// Appends one observation's constants to the columns.
    fn push(&mut self, o: &O);

    /// Writes `predict_hoisted(obs[k], geom, x)` to `out[k - lo]` for
    /// `k` in `lo..hi`.
    fn predict_into(
        &self,
        lo: usize,
        hi: usize,
        geom: &Self::Geom,
        x: &[f64; STATE_DIM],
        out: &mut [f64],
    );

    /// Writes `jacobian_row_hoisted(obs[k], geom, x)` to
    /// `(row_lat, row_lon, row_f0)[k - lo]` for `k` in `lo..hi`.
    #[allow(clippy::too_many_arguments)]
    fn jacobian_into(
        &self,
        lo: usize,
        hi: usize,
        geom: &Self::Geom,
        x: &[f64; STATE_DIM],
        row_lat: &mut [f64],
        row_lon: &mut [f64],
        row_f0: &mut [f64],
    );
}

/// Batched WLS solver over many independent tracks.
///
/// Push one track per emitter ([`BatchSolver::push_track`]), then
/// [`BatchSolver::solve_all`]. The solver owns its scratch; reuse one
/// instance across steps ([`BatchSolver::clear`]) to amortize allocation.
///
/// ## Memory layout
///
/// ```text
///             track 0      track 1    track 2
///           ┌───────────┬───────────┬─────────┐
/// soa       │ ········· │ ········· │ ······· │   O::Soa kinematic columns
/// observed  │ y y y y y │ y y y y y │ y y y y │ ┐
/// weight    │ w w w w w │ w w w w w │ w w w w │ │ SoA columns,
/// pred      │ p p p p p │ p p p p p │ p p p p │ │ contiguous across
/// resid     │ r r r r r │ r r r r r │ r r r r │ │ tracks, reused
/// row_lat   │ j j j j j │ j j j j j │ j j j j │ │ across solve calls
/// row_lon   │ j j j j j │ j j j j j │ j j j j │ │
/// row_f0    │ j j j j j │ j j j j j │ j j j j │ ┘
///           └───────────┴───────────┴─────────┘
/// offsets:    0           5           10        14   (CSR)
/// ```
#[derive(Debug, Clone)]
pub struct BatchSolver<O: BatchObservation> {
    solver: WlsSolver,
    /// The observations' per-type constants as SoA columns.
    soa: O::Soa,
    /// SoA columns of the observations (len = total observation count).
    observed: Vec<f64>,
    weight: Vec<f64>,
    /// CSR delimiters: track `e` owns observations `offsets[e]..offsets[e+1]`.
    offsets: Vec<usize>,
    /// Per-track initial states.
    x0: Vec<[f64; STATE_DIM]>,
    // Scratch columns, sized lazily by solve_all and reused across calls.
    pred: Vec<f64>,
    resid: Vec<f64>,
    resid_trial: Vec<f64>,
    row_lat: Vec<f64>,
    row_lon: Vec<f64>,
    row_f0: Vec<f64>,
}

impl<O: BatchObservation> Default for BatchSolver<O> {
    fn default() -> Self {
        Self::new(WlsSolver::new())
    }
}

impl<O: BatchObservation> BatchSolver<O> {
    /// Creates an empty batch sharing the given solver's configuration
    /// (iteration budget, tolerance, damping).
    #[must_use]
    pub fn new(solver: WlsSolver) -> Self {
        BatchSolver {
            solver,
            soa: O::Soa::default(),
            observed: Vec::new(),
            weight: Vec::new(),
            offsets: vec![0],
            x0: Vec::new(),
            pred: Vec::new(),
            resid: Vec::new(),
            resid_trial: Vec::new(),
            row_lat: Vec::new(),
            row_lon: Vec::new(),
            row_f0: Vec::new(),
        }
    }

    /// Removes all tracks, keeping the allocated capacity.
    pub fn clear(&mut self) {
        self.soa.clear();
        self.observed.clear();
        self.weight.clear();
        self.offsets.clear();
        self.offsets.push(0);
        self.x0.clear();
    }

    /// Number of tracks currently queued.
    #[must_use]
    pub fn tracks(&self) -> usize {
        self.x0.len()
    }

    /// Total observation count across all tracks.
    #[must_use]
    pub fn observations(&self) -> usize {
        self.observed.len()
    }

    /// True when no tracks are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.x0.is_empty()
    }

    /// Appends one track: its initial state and all its observations.
    /// Returns the track's index within the batch (its slot in the
    /// [`BatchSolver::solve_all`] result).
    pub fn push_track(
        &mut self,
        x0: [f64; STATE_DIM],
        observations: impl IntoIterator<Item = O>,
    ) -> usize {
        for o in observations {
            self.observed.push(o.observed());
            let w = o.weight();
            debug_assert!(
                w.is_finite() && w > 0.0,
                "observation weight must be positive and finite (is sigma > 0?)"
            );
            self.weight.push(w);
            self.soa.push(&o);
        }
        self.offsets.push(self.observed.len());
        self.x0.push(x0);
        self.x0.len() - 1
    }

    /// Solves every queued track, returning one result per track in push
    /// order. Tracks are independent: a degenerate track yields its error
    /// in its slot without disturbing the others.
    pub fn solve_all(&mut self) -> Vec<Result<Estimate, SolveError>> {
        let n = self.observed.len();
        self.pred.resize(n, 0.0);
        self.resid.resize(n, 0.0);
        self.resid_trial.resize(n, 0.0);
        self.row_lat.resize(n, 0.0);
        self.row_lon.resize(n, 0.0);
        self.row_f0.resize(n, 0.0);
        (0..self.x0.len()).map(|e| self.solve_track(e)).collect()
    }

    /// One track through the damped Gauss–Newton core: exactly the
    /// operations of `WlsSolver::solve_core` (prior-less path) in the same
    /// order, with the trial-state geometry hoisted and the residual/row
    /// buffers taken from the flat columns.
    fn solve_track(&mut self, e: usize) -> Result<Estimate, SolveError> {
        let (lo, hi) = (self.offsets[e], self.offsets[e + 1]);
        if hi - lo < STATE_DIM {
            return Err(SolveError::Underdetermined {
                observations: hi - lo,
            });
        }
        let solver = self.solver;
        let soa = &self.soa;
        let observed = &self.observed[lo..hi];
        let weight = &self.weight[lo..hi];
        let pred = &mut self.pred[lo..hi];
        let (mut resid, mut resid_trial) = (
            &mut self.resid[lo..hi] as &mut [f64],
            &mut self.resid_trial[lo..hi] as &mut [f64],
        );
        let row_lat = &mut self.row_lat[lo..hi];
        let row_lon = &mut self.row_lon[lo..hi];
        let row_f0 = &mut self.row_f0[lo..hi];
        let m = hi - lo;

        // cost_into with the geometry hoisted: the predictions come from
        // the vectorizable column kernel, then residual and cost follow in
        // solve_core's summation order.
        let cost_into =
            |x: &[f64; STATE_DIM], geom: &O::Geom, resid: &mut [f64], pred: &mut [f64]| -> f64 {
                soa.predict_into(lo, hi, geom, x, pred);
                let mut total = 0.0;
                for k in 0..m {
                    let r = observed[k] - pred[k];
                    resid[k] = r;
                    total += weight[k] * r * r;
                }
                total
            };

        let mut x = self.x0[e];
        let mut lambda = solver.initial_damping;
        let mut geom = O::geom(&x);
        let mut cost = cost_into(&x, &geom, resid, pred);
        let mut iterations = 0;
        let mut converged = false;
        let mut info = SMat::<STATE_DIM>::zeros();
        let mut last_info: Option<SMat<STATE_DIM>> = None;

        while iterations < solver.max_iterations && !converged {
            iterations += 1;
            // Fill the Jacobian columns (the autovectorizable pass), then
            // accumulate the normal equations in solve_core's
            // per-observation order.
            soa.jacobian_into(lo, hi, &geom, &x, row_lat, row_lon, row_f0);
            let mut jtwr = [0.0; STATE_DIM];
            info.set_zero();
            for k in 0..m {
                let row = [row_lat[k], row_lon[k], row_f0[k]];
                let (w, r) = (weight[k], resid[k]);
                for a in 0..STATE_DIM {
                    jtwr[a] += w * row[a] * r;
                    for b in 0..STATE_DIM {
                        info[(a, b)] += w * row[a] * row[b];
                    }
                }
            }
            last_info = Some(info);

            // Levenberg–Marquardt inner loop, unchanged from solve_core.
            let mut accepted = false;
            for _ in 0..12 {
                let mut damped = info;
                for d in 0..STATE_DIM {
                    damped[(d, d)] += lambda * info[(d, d)].max(1e-30);
                }
                let delta = match SCholesky::factor(&damped) {
                    Ok(ch) => ch.solve(&jtwr),
                    Err(err) => {
                        if lambda > 1e8 {
                            return Err(SolveError::Degenerate(err));
                        }
                        lambda *= 10.0;
                        continue;
                    }
                };
                let mut x_new = x;
                for (xi, di) in x_new.iter_mut().zip(&delta) {
                    *xi += di;
                }
                x_new[0] = x_new[0].clamp(
                    -std::f64::consts::FRAC_PI_2 + 1e-9,
                    std::f64::consts::FRAC_PI_2 - 1e-9,
                );
                let geom_new = O::geom(&x_new);
                let new_cost = cost_into(&x_new, &geom_new, resid_trial, pred);
                if new_cost <= cost {
                    let step = (delta[0].powi(2) + delta[1].powi(2)).sqrt()
                        + delta[2].abs() / x[2].abs().max(1.0);
                    x = x_new;
                    geom = geom_new;
                    cost = new_cost;
                    std::mem::swap(&mut resid, &mut resid_trial);
                    lambda = (lambda * 0.3).max(1e-12);
                    accepted = true;
                    if step < solver.step_tolerance {
                        converged = true;
                    }
                    break;
                }
                lambda *= 10.0;
            }
            if !accepted {
                break;
            }
        }

        let info = last_info.expect("at least one iteration ran");
        let covariance = WlsSolver::covariance_from_sinfo(&info)?;
        Ok(Estimate {
            state: x,
            covariance,
            cost,
            iterations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doppler::DopplerMeasurement;
    use crate::emitter::Emitter;
    use crate::scenario::PassScenario;
    use oaq_orbit::units::Degrees;
    use oaq_orbit::GroundPoint;
    use oaq_sim::SimRng;
    use proptest::prelude::*;

    fn track(
        lat_deg: f64,
        lon_deg: f64,
        passes: usize,
        seed: u64,
    ) -> ([f64; STATE_DIM], Vec<DopplerMeasurement>) {
        let emitter = Emitter::new(
            GroundPoint::from_degrees(Degrees(lat_deg), Degrees(lon_deg)),
            400.0e6,
        );
        let scenario = PassScenario::reference(&emitter);
        let mut rng = SimRng::seed_from(seed);
        let mut obs = Vec::new();
        for pass in 0..passes {
            obs.extend(scenario.synthesize_pass(pass, &mut rng));
        }
        (emitter.initial_guess_nearby(1.0), obs)
    }

    fn assert_estimates_bit_identical(batched: &Estimate, looped: &Estimate) {
        assert_eq!(batched.iterations, looped.iterations);
        assert_eq!(batched.cost.to_bits(), looped.cost.to_bits());
        for (b, l) in batched.state.iter().zip(&looped.state) {
            assert_eq!(b.to_bits(), l.to_bits(), "{b} vs {l}");
        }
        for i in 0..STATE_DIM {
            for j in 0..STATE_DIM {
                assert_eq!(
                    batched.covariance[(i, j)].to_bits(),
                    looped.covariance[(i, j)].to_bits()
                );
            }
        }
    }

    #[test]
    fn batched_solve_is_bit_identical_to_looped() {
        let solver = WlsSolver::new();
        let mut batch = BatchSolver::new(solver);
        let specs = [
            (30.0, 10.0, 2, 41u64),
            (-12.0, 150.0, 3, 42),
            (55.0, -80.0, 1, 43),
            (0.5, 0.0, 4, 44),
        ];
        let mut tracks = Vec::new();
        for (lat, lon, passes, seed) in specs {
            let (x0, obs) = track(lat, lon, passes, seed);
            batch.push_track(x0, obs.iter().copied());
            tracks.push((x0, obs));
        }
        let results = batch.solve_all();
        assert_eq!(results.len(), tracks.len());
        for ((x0, obs), batched) in tracks.iter().zip(&results) {
            let looped = solver.solve_obs(obs, *x0);
            match (batched, &looped) {
                (Ok(b), Ok(l)) => assert_estimates_bit_identical(b, l),
                (b, l) => panic!("outcome mismatch: {b:?} vs {l:?}"),
            }
        }
    }

    #[test]
    fn underdetermined_track_errors_without_disturbing_neighbors() {
        let solver = WlsSolver::new();
        let (x0, obs) = track(30.0, 10.0, 2, 7);
        let mut batch = BatchSolver::new(solver);
        batch.push_track(x0, obs[..2].iter().copied());
        batch.push_track(x0, obs.iter().copied());
        let results = batch.solve_all();
        assert!(matches!(
            results[0],
            Err(SolveError::Underdetermined { observations: 2 })
        ));
        let looped = solver.solve_obs(&obs, x0).unwrap();
        assert_estimates_bit_identical(results[1].as_ref().unwrap(), &looped);
    }

    #[test]
    fn clear_reuses_capacity_and_resets_tracks() {
        let (x0, obs) = track(30.0, 10.0, 1, 3);
        let mut batch = BatchSolver::new(WlsSolver::new());
        batch.push_track(x0, obs.iter().copied());
        assert_eq!(batch.tracks(), 1);
        assert_eq!(batch.observations(), obs.len());
        batch.clear();
        assert!(batch.is_empty());
        assert_eq!(batch.observations(), 0);
        batch.push_track(x0, obs.iter().copied());
        let r = batch.solve_all();
        let looped = WlsSolver::new().solve_obs(&obs, x0).unwrap();
        assert_estimates_bit_identical(r[0].as_ref().unwrap(), &looped);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn random_batches_agree_with_looped_solver(
            seed in any::<u64>(),
            specs in prop::collection::vec(
                (-55.0f64..55.0, -170.0f64..170.0, 1usize..4),
                1..6,
            ),
        ) {
            let solver = WlsSolver::new();
            let mut batch = BatchSolver::new(solver);
            let mut tracks = Vec::new();
            for (i, (lat, lon, passes)) in specs.iter().enumerate() {
                let (x0, obs) = track(*lat, *lon, *passes, seed.wrapping_add(i as u64));
                batch.push_track(x0, obs.iter().copied());
                tracks.push((x0, obs));
            }
            let results = batch.solve_all();
            for ((x0, obs), batched) in tracks.iter().zip(&results) {
                match (batched, solver.solve_obs(obs, *x0)) {
                    (Ok(b), Ok(l)) => {
                        // Bit identity is the contract; it subsumes the
                        // issue's ≤1e-12 km agreement bound.
                        prop_assert_eq!(b.cost.to_bits(), l.cost.to_bits());
                        prop_assert_eq!(b.iterations, l.iterations);
                        for (bs, ls) in b.state.iter().zip(&l.state) {
                            prop_assert_eq!(bs.to_bits(), ls.to_bits());
                        }
                        prop_assert_eq!(
                            b.error_radius_km().to_bits(),
                            l.error_radius_km().to_bits()
                        );
                    }
                    (Err(b), Err(l)) => prop_assert_eq!(format!("{b}"), format!("{l}")),
                    (b, l) => prop_assert!(false, "outcome mismatch: {:?} vs {:?}", b, l),
                }
            }
        }
    }
}
