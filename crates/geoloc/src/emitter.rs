//! Ground RF emitters.

use oaq_orbit::geo::{GroundPoint, EARTH_RADIUS};
use oaq_orbit::units::{Degrees, Radians};

/// A stationary ground RF source whose position (and carrier frequency) the
/// constellation estimates.
///
/// # Examples
///
/// ```
/// use oaq_geoloc::Emitter;
/// use oaq_orbit::{GroundPoint, Degrees};
/// let e = Emitter::new(GroundPoint::from_degrees(Degrees(30.0), Degrees(0.0)), 400.0e6);
/// assert_eq!(e.frequency_hz(), 400.0e6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Emitter {
    position: GroundPoint,
    frequency_hz: f64,
}

impl Emitter {
    /// Creates an emitter at `position` transmitting at `frequency_hz`.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is not strictly positive and finite.
    #[must_use]
    pub fn new(position: GroundPoint, frequency_hz: f64) -> Self {
        assert!(
            frequency_hz.is_finite() && frequency_hz > 0.0,
            "frequency must be positive"
        );
        Emitter {
            position,
            frequency_hz,
        }
    }

    /// True position.
    #[must_use]
    pub fn position(&self) -> GroundPoint {
        self.position
    }

    /// True carrier frequency in Hz.
    #[must_use]
    pub fn frequency_hz(&self) -> f64 {
        self.frequency_hz
    }

    /// Earth-centered position vector in km.
    #[must_use]
    pub fn position_ecef_km(&self) -> [f64; 3] {
        let u = self.position.unit_vector();
        [
            u[0] * EARTH_RADIUS.value(),
            u[1] * EARTH_RADIUS.value(),
            u[2] * EARTH_RADIUS.value(),
        ]
    }

    /// A plausible initial state-vector guess `offset_deg` degrees away from
    /// the true position (what a coarse single-footprint detection provides:
    /// "somewhere inside this footprint").
    ///
    /// The frequency component of the guess is the nominal band center,
    /// deliberately offset from the true carrier.
    #[must_use]
    pub fn initial_guess_nearby(&self, offset_deg: f64) -> [f64; 3] {
        let lat = self.position.lat().to_degrees().value() + offset_deg;
        let lon = self.position.lon().to_degrees().value() + offset_deg;
        let p = GroundPoint::from_degrees(Degrees(lat.clamp(-89.0, 89.0)), Degrees(lon));
        [
            p.lat().value(),
            p.lon().value(),
            self.frequency_hz * (1.0 - 2e-7),
        ]
    }

    /// Interprets a state vector `[lat, lon, f0]` as a ground point.
    ///
    /// # Panics
    ///
    /// Panics if the latitude component is out of range (see
    /// [`GroundPoint::new`]).
    #[must_use]
    pub fn state_to_point(state: &[f64; 3]) -> GroundPoint {
        GroundPoint::new(Radians(state[0]), Radians(state[1]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emitter() -> Emitter {
        Emitter::new(
            GroundPoint::from_degrees(Degrees(30.0), Degrees(45.0)),
            400.0e6,
        )
    }

    #[test]
    fn ecef_is_on_sphere() {
        let p = emitter().position_ecef_km();
        let r = (p[0] * p[0] + p[1] * p[1] + p[2] * p[2]).sqrt();
        assert!((r - EARTH_RADIUS.value()).abs() < 1e-9);
    }

    #[test]
    fn guess_is_near_but_not_exact() {
        let e = emitter();
        let g = e.initial_guess_nearby(1.0);
        let gp = Emitter::state_to_point(&g);
        let d = gp.great_circle_distance(&e.position()).value();
        assert!(d > 10.0 && d < 300.0, "offset distance {d} km");
        assert_ne!(g[2], e.frequency_hz());
    }

    #[test]
    fn guess_clamps_polar_latitudes() {
        let e = Emitter::new(
            GroundPoint::from_degrees(Degrees(89.5), Degrees(0.0)),
            100.0e6,
        );
        let g = e.initial_guess_nearby(5.0);
        assert!(g[0].to_degrees() <= 89.0 + 1e-9);
    }

    #[test]
    #[should_panic(expected = "frequency must be positive")]
    fn zero_frequency_rejected() {
        let _ = Emitter::new(GroundPoint::from_degrees(Degrees(0.0), Degrees(0.0)), 0.0);
    }
}
