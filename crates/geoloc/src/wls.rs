//! Damped Gauss–Newton iterative weighted least squares.
//!
//! The estimator behind sequential localization: given any mix of
//! [`Observation`]s (Doppler, TOA, …) it refines the state vector
//! `x = [latitude (rad), longitude (rad), carrier frequency (Hz)]` by
//! solving the weighted normal equations `(JᵀWJ + λD) δ = JᵀW r` with
//! Levenberg–Marquardt damping, and reports the posterior covariance
//! `(JᵀWJ)⁻¹` from which the paper's "estimated error" (TC-1) is derived.

use oaq_linalg::{Cholesky, LinalgError, Matrix};
use oaq_orbit::geo::EARTH_RADIUS;
use oaq_orbit::GroundPoint;

use crate::emitter::Emitter;

/// Dimension of the estimation state `[lat, lon, f0]`.
pub const STATE_DIM: usize = 3;

/// A single scalar measurement usable by the WLS solver.
///
/// Implementors provide the predicted value and its gradient; the solver
/// works with residuals `observed − predicted`.
pub trait Observation {
    /// Predicted measurement value at state `x`.
    fn predict(&self, x: &[f64; STATE_DIM]) -> f64;

    /// Observed (noisy) measurement value.
    fn observed(&self) -> f64;

    /// Measurement standard deviation (same unit as the value).
    fn sigma(&self) -> f64;

    /// Gradient of the prediction with respect to the state. The default
    /// implementation uses central finite differences with per-component
    /// steps suited to radians/radians/hertz.
    fn jacobian_row(&self, x: &[f64; STATE_DIM]) -> [f64; STATE_DIM] {
        const STEPS: [f64; STATE_DIM] = [1e-7, 1e-7, 1e-2];
        let mut row = [0.0; STATE_DIM];
        for (j, step) in STEPS.iter().enumerate() {
            let mut hi = *x;
            let mut lo = *x;
            hi[j] += step;
            lo[j] -= step;
            row[j] = (self.predict(&hi) - self.predict(&lo)) / (2.0 * step);
        }
        row
    }

    /// Weight `1/σ²`.
    fn weight(&self) -> f64 {
        let s = self.sigma();
        1.0 / (s * s)
    }
}

/// Why a solve failed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SolveError {
    /// Fewer observations than state parameters.
    Underdetermined {
        /// Number of observations supplied.
        observations: usize,
    },
    /// The normal equations were singular even under maximum damping.
    Degenerate(LinalgError),
    /// The iteration failed to reduce the cost within the iteration budget.
    NoConvergence {
        /// Final (best) cost reached.
        cost: f64,
    },
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::Underdetermined { observations } => {
                write!(
                    f,
                    "underdetermined: {observations} observations for {STATE_DIM} states"
                )
            }
            SolveError::Degenerate(e) => write!(f, "degenerate normal equations: {e}"),
            SolveError::NoConvergence { cost } => {
                write!(f, "no convergence (final cost {cost:.3e})")
            }
        }
    }
}

impl std::error::Error for SolveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SolveError::Degenerate(e) => Some(e),
            _ => None,
        }
    }
}

/// A converged WLS estimate.
#[derive(Debug, Clone)]
pub struct Estimate {
    /// Estimated state `[lat (rad), lon (rad), f0 (Hz)]`.
    pub state: [f64; STATE_DIM],
    /// Posterior covariance `(JᵀWJ)⁻¹` at the solution.
    pub covariance: Matrix,
    /// Final weighted cost `rᵀWr`.
    pub cost: f64,
    /// Gauss–Newton iterations used.
    pub iterations: u32,
}

impl Estimate {
    /// The estimated emitter position.
    ///
    /// # Panics
    ///
    /// Panics if the latitude component left its valid range (the solver
    /// clamps it, so this indicates misuse of the struct).
    #[must_use]
    pub fn position(&self) -> GroundPoint {
        Emitter::state_to_point(&self.state)
    }

    /// Great-circle distance from the estimate to `truth`, in km.
    #[must_use]
    pub fn position_error_km(&self, truth: &GroundPoint) -> f64 {
        self.position().great_circle_distance(truth).value()
    }

    /// The 1-σ horizontal error radius implied by the covariance, in km:
    /// `√(σ_N² + σ_E²)` with `σ_N = σ_lat·R`, `σ_E = σ_lon·R·cos(lat)`.
    ///
    /// This is the quantity OAQ's termination condition TC-1 compares to an
    /// accuracy threshold.
    #[must_use]
    pub fn error_radius_km(&self) -> f64 {
        let r = EARTH_RADIUS.value();
        let var_n = self.covariance[(0, 0)] * r * r;
        let cos_lat = self.state[0].cos();
        let var_e = self.covariance[(1, 1)] * (r * cos_lat).powi(2);
        (var_n + var_e).sqrt()
    }
}

/// Solver configuration (builder-style setters).
#[derive(Debug, Clone, Copy)]
pub struct WlsSolver {
    max_iterations: u32,
    step_tolerance: f64,
    initial_damping: f64,
}

impl Default for WlsSolver {
    fn default() -> Self {
        WlsSolver {
            max_iterations: 50,
            step_tolerance: 1e-10,
            initial_damping: 1e-3,
        }
    }
}

impl WlsSolver {
    /// Creates a solver with default settings.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the iteration budget.
    #[must_use]
    pub fn with_max_iterations(mut self, n: u32) -> Self {
        self.max_iterations = n;
        self
    }

    /// Sets the convergence tolerance on the scaled step norm.
    #[must_use]
    pub fn with_step_tolerance(mut self, tol: f64) -> Self {
        self.step_tolerance = tol;
        self
    }

    fn cost(obs: &[&dyn Observation], x: &[f64; STATE_DIM]) -> f64 {
        obs.iter()
            .map(|o| {
                let r = o.observed() - o.predict(x);
                o.weight() * r * r
            })
            .sum()
    }

    /// Solves for the state starting from `x0`.
    ///
    /// # Errors
    ///
    /// * [`SolveError::Underdetermined`] with fewer than [`STATE_DIM`]
    ///   observations.
    /// * [`SolveError::Degenerate`] when the measurement geometry leaves the
    ///   normal equations singular.
    /// * [`SolveError::NoConvergence`] if the damped iteration cannot reduce
    ///   the cost.
    pub fn solve(
        &self,
        observations: &[&dyn Observation],
        x0: [f64; STATE_DIM],
    ) -> Result<Estimate, SolveError> {
        if observations.len() < STATE_DIM {
            return Err(SolveError::Underdetermined {
                observations: observations.len(),
            });
        }
        let mut x = x0;
        let mut lambda = self.initial_damping;
        let mut cost = Self::cost(observations, &x);
        let mut iterations = 0;
        let mut converged = false;
        let mut last_jtwj: Option<Matrix> = None;

        while iterations < self.max_iterations && !converged {
            iterations += 1;
            // Assemble JᵀWJ and JᵀWr.
            let mut jtwj = Matrix::zeros(STATE_DIM, STATE_DIM);
            let mut jtwr = [0.0; STATE_DIM];
            for o in observations {
                let row = o.jacobian_row(&x);
                let w = o.weight();
                let r = o.observed() - o.predict(&x);
                for a in 0..STATE_DIM {
                    jtwr[a] += w * row[a] * r;
                    for b in 0..STATE_DIM {
                        jtwj[(a, b)] += w * row[a] * row[b];
                    }
                }
            }
            last_jtwj = Some(jtwj.clone());

            // Levenberg–Marquardt inner loop: grow damping until the step
            // reduces the cost.
            let mut accepted = false;
            for _ in 0..12 {
                let mut damped = jtwj.clone();
                for d in 0..STATE_DIM {
                    // Marquardt scaling keeps the damping meaningful across
                    // the wildly different parameter units.
                    damped[(d, d)] += lambda * jtwj[(d, d)].max(1e-30);
                }
                let delta = match Cholesky::factor(&damped).and_then(|ch| ch.solve(&jtwr)) {
                    Ok(d) => d,
                    Err(e) => {
                        if lambda > 1e8 {
                            return Err(SolveError::Degenerate(e));
                        }
                        lambda *= 10.0;
                        continue;
                    }
                };
                let mut x_new = x;
                for (xi, di) in x_new.iter_mut().zip(&delta) {
                    *xi += di;
                }
                // Keep latitude physical.
                x_new[0] = x_new[0].clamp(
                    -std::f64::consts::FRAC_PI_2 + 1e-9,
                    std::f64::consts::FRAC_PI_2 - 1e-9,
                );
                let new_cost = Self::cost(observations, &x_new);
                if new_cost <= cost {
                    // Scaled step norm for convergence: radians vs hertz.
                    let step = (delta[0].powi(2) + delta[1].powi(2)).sqrt()
                        + delta[2].abs() / x[2].abs().max(1.0);
                    x = x_new;
                    cost = new_cost;
                    lambda = (lambda * 0.3).max(1e-12);
                    accepted = true;
                    if step < self.step_tolerance {
                        converged = true;
                    }
                    break;
                }
                lambda *= 10.0;
            }
            if !accepted {
                // Damping maxed out without improvement: we are at a local
                // minimum (or the model cannot fit better).
                break;
            }
        }

        let jtwj = last_jtwj.expect("at least one iteration ran");
        let covariance = jtwj.inverse().map_err(SolveError::Degenerate)?;
        Ok(Estimate {
            state: x,
            covariance,
            cost,
            iterations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A linear pseudo-observation `y = a·x + noise` for solver unit tests.
    struct LinearObs {
        a: [f64; STATE_DIM],
        y: f64,
        sigma: f64,
    }

    impl Observation for LinearObs {
        fn predict(&self, x: &[f64; STATE_DIM]) -> f64 {
            self.a.iter().zip(x).map(|(ai, xi)| ai * xi).sum()
        }
        fn observed(&self) -> f64 {
            self.y
        }
        fn sigma(&self) -> f64 {
            self.sigma
        }
    }

    fn linear_problem(truth: [f64; 3], sigmas: [f64; 3]) -> Vec<LinearObs> {
        let rows: [[f64; 3]; 4] = [
            [1.0, 0.0, 0.0],
            [0.0, 1.0, 0.0],
            [0.0, 0.0, 1.0],
            [1.0, 1.0, 1.0],
        ];
        rows.iter()
            .enumerate()
            .map(|(i, a)| LinearObs {
                a: *a,
                y: a.iter().zip(&truth).map(|(ai, ti)| ai * ti).sum(),
                sigma: sigmas[i % 3],
            })
            .collect()
    }

    #[test]
    fn linear_system_recovered_exactly() {
        let truth = [0.5, -0.2, 100.0];
        let obs = linear_problem(truth, [1.0, 1.0, 1.0]);
        let refs: Vec<&dyn Observation> = obs.iter().map(|o| o as &dyn Observation).collect();
        let est = WlsSolver::new().solve(&refs, [0.0, 0.0, 1.0]).unwrap();
        for (e, t) in est.state.iter().zip(&truth) {
            assert!((e - t).abs() < 1e-6, "{e} vs {t}");
        }
        assert!(est.cost < 1e-10);
    }

    #[test]
    fn underdetermined_rejected() {
        let obs = linear_problem([0.0; 3], [1.0; 3]);
        let refs: Vec<&dyn Observation> = obs[..2].iter().map(|o| o as &dyn Observation).collect();
        assert!(matches!(
            WlsSolver::new().solve(&refs, [0.0; 3]),
            Err(SolveError::Underdetermined { observations: 2 })
        ));
    }

    #[test]
    fn degenerate_geometry_detected() {
        // Three copies of the same row: rank-1 normal equations.
        let obs: Vec<LinearObs> = (0..3)
            .map(|_| LinearObs {
                a: [1.0, 0.0, 0.0],
                y: 1.0,
                sigma: 1.0,
            })
            .collect();
        let refs: Vec<&dyn Observation> = obs.iter().map(|o| o as &dyn Observation).collect();
        let r = WlsSolver::new().solve(&refs, [0.0; 3]);
        assert!(matches!(r, Err(SolveError::Degenerate(_))), "{r:?}");
    }

    #[test]
    fn covariance_scales_with_noise() {
        let truth = [0.1, 0.2, 10.0];
        let low = linear_problem(truth, [0.1, 0.1, 0.1]);
        let high = linear_problem(truth, [10.0, 10.0, 10.0]);
        let solve = |obs: &[LinearObs]| {
            let refs: Vec<&dyn Observation> = obs.iter().map(|o| o as &dyn Observation).collect();
            WlsSolver::new().solve(&refs, [0.0; 3]).unwrap()
        };
        let e_low = solve(&low);
        let e_high = solve(&high);
        assert!(e_high.covariance[(0, 0)] > e_low.covariance[(0, 0)] * 100.0);
    }

    #[test]
    fn weights_downrank_noisy_observations() {
        // Two conflicting observations of x0; the tight one must dominate.
        let obs = [
            LinearObs {
                a: [1.0, 0.0, 0.0],
                y: 1.0,
                sigma: 0.01,
            },
            LinearObs {
                a: [1.0, 0.0, 0.0],
                y: 2.0,
                sigma: 1.0,
            },
            LinearObs {
                a: [0.0, 1.0, 0.0],
                y: 0.0,
                sigma: 1.0,
            },
            LinearObs {
                a: [0.0, 0.0, 1.0],
                y: 0.0,
                sigma: 1.0,
            },
        ];
        let refs: Vec<&dyn Observation> = obs.iter().map(|o| o as &dyn Observation).collect();
        let est = WlsSolver::new().solve(&refs, [0.0; 3]).unwrap();
        assert!((est.state[0] - 1.0).abs() < 0.01, "got {}", est.state[0]);
    }

    #[test]
    fn display_of_errors() {
        let e = SolveError::Underdetermined { observations: 1 };
        assert!(e.to_string().contains("underdetermined"));
    }
}
