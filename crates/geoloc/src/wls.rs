//! Damped Gauss–Newton iterative weighted least squares.
//!
//! The estimator behind sequential localization: given any mix of
//! [`Observation`]s (Doppler, TOA, …) it refines the state vector
//! `x = [latitude (rad), longitude (rad), carrier frequency (Hz)]` by
//! solving the weighted normal equations `(JᵀWJ + λD) δ = JᵀW r` with
//! Levenberg–Marquardt damping, and reports the posterior covariance
//! `(JᵀWJ)⁻¹` from which the paper's "estimated error" (TC-1) is derived.
//!
//! ## Fast path vs reference baseline
//!
//! The Monte-Carlo layers call this solver thousands of times per run, so
//! the normal equations are served by two implementations:
//!
//! * [`WlsSolver::solve_obs`] — the monomorphized fast path: `3 × 3`
//!   normal equations assembled into [`oaq_linalg::SMat`] stack kernels
//!   (zero heap allocation per iteration), residuals cached in reusable
//!   scratch buffers so each accepted cost evaluation doubles as the next
//!   assembly's residual pass.
//! * [`WlsSolver::solve_heap`] — the original heap-[`Matrix`],
//!   dynamic-dispatch implementation, kept as the reference baseline
//!   (mirroring the `_dense` convention of the uniformization kernel).
//!
//! Both perform the identical arithmetic in the identical order, so their
//! results agree *bit for bit* — asserted by the property tests and
//! re-asserted in-bench by `geoloc_kernel` (E19). [`WlsSolver::solve`]
//! (the `&dyn` API) is a thin wrapper over the fast path.

use oaq_linalg::{Cholesky, LinalgError, Matrix, SCholesky, SLu, SMat};
use oaq_orbit::geo::EARTH_RADIUS;
use oaq_orbit::GroundPoint;

use crate::emitter::Emitter;

/// Dimension of the estimation state `[lat, lon, f0]`.
pub const STATE_DIM: usize = 3;

/// Central-difference steps of the finite-difference reference Jacobian
/// [`Observation::jacobian_row_fd`], per state component. Public so tests
/// and benches can reconstruct the FD roundoff floor `ε·|f(x)|/step` when
/// judging analytic-vs-FD agreement.
pub const FD_STEPS: [f64; STATE_DIM] = [3e-5, 3e-5, 1e2];

/// A single scalar measurement usable by the WLS solver.
///
/// Implementors provide the predicted value and its gradient; the solver
/// works with residuals `observed − predicted`.
pub trait Observation {
    /// Predicted measurement value at state `x`.
    fn predict(&self, x: &[f64; STATE_DIM]) -> f64;

    /// Observed (noisy) measurement value.
    fn observed(&self) -> f64;

    /// Measurement standard deviation (same unit as the value).
    fn sigma(&self) -> f64;

    /// Gradient of the prediction with respect to the state, by central
    /// finite differences with per-component steps suited to
    /// radians/radians/hertz.
    ///
    /// This is the *reference baseline* every implementor keeps for free:
    /// analytic [`Observation::jacobian_row`] overrides (Doppler, TOA) are
    /// validated against it, and the `geoloc_kernel` bench reports the
    /// analytic-vs-FD max-abs-diff.
    fn jacobian_row_fd(&self, x: &[f64; STATE_DIM]) -> [f64; STATE_DIM] {
        // Steps balance central-difference truncation against f64 roundoff
        // on carrier-scale (~4e8 Hz) predictions: 3e-5 rad ≈ 190 m on the
        // ground; predictions are linear in f0 so its step can be large.
        let mut row = [0.0; STATE_DIM];
        for (j, step) in FD_STEPS.iter().enumerate() {
            let mut hi = *x;
            let mut lo = *x;
            hi[j] += step;
            lo[j] -= step;
            row[j] = (self.predict(&hi) - self.predict(&lo)) / (2.0 * step);
        }
        row
    }

    /// Gradient of the prediction with respect to the state. The default
    /// implementation falls back to the finite-difference reference
    /// [`Observation::jacobian_row_fd`]; measurement models with closed-form
    /// gradients override this (6 fewer `predict` calls per row).
    fn jacobian_row(&self, x: &[f64; STATE_DIM]) -> [f64; STATE_DIM] {
        self.jacobian_row_fd(x)
    }

    /// Weight `1/σ²`.
    fn weight(&self) -> f64 {
        let s = self.sigma();
        1.0 / (s * s)
    }
}

/// Forwarding impl so slices of references solve without an extra adapter
/// (this is what lets the `&dyn` API be a thin wrapper over the
/// monomorphized fast path).
impl<O: Observation + ?Sized> Observation for &O {
    fn predict(&self, x: &[f64; STATE_DIM]) -> f64 {
        (**self).predict(x)
    }
    fn observed(&self) -> f64 {
        (**self).observed()
    }
    fn sigma(&self) -> f64 {
        (**self).sigma()
    }
    fn jacobian_row_fd(&self, x: &[f64; STATE_DIM]) -> [f64; STATE_DIM] {
        (**self).jacobian_row_fd(x)
    }
    fn jacobian_row(&self, x: &[f64; STATE_DIM]) -> [f64; STATE_DIM] {
        (**self).jacobian_row(x)
    }
    fn weight(&self) -> f64 {
        (**self).weight()
    }
}

/// Forwarding impl for boxed observations: `SequentialLocalizer` stores
/// `Box<dyn Observation + Send>` and solves over them directly, with no
/// per-estimate reference-list rebuild.
impl<O: Observation + ?Sized> Observation for Box<O> {
    fn predict(&self, x: &[f64; STATE_DIM]) -> f64 {
        (**self).predict(x)
    }
    fn observed(&self) -> f64 {
        (**self).observed()
    }
    fn sigma(&self) -> f64 {
        (**self).sigma()
    }
    fn jacobian_row_fd(&self, x: &[f64; STATE_DIM]) -> [f64; STATE_DIM] {
        (**self).jacobian_row_fd(x)
    }
    fn jacobian_row(&self, x: &[f64; STATE_DIM]) -> [f64; STATE_DIM] {
        (**self).jacobian_row(x)
    }
    fn weight(&self) -> f64 {
        (**self).weight()
    }
}

/// Adapter forcing the finite-difference reference Jacobian of the wrapped
/// observation, overriding any analytic implementation.
///
/// Used by benches and tests to reconstruct the pre-analytic estimator
/// behavior (the "heap-dyn + FD" baseline of E19).
#[derive(Debug, Clone, Copy)]
pub struct FdJacobian<O>(pub O);

impl<O: Observation> Observation for FdJacobian<O> {
    fn predict(&self, x: &[f64; STATE_DIM]) -> f64 {
        self.0.predict(x)
    }
    fn observed(&self) -> f64 {
        self.0.observed()
    }
    fn sigma(&self) -> f64 {
        self.0.sigma()
    }
    fn jacobian_row(&self, x: &[f64; STATE_DIM]) -> [f64; STATE_DIM] {
        self.0.jacobian_row_fd(x)
    }
    fn weight(&self) -> f64 {
        self.0.weight()
    }
}

/// Why a solve failed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SolveError {
    /// Fewer observations than state parameters.
    Underdetermined {
        /// Number of observations supplied.
        observations: usize,
    },
    /// The normal equations were singular even under maximum damping.
    Degenerate(LinalgError),
    /// The iteration failed to reduce the cost within the iteration budget.
    NoConvergence {
        /// Final (best) cost reached.
        cost: f64,
    },
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::Underdetermined { observations } => {
                write!(
                    f,
                    "underdetermined: {observations} observations for {STATE_DIM} states"
                )
            }
            SolveError::Degenerate(e) => write!(f, "degenerate normal equations: {e}"),
            SolveError::NoConvergence { cost } => {
                write!(f, "no convergence (final cost {cost:.3e})")
            }
        }
    }
}

impl std::error::Error for SolveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SolveError::Degenerate(e) => Some(e),
            _ => None,
        }
    }
}

/// A converged WLS estimate.
#[derive(Debug, Clone)]
pub struct Estimate {
    /// Estimated state `[lat (rad), lon (rad), f0 (Hz)]`.
    pub state: [f64; STATE_DIM],
    /// Posterior covariance `(JᵀWJ)⁻¹` at the solution.
    pub covariance: Matrix,
    /// Final weighted cost `rᵀWr`.
    pub cost: f64,
    /// Gauss–Newton iterations used.
    pub iterations: u32,
}

impl Estimate {
    /// The estimated emitter position.
    ///
    /// # Panics
    ///
    /// Panics if the latitude component left its valid range (the solver
    /// clamps it, so this indicates misuse of the struct).
    #[must_use]
    pub fn position(&self) -> GroundPoint {
        Emitter::state_to_point(&self.state)
    }

    /// Great-circle distance from the estimate to `truth`, in km.
    #[must_use]
    pub fn position_error_km(&self, truth: &GroundPoint) -> f64 {
        self.position().great_circle_distance(truth).value()
    }

    /// The 1-σ horizontal error radius implied by the covariance, in km:
    /// `√(σ_N² + σ_E²)` with `σ_N = σ_lat·R`, `σ_E = σ_lon·R·cos(lat)`.
    ///
    /// This is the quantity OAQ's termination condition TC-1 compares to an
    /// accuracy threshold.
    #[must_use]
    pub fn error_radius_km(&self) -> f64 {
        let r = EARTH_RADIUS.value();
        let var_n = self.covariance[(0, 0)] * r * r;
        let cos_lat = self.state[0].cos();
        let var_e = self.covariance[(1, 1)] * (r * cos_lat).powi(2);
        (var_n + var_e).sqrt()
    }
}

/// Prior information carried into an incremental solve: the quadratic cost
/// `(x − anchor)ᵀ Λ (x − anchor)` summarizing already-incorporated
/// measurements linearized at their fold-time states.
#[derive(Debug, Clone, Copy)]
pub struct InformationPrior {
    /// Accumulated information matrix `Λ = Σ w JᵀJ`.
    pub info: SMat<STATE_DIM>,
    /// The state the prior is anchored at (the previous solution, where
    /// the folded measurements' gradient vanishes).
    pub anchor: [f64; STATE_DIM],
}

/// Solver configuration (builder-style setters).
#[derive(Debug, Clone, Copy)]
pub struct WlsSolver {
    pub(crate) max_iterations: u32,
    pub(crate) step_tolerance: f64,
    pub(crate) initial_damping: f64,
}

impl Default for WlsSolver {
    fn default() -> Self {
        WlsSolver {
            max_iterations: 50,
            step_tolerance: 1e-10,
            initial_damping: 1e-3,
        }
    }
}

impl WlsSolver {
    /// Creates a solver with default settings.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the iteration budget.
    #[must_use]
    pub fn with_max_iterations(mut self, n: u32) -> Self {
        self.max_iterations = n;
        self
    }

    /// Sets the convergence tolerance on the scaled step norm.
    #[must_use]
    pub fn with_step_tolerance(mut self, tol: f64) -> Self {
        self.step_tolerance = tol;
        self
    }

    fn cost(obs: &[&dyn Observation], x: &[f64; STATE_DIM]) -> f64 {
        obs.iter()
            .map(|o| {
                let r = o.observed() - o.predict(x);
                o.weight() * r * r
            })
            .sum()
    }

    /// Weighted cost plus residual capture: sums `w r²` in exactly the
    /// iterator-fold order of [`WlsSolver::cost`] while recording each
    /// residual, so one pass serves both the acceptance test and the next
    /// assembly.
    fn cost_into<O: Observation>(obs: &[O], x: &[f64; STATE_DIM], resid: &mut Vec<f64>) -> f64 {
        resid.clear();
        let mut total = 0.0;
        for o in obs {
            let r = o.observed() - o.predict(x);
            resid.push(r);
            total += o.weight() * r * r;
        }
        total
    }

    /// Quadratic prior cost `(x − anchor)ᵀ Λ (x − anchor)`.
    fn prior_cost(prior: &InformationPrior, x: &[f64; STATE_DIM]) -> f64 {
        let mut d = [0.0; STATE_DIM];
        for i in 0..STATE_DIM {
            d[i] = x[i] - prior.anchor[i];
        }
        let ld = prior.info.mul_vec(&d);
        let mut total = 0.0;
        for i in 0..STATE_DIM {
            total += d[i] * ld[i];
        }
        total
    }

    /// Solves for the state starting from `x0` (thin wrapper over the
    /// monomorphized stack fast path, instantiated at `O = &dyn
    /// Observation`).
    ///
    /// # Errors
    ///
    /// * [`SolveError::Underdetermined`] with fewer than [`STATE_DIM`]
    ///   observations.
    /// * [`SolveError::Degenerate`] when the measurement geometry leaves the
    ///   normal equations singular.
    /// * [`SolveError::NoConvergence`] if the damped iteration cannot reduce
    ///   the cost.
    pub fn solve(
        &self,
        observations: &[&dyn Observation],
        x0: [f64; STATE_DIM],
    ) -> Result<Estimate, SolveError> {
        self.solve_obs(observations, x0)
    }

    /// The monomorphized zero-allocation fast path: normal equations
    /// assembled into stack kernels, residuals reused between the cost
    /// evaluation and the assembly. Bit-identical to
    /// [`WlsSolver::solve_heap`] for equal inputs.
    ///
    /// # Errors
    ///
    /// As [`WlsSolver::solve`].
    pub fn solve_obs<O: Observation>(
        &self,
        observations: &[O],
        x0: [f64; STATE_DIM],
    ) -> Result<Estimate, SolveError> {
        if observations.len() < STATE_DIM {
            return Err(SolveError::Underdetermined {
                observations: observations.len(),
            });
        }
        self.solve_core(observations, None, x0)
    }

    /// Incremental solve: minimizes the prior's quadratic cost plus the
    /// weighted residuals of `observations` (measurements *not yet* folded
    /// into the prior). The caller is responsible for the combined system
    /// being observable (prior + new measurements ≥ [`STATE_DIM`]
    /// constraints); a deficient geometry surfaces as
    /// [`SolveError::Degenerate`].
    ///
    /// # Errors
    ///
    /// As [`WlsSolver::solve`] except [`SolveError::Underdetermined`],
    /// which the caller screens for.
    pub fn solve_obs_with_prior<O: Observation>(
        &self,
        observations: &[O],
        prior: &InformationPrior,
        x0: [f64; STATE_DIM],
    ) -> Result<Estimate, SolveError> {
        self.solve_core(observations, Some(prior), x0)
    }

    /// Covariance from the final information matrix, shared by both solve
    /// paths (part of the bit-identity contract).
    ///
    /// The plain inverse is used whenever it exists, leaving
    /// well-conditioned solves untouched. Geometry that is numerically
    /// singular at working precision while every coordinate still carries
    /// information — the single-pass Doppler ambiguity, whose exact
    /// analytic rows cancel to machine precision where finite-difference
    /// roundoff used to blur the deficiency past the pivot test — is
    /// re-inverted in Jacobi-equilibrated (correlation) form with an
    /// escalating diagonal ridge: the variance along the near-null
    /// direction is effectively infinite and comes back enormous but
    /// finite, which is exactly what TC-1 thresholding needs from an
    /// ambiguous fix. Equilibration also removes the rad²-vs-Hz² unit
    /// disparity (~10 orders of magnitude on the diagonal) that makes the
    /// raw matrix hostile to a max-norm-relative pivot threshold.
    /// Structurally deficient systems — a non-positive diagonal entry, no
    /// information at all about some coordinate — still surface as
    /// [`SolveError::Degenerate`].
    pub(crate) fn covariance_from_information(info: &Matrix) -> Result<Matrix, SolveError> {
        let err = match info.inverse() {
            Ok(cov) => return Ok(cov),
            Err(e) => e,
        };
        let mut scale = [0.0; STATE_DIM];
        for (d, s) in scale.iter_mut().enumerate() {
            let v = info[(d, d)];
            if !v.is_finite() || v <= 0.0 {
                return Err(SolveError::Degenerate(err));
            }
            *s = v.sqrt();
        }
        let mut corr = Matrix::zeros(STATE_DIM, STATE_DIM);
        for a in 0..STATE_DIM {
            for b in 0..STATE_DIM {
                corr[(a, b)] = info[(a, b)] / (scale[a] * scale[b]);
            }
        }
        for exp in [-14, -12, -10, -8] {
            let mut ridged = corr.clone();
            for d in 0..STATE_DIM {
                ridged[(d, d)] += 10f64.powi(exp);
            }
            if let Ok(inv) = ridged.inverse() {
                let mut cov = Matrix::zeros(STATE_DIM, STATE_DIM);
                for a in 0..STATE_DIM {
                    for b in 0..STATE_DIM {
                        cov[(a, b)] = inv[(a, b)] / (scale[a] * scale[b]);
                    }
                }
                return Ok(cov);
            }
        }
        Err(SolveError::Degenerate(err))
    }

    /// [`WlsSolver::covariance_from_information`] over the stack
    /// information matrix: the happy path inverts via [`oaq_linalg::SLu`]
    /// — bit-identical to [`Matrix::inverse`], without the heap factor
    /// and per-column solve allocations that dominate the batched solver's
    /// per-track fixed cost. A singular information matrix (the identical
    /// pivot threshold) falls back to the heap route and its
    /// ridged-correlation retries.
    pub(crate) fn covariance_from_sinfo(info: &SMat<STATE_DIM>) -> Result<Matrix, SolveError> {
        if let Ok(lu) = SLu::factor(info) {
            return Ok(lu.inverse().to_matrix());
        }
        Self::covariance_from_information(&info.to_matrix())
    }

    /// Shared damped Gauss–Newton core over stack kernels. With
    /// `prior = None` this performs exactly the operations of
    /// [`WlsSolver::solve_heap`] in the same order (the bit-identity
    /// contract); with a prior it adds the prior's information to the
    /// normal equations and its quadratic term to the cost.
    fn solve_core<O: Observation>(
        &self,
        observations: &[O],
        prior: Option<&InformationPrior>,
        x0: [f64; STATE_DIM],
    ) -> Result<Estimate, SolveError> {
        let mut x = x0;
        let mut lambda = self.initial_damping;
        // Reusable scratch: residuals at the current iterate, and a second
        // buffer for trial steps (swapped in on acceptance).
        let mut resid = Vec::with_capacity(observations.len());
        let mut resid_trial = Vec::with_capacity(observations.len());
        let mut cost = Self::cost_into(observations, &x, &mut resid);
        if let Some(p) = prior {
            cost += Self::prior_cost(p, &x);
        }
        let mut iterations = 0;
        let mut converged = false;
        let mut info = SMat::<STATE_DIM>::zeros();
        let mut last_info: Option<SMat<STATE_DIM>> = None;

        while iterations < self.max_iterations && !converged {
            iterations += 1;
            // Assemble H = [Λ +] JᵀWJ and g = [Λ(anchor − x) +] JᵀWr,
            // reusing the residuals captured by the last cost evaluation.
            let mut jtwr = [0.0; STATE_DIM];
            match prior {
                Some(p) => {
                    info = p.info;
                    let mut d = [0.0; STATE_DIM];
                    for i in 0..STATE_DIM {
                        d[i] = p.anchor[i] - x[i];
                    }
                    jtwr = p.info.mul_vec(&d);
                }
                None => info.set_zero(),
            }
            for (o, &r) in observations.iter().zip(&resid) {
                let row = o.jacobian_row(&x);
                let w = o.weight();
                debug_assert!(
                    w.is_finite() && w > 0.0,
                    "observation weight must be positive and finite (is sigma > 0?)"
                );
                for a in 0..STATE_DIM {
                    jtwr[a] += w * row[a] * r;
                    for b in 0..STATE_DIM {
                        info[(a, b)] += w * row[a] * row[b];
                    }
                }
            }
            last_info = Some(info);

            // Levenberg–Marquardt inner loop: grow damping until the step
            // reduces the cost.
            let mut accepted = false;
            for _ in 0..12 {
                let mut damped = info;
                for d in 0..STATE_DIM {
                    // Marquardt scaling keeps the damping meaningful across
                    // the wildly different parameter units.
                    damped[(d, d)] += lambda * info[(d, d)].max(1e-30);
                }
                let delta = match SCholesky::factor(&damped) {
                    Ok(ch) => ch.solve(&jtwr),
                    Err(e) => {
                        if lambda > 1e8 {
                            return Err(SolveError::Degenerate(e));
                        }
                        lambda *= 10.0;
                        continue;
                    }
                };
                let mut x_new = x;
                for (xi, di) in x_new.iter_mut().zip(&delta) {
                    *xi += di;
                }
                // Keep latitude physical.
                x_new[0] = x_new[0].clamp(
                    -std::f64::consts::FRAC_PI_2 + 1e-9,
                    std::f64::consts::FRAC_PI_2 - 1e-9,
                );
                let mut new_cost = Self::cost_into(observations, &x_new, &mut resid_trial);
                if let Some(p) = prior {
                    new_cost += Self::prior_cost(p, &x_new);
                }
                if new_cost <= cost {
                    // Scaled step norm for convergence: radians vs hertz.
                    let step = (delta[0].powi(2) + delta[1].powi(2)).sqrt()
                        + delta[2].abs() / x[2].abs().max(1.0);
                    x = x_new;
                    cost = new_cost;
                    std::mem::swap(&mut resid, &mut resid_trial);
                    lambda = (lambda * 0.3).max(1e-12);
                    accepted = true;
                    if step < self.step_tolerance {
                        converged = true;
                    }
                    break;
                }
                lambda *= 10.0;
            }
            if !accepted {
                // Damping maxed out without improvement: we are at a local
                // minimum (or the model cannot fit better).
                break;
            }
        }

        let info = last_info.expect("at least one iteration ran");
        let covariance = Self::covariance_from_sinfo(&info)?;
        Ok(Estimate {
            state: x,
            covariance,
            cost,
            iterations,
        })
    }

    /// The heap-allocating, dynamic-dispatch reference implementation —
    /// the estimator as it existed before the stack kernels, kept (like
    /// the uniformization `_dense` paths) as the baseline the fast path is
    /// bench-compared and bit-identity-checked against.
    ///
    /// # Errors
    ///
    /// As [`WlsSolver::solve`].
    pub fn solve_heap(
        &self,
        observations: &[&dyn Observation],
        x0: [f64; STATE_DIM],
    ) -> Result<Estimate, SolveError> {
        if observations.len() < STATE_DIM {
            return Err(SolveError::Underdetermined {
                observations: observations.len(),
            });
        }
        let mut x = x0;
        let mut lambda = self.initial_damping;
        let mut cost = Self::cost(observations, &x);
        let mut iterations = 0;
        let mut converged = false;
        let mut last_jtwj: Option<Matrix> = None;

        while iterations < self.max_iterations && !converged {
            iterations += 1;
            // Assemble JᵀWJ and JᵀWr.
            let mut jtwj = Matrix::zeros(STATE_DIM, STATE_DIM);
            let mut jtwr = [0.0; STATE_DIM];
            for o in observations {
                let row = o.jacobian_row(&x);
                let w = o.weight();
                debug_assert!(
                    w.is_finite() && w > 0.0,
                    "observation weight must be positive and finite (is sigma > 0?)"
                );
                let r = o.observed() - o.predict(&x);
                for a in 0..STATE_DIM {
                    jtwr[a] += w * row[a] * r;
                    for b in 0..STATE_DIM {
                        jtwj[(a, b)] += w * row[a] * row[b];
                    }
                }
            }
            last_jtwj = Some(jtwj.clone());

            // Levenberg–Marquardt inner loop: grow damping until the step
            // reduces the cost.
            let mut accepted = false;
            for _ in 0..12 {
                let mut damped = jtwj.clone();
                for d in 0..STATE_DIM {
                    // Marquardt scaling keeps the damping meaningful across
                    // the wildly different parameter units.
                    damped[(d, d)] += lambda * jtwj[(d, d)].max(1e-30);
                }
                let delta = match Cholesky::factor(&damped).and_then(|ch| ch.solve(&jtwr)) {
                    Ok(d) => d,
                    Err(e) => {
                        if lambda > 1e8 {
                            return Err(SolveError::Degenerate(e));
                        }
                        lambda *= 10.0;
                        continue;
                    }
                };
                let mut x_new = x;
                for (xi, di) in x_new.iter_mut().zip(&delta) {
                    *xi += di;
                }
                // Keep latitude physical.
                x_new[0] = x_new[0].clamp(
                    -std::f64::consts::FRAC_PI_2 + 1e-9,
                    std::f64::consts::FRAC_PI_2 - 1e-9,
                );
                let new_cost = Self::cost(observations, &x_new);
                if new_cost <= cost {
                    // Scaled step norm for convergence: radians vs hertz.
                    let step = (delta[0].powi(2) + delta[1].powi(2)).sqrt()
                        + delta[2].abs() / x[2].abs().max(1.0);
                    x = x_new;
                    cost = new_cost;
                    lambda = (lambda * 0.3).max(1e-12);
                    accepted = true;
                    if step < self.step_tolerance {
                        converged = true;
                    }
                    break;
                }
                lambda *= 10.0;
            }
            if !accepted {
                // Damping maxed out without improvement: we are at a local
                // minimum (or the model cannot fit better).
                break;
            }
        }

        let jtwj = last_jtwj.expect("at least one iteration ran");
        let covariance = Self::covariance_from_information(&jtwj)?;
        Ok(Estimate {
            state: x,
            covariance,
            cost,
            iterations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A linear pseudo-observation `y = a·x + noise` for solver unit tests.
    struct LinearObs {
        a: [f64; STATE_DIM],
        y: f64,
        sigma: f64,
    }

    impl Observation for LinearObs {
        fn predict(&self, x: &[f64; STATE_DIM]) -> f64 {
            self.a.iter().zip(x).map(|(ai, xi)| ai * xi).sum()
        }
        fn observed(&self) -> f64 {
            self.y
        }
        fn sigma(&self) -> f64 {
            self.sigma
        }
    }

    fn linear_problem(truth: [f64; 3], sigmas: [f64; 3]) -> Vec<LinearObs> {
        let rows: [[f64; 3]; 4] = [
            [1.0, 0.0, 0.0],
            [0.0, 1.0, 0.0],
            [0.0, 0.0, 1.0],
            [1.0, 1.0, 1.0],
        ];
        rows.iter()
            .enumerate()
            .map(|(i, a)| LinearObs {
                a: *a,
                y: a.iter().zip(&truth).map(|(ai, ti)| ai * ti).sum(),
                sigma: sigmas[i % 3],
            })
            .collect()
    }

    #[test]
    fn linear_system_recovered_exactly() {
        let truth = [0.5, -0.2, 100.0];
        let obs = linear_problem(truth, [1.0, 1.0, 1.0]);
        let refs: Vec<&dyn Observation> = obs.iter().map(|o| o as &dyn Observation).collect();
        let est = WlsSolver::new().solve(&refs, [0.0, 0.0, 1.0]).unwrap();
        for (e, t) in est.state.iter().zip(&truth) {
            assert!((e - t).abs() < 1e-6, "{e} vs {t}");
        }
        assert!(est.cost < 1e-10);
    }

    #[test]
    fn monomorphized_path_recovers_without_refs() {
        // The generic fast path over owned observations: no &dyn list.
        let truth = [0.5, -0.2, 100.0];
        let obs = linear_problem(truth, [1.0, 1.0, 1.0]);
        let est = WlsSolver::new().solve_obs(&obs, [0.0, 0.0, 1.0]).unwrap();
        for (e, t) in est.state.iter().zip(&truth) {
            assert!((e - t).abs() < 1e-6, "{e} vs {t}");
        }
    }

    #[test]
    fn fast_path_is_bit_identical_to_heap_reference() {
        let truth = [0.4, 0.1, 4.0e8];
        let obs = linear_problem(truth, [0.5, 2.0, 1.0]);
        let refs: Vec<&dyn Observation> = obs.iter().map(|o| o as &dyn Observation).collect();
        let x0 = [0.1, 0.0, 3.9e8];
        let fast = WlsSolver::new().solve_obs(&obs, x0).unwrap();
        let heap = WlsSolver::new().solve_heap(&refs, x0).unwrap();
        assert_eq!(fast.iterations, heap.iterations);
        assert_eq!(fast.cost.to_bits(), heap.cost.to_bits());
        for (f, h) in fast.state.iter().zip(&heap.state) {
            assert_eq!(f.to_bits(), h.to_bits(), "{f} vs {h}");
        }
        for i in 0..STATE_DIM {
            for j in 0..STATE_DIM {
                assert_eq!(
                    fast.covariance[(i, j)].to_bits(),
                    heap.covariance[(i, j)].to_bits()
                );
            }
        }
    }

    #[test]
    fn prior_solve_fuses_information() {
        // Old measurements pinned x0/x1; the prior must carry that into a
        // solve that only observes x2.
        let old = linear_problem([0.5, -0.2, 100.0], [1.0, 1.0, 1.0]);
        let solver = WlsSolver::new();
        let old_est = solver.solve_obs(&old, [0.0, 0.0, 1.0]).unwrap();
        let mut info = SMat::<STATE_DIM>::zeros();
        for o in &old {
            info.rank1_update(o.weight(), &o.jacobian_row(&old_est.state));
        }
        let prior = InformationPrior {
            info,
            anchor: old_est.state,
        };
        let new = [LinearObs {
            a: [0.0, 0.0, 1.0],
            y: 100.0,
            sigma: 0.1,
        }];
        let est = solver
            .solve_obs_with_prior(&new, &prior, old_est.state)
            .unwrap();
        assert!((est.state[0] - 0.5).abs() < 1e-6, "prior holds x0");
        assert!((est.state[1] + 0.2).abs() < 1e-6, "prior holds x1");
        assert!((est.state[2] - 100.0).abs() < 1e-6);
    }

    #[test]
    fn fd_adapter_restores_reference_jacobian() {
        let o = LinearObs {
            a: [2.0, -1.0, 0.5],
            y: 1.0,
            sigma: 1.0,
        };
        let x = [0.3, 0.2, 10.0];
        let fd = FdJacobian(&o).jacobian_row(&x);
        let reference = o.jacobian_row_fd(&x);
        assert_eq!(fd, reference);
    }

    #[test]
    fn ambiguous_geometry_gets_enormous_but_finite_covariance() {
        // x0 and x1 are only ever observed through their sum — the system
        // is exactly singular, but every coordinate carries information
        // (positive diagonal), so the equilibrated-ridge fallback must
        // return a huge variance along the unresolved direction instead of
        // erroring (the single-pass ambiguity case, in miniature).
        let obs: Vec<LinearObs> = [[1.0, 1.0, 0.0], [1.0, 1.0, 0.0], [0.0, 0.0, 1.0]]
            .iter()
            .map(|a| LinearObs {
                a: *a,
                y: 1.0,
                sigma: 1.0,
            })
            .collect();
        let refs: Vec<&dyn Observation> = obs.iter().map(|o| o as &dyn Observation).collect();
        let x0 = [0.2, 0.3, 1.0];
        let fast = WlsSolver::new().solve_obs(&obs, x0).unwrap();
        let heap = WlsSolver::new().solve_heap(&refs, x0).unwrap();
        assert!(fast.covariance[(0, 0)].is_finite());
        assert!(
            fast.covariance[(0, 0)] > 1e6,
            "unresolved direction must have enormous variance: {}",
            fast.covariance[(0, 0)]
        );
        // The fully observed coordinate stays well-determined.
        assert!(
            fast.covariance[(2, 2)] < 10.0,
            "{}",
            fast.covariance[(2, 2)]
        );
        // The fallback is part of the bit-identity contract.
        for i in 0..STATE_DIM {
            for j in 0..STATE_DIM {
                assert_eq!(
                    fast.covariance[(i, j)].to_bits(),
                    heap.covariance[(i, j)].to_bits()
                );
            }
        }
    }

    #[test]
    fn underdetermined_rejected() {
        let obs = linear_problem([0.0; 3], [1.0; 3]);
        let refs: Vec<&dyn Observation> = obs[..2].iter().map(|o| o as &dyn Observation).collect();
        assert!(matches!(
            WlsSolver::new().solve(&refs, [0.0; 3]),
            Err(SolveError::Underdetermined { observations: 2 })
        ));
    }

    #[test]
    fn degenerate_geometry_detected() {
        // Three copies of the same row: rank-1 normal equations.
        let obs: Vec<LinearObs> = (0..3)
            .map(|_| LinearObs {
                a: [1.0, 0.0, 0.0],
                y: 1.0,
                sigma: 1.0,
            })
            .collect();
        let refs: Vec<&dyn Observation> = obs.iter().map(|o| o as &dyn Observation).collect();
        let r = WlsSolver::new().solve(&refs, [0.0; 3]);
        assert!(matches!(r, Err(SolveError::Degenerate(_))), "{r:?}");
        let heap = WlsSolver::new().solve_heap(&refs, [0.0; 3]);
        assert!(matches!(heap, Err(SolveError::Degenerate(_))), "{heap:?}");
    }

    #[test]
    fn covariance_scales_with_noise() {
        let truth = [0.1, 0.2, 10.0];
        let low = linear_problem(truth, [0.1, 0.1, 0.1]);
        let high = linear_problem(truth, [10.0, 10.0, 10.0]);
        let solve = |obs: &[LinearObs]| {
            let refs: Vec<&dyn Observation> = obs.iter().map(|o| o as &dyn Observation).collect();
            WlsSolver::new().solve(&refs, [0.0; 3]).unwrap()
        };
        let e_low = solve(&low);
        let e_high = solve(&high);
        assert!(e_high.covariance[(0, 0)] > e_low.covariance[(0, 0)] * 100.0);
    }

    #[test]
    fn weights_downrank_noisy_observations() {
        // Two conflicting observations of x0; the tight one must dominate.
        let obs = [
            LinearObs {
                a: [1.0, 0.0, 0.0],
                y: 1.0,
                sigma: 0.01,
            },
            LinearObs {
                a: [1.0, 0.0, 0.0],
                y: 2.0,
                sigma: 1.0,
            },
            LinearObs {
                a: [0.0, 1.0, 0.0],
                y: 0.0,
                sigma: 1.0,
            },
            LinearObs {
                a: [0.0, 0.0, 1.0],
                y: 0.0,
                sigma: 1.0,
            },
        ];
        let refs: Vec<&dyn Observation> = obs.iter().map(|o| o as &dyn Observation).collect();
        let est = WlsSolver::new().solve(&refs, [0.0; 3]).unwrap();
        assert!((est.state[0] - 1.0).abs() < 0.01, "got {}", est.state[0]);
    }

    #[test]
    fn display_of_errors() {
        let e = SolveError::Underdetermined { observations: 1 };
        assert!(e.to_string().contains("underdetermined"));
    }
}
