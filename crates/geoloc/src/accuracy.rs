//! Accuracy summaries derived from estimate covariances.

use oaq_linalg::Matrix;
use oaq_orbit::geo::EARTH_RADIUS;

/// The horizontal (north/east) error description of a position estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HorizontalAccuracy {
    /// 1-σ north error, km.
    pub sigma_north_km: f64,
    /// 1-σ east error, km.
    pub sigma_east_km: f64,
    /// North–east error correlation coefficient in `[-1, 1]`.
    pub correlation: f64,
}

impl HorizontalAccuracy {
    /// Extracts horizontal accuracy from a `[lat, lon, f0]` covariance at
    /// the given latitude (radians).
    ///
    /// # Panics
    ///
    /// Panics if the covariance is smaller than 2×2.
    #[must_use]
    pub fn from_covariance(cov: &Matrix, lat_rad: f64) -> Self {
        assert!(
            cov.rows() >= 2 && cov.cols() >= 2,
            "need at least the 2x2 position block"
        );
        let r = EARTH_RADIUS.value();
        let sn = (cov[(0, 0)].max(0.0)).sqrt() * r;
        let se = (cov[(1, 1)].max(0.0)).sqrt() * r * lat_rad.cos();
        let denom = (cov[(0, 0)] * cov[(1, 1)]).sqrt();
        let rho = if denom > 0.0 {
            (cov[(0, 1)] / denom).clamp(-1.0, 1.0)
        } else {
            0.0
        };
        HorizontalAccuracy {
            sigma_north_km: sn,
            sigma_east_km: se,
            correlation: rho,
        }
    }

    /// The 1-σ error radius `√(σ_N² + σ_E²)`, the scalar the OAQ protocol
    /// thresholds (TC-1).
    #[must_use]
    pub fn error_radius_km(&self) -> f64 {
        (self.sigma_north_km.powi(2) + self.sigma_east_km.powi(2)).sqrt()
    }

    /// Circular error probable (50th percentile radius), using the standard
    /// two-sigma approximation `CEP ≈ 0.59 (σ_N + σ_E)` valid for moderate
    /// eccentricity.
    #[must_use]
    pub fn cep_km(&self) -> f64 {
        0.59 * (self.sigma_north_km + self.sigma_east_km)
    }

    /// Semi-axes of the 1-σ error ellipse (km), major first.
    #[must_use]
    pub fn error_ellipse_km(&self) -> (f64, f64) {
        let a = self.sigma_north_km.powi(2);
        let b = self.sigma_east_km.powi(2);
        let c = self.correlation * self.sigma_north_km * self.sigma_east_km;
        let tr = a + b;
        let det = a * b - c * c;
        let disc = ((tr * tr / 4.0 - det).max(0.0)).sqrt();
        let l1 = (tr / 2.0 + disc).max(0.0).sqrt();
        let l2 = (tr / 2.0 - disc).max(0.0).sqrt();
        (l1, l2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag_cov(var_lat: f64, var_lon: f64) -> Matrix {
        let mut m = Matrix::zeros(3, 3);
        m[(0, 0)] = var_lat;
        m[(1, 1)] = var_lon;
        m[(2, 2)] = 1.0;
        m
    }

    #[test]
    fn equatorial_diagonal_case() {
        // 1e-6 rad sigma each ≈ 6.371 km on the ground at the equator.
        let cov = diag_cov(1e-12, 1e-12);
        let h = HorizontalAccuracy::from_covariance(&cov, 0.0);
        assert!((h.sigma_north_km - 6.371e-3).abs() < 1e-6);
        assert!((h.sigma_east_km - 6.371e-3).abs() < 1e-6);
        assert_eq!(h.correlation, 0.0);
        let (major, minor) = h.error_ellipse_km();
        assert!((major - minor).abs() < 1e-9, "circular case");
    }

    #[test]
    fn east_error_shrinks_with_latitude() {
        let cov = diag_cov(1e-12, 1e-12);
        let eq = HorizontalAccuracy::from_covariance(&cov, 0.0);
        let hi = HorizontalAccuracy::from_covariance(&cov, 1.0);
        assert!(hi.sigma_east_km < eq.sigma_east_km);
        assert_eq!(hi.sigma_north_km, eq.sigma_north_km);
    }

    #[test]
    fn radius_and_cep_ordering() {
        let cov = diag_cov(4e-12, 1e-12);
        let h = HorizontalAccuracy::from_covariance(&cov, 0.5);
        assert!(h.error_radius_km() > h.sigma_north_km);
        assert!(h.cep_km() < h.error_radius_km());
    }

    #[test]
    fn correlated_errors_rotate_the_ellipse() {
        let mut cov = diag_cov(1e-12, 1e-12);
        cov[(0, 1)] = 0.9e-12;
        cov[(1, 0)] = 0.9e-12;
        let h = HorizontalAccuracy::from_covariance(&cov, 0.0);
        assert!((h.correlation - 0.9).abs() < 1e-12);
        let (major, minor) = h.error_ellipse_km();
        assert!(major > minor, "correlation elongates the ellipse");
    }

    #[test]
    #[should_panic(expected = "2x2")]
    fn tiny_covariance_rejected() {
        let m = Matrix::zeros(1, 1);
        let _ = HorizontalAccuracy::from_covariance(&m, 0.0);
    }
}
