//! Sequential localization: accumulate passes, re-solve, track error.
//!
//! This is the computational core of the paper's QoS-enhancement loop: each
//! satellite that joins the coordination contributes its measurements, the
//! estimate is recomputed from the accumulated set, and the resulting
//! *estimated error* is what termination condition TC-1 compares against an
//! accuracy threshold.

use crate::wls::{Estimate, Observation, SolveError, WlsSolver, STATE_DIM};

/// Accumulates measurement passes and re-estimates after each.
///
/// See the crate-level example for end-to-end use.
pub struct SequentialLocalizer {
    observations: Vec<Box<dyn Observation + Send>>,
    passes: Vec<usize>,
    initial_guess: [f64; STATE_DIM],
    solver: WlsSolver,
    history: Vec<Estimate>,
}

impl std::fmt::Debug for SequentialLocalizer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SequentialLocalizer")
            .field("observations", &self.observations.len())
            .field("passes", &self.passes.len())
            .field("estimates", &self.history.len())
            .finish()
    }
}

impl SequentialLocalizer {
    /// Creates a localizer that will start its first solve from
    /// `initial_guess` (e.g. the footprint center of the detecting
    /// satellite).
    #[must_use]
    pub fn new(initial_guess: [f64; STATE_DIM]) -> Self {
        SequentialLocalizer {
            observations: Vec::new(),
            passes: Vec::new(),
            initial_guess,
            solver: WlsSolver::new(),
            history: Vec::new(),
        }
    }

    /// Replaces the solver configuration.
    #[must_use]
    pub fn with_solver(mut self, solver: WlsSolver) -> Self {
        self.solver = solver;
        self
    }

    /// Adds one pass worth of measurements.
    pub fn add_pass<O>(&mut self, pass: Vec<O>)
    where
        O: Observation + Send + 'static,
    {
        self.passes.push(pass.len());
        self.observations.extend(
            pass.into_iter()
                .map(|o| Box::new(o) as Box<dyn Observation + Send>),
        );
    }

    /// Number of passes accumulated.
    #[must_use]
    pub fn num_passes(&self) -> usize {
        self.passes.len()
    }

    /// Total measurements accumulated.
    #[must_use]
    pub fn num_observations(&self) -> usize {
        self.observations.len()
    }

    /// Re-solves over all accumulated measurements, warm-starting from the
    /// previous estimate when one exists.
    ///
    /// # Errors
    ///
    /// Propagates [`SolveError`] from the underlying WLS solve.
    pub fn estimate(&mut self) -> Result<Estimate, SolveError> {
        let start = self.history.last().map_or(self.initial_guess, |e| e.state);
        let refs: Vec<&dyn Observation> = self
            .observations
            .iter()
            .map(|b| b.as_ref() as &dyn Observation)
            .collect();
        let est = self.solver.solve(&refs, start)?;
        self.history.push(est.clone());
        Ok(est)
    }

    /// The estimates produced so far, in order.
    #[must_use]
    pub fn history(&self) -> &[Estimate] {
        &self.history
    }

    /// The 1-σ error radii of the estimates so far (km) — the sequence the
    /// OAQ protocol watches for TC-1.
    #[must_use]
    pub fn error_radius_history_km(&self) -> Vec<f64> {
        self.history.iter().map(Estimate::error_radius_km).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emitter::Emitter;
    use crate::scenario::PassScenario;
    use oaq_orbit::units::Degrees;
    use oaq_orbit::GroundPoint;
    use oaq_sim::SimRng;

    fn emitter() -> Emitter {
        Emitter::new(
            GroundPoint::from_degrees(Degrees(30.0), Degrees(20.0)),
            400.0e6,
        )
    }

    #[test]
    fn sequential_passes_reduce_error() {
        let e = emitter();
        let scenario = PassScenario::reference(&e);
        let mut rng = SimRng::seed_from(11);
        let mut loc = SequentialLocalizer::new(e.initial_guess_nearby(1.0));

        let mut actual_errors = Vec::new();
        let mut reported_errors = Vec::new();
        for pass in 0..3 {
            loc.add_pass(scenario.synthesize_pass(pass, &mut rng));
            let est = loc.estimate().expect("solve");
            actual_errors.push(est.position_error_km(&e.position()));
            reported_errors.push(est.error_radius_km());
        }
        assert!(
            actual_errors[1] < actual_errors[0],
            "second pass improves: {actual_errors:?}"
        );
        assert!(
            reported_errors[2] < reported_errors[0],
            "reported error shrinks: {reported_errors:?}"
        );
        assert_eq!(loc.num_passes(), 3);
        assert_eq!(loc.num_observations(), 27);
    }

    #[test]
    fn reported_error_is_credible() {
        // Over several seeds the actual error should rarely exceed a few
        // multiples of the reported 1-σ radius.
        let e = emitter();
        let scenario = PassScenario::reference(&e);
        let mut within = 0;
        let n = 10;
        for seed in 0..n {
            let mut rng = SimRng::seed_from(100 + seed);
            let mut loc = SequentialLocalizer::new(e.initial_guess_nearby(0.8));
            loc.add_pass(scenario.synthesize_pass(0, &mut rng));
            loc.add_pass(scenario.synthesize_pass(1, &mut rng));
            let est = loc.estimate().expect("solve");
            if est.position_error_km(&e.position()) <= 4.0 * est.error_radius_km() {
                within += 1;
            }
        }
        assert!(within >= n - 2, "only {within}/{n} within 4 sigma");
    }

    #[test]
    fn estimate_without_passes_is_underdetermined() {
        let e = emitter();
        let mut loc = SequentialLocalizer::new(e.initial_guess_nearby(1.0));
        assert!(matches!(
            loc.estimate(),
            Err(SolveError::Underdetermined { observations: 0 })
        ));
    }

    #[test]
    fn history_accumulates() {
        let e = emitter();
        let scenario = PassScenario::reference(&e);
        let mut rng = SimRng::seed_from(3);
        let mut loc = SequentialLocalizer::new(e.initial_guess_nearby(1.0));
        loc.add_pass(scenario.synthesize_pass(0, &mut rng));
        loc.estimate().unwrap();
        loc.add_pass(scenario.synthesize_pass(1, &mut rng));
        loc.estimate().unwrap();
        assert_eq!(loc.history().len(), 2);
        assert_eq!(loc.error_radius_history_km().len(), 2);
    }

    #[test]
    fn single_center_line_pass_is_ambiguous() {
        // Pass 0 overflies the emitter dead-center, so the Doppler curve has
        // no first-order cross-track sensitivity — the literature's
        // "ambiguity problem". The reported uncertainty must be honest about
        // it (enormous), and a second, offset pass must collapse it.
        let e = emitter();
        let scenario = PassScenario::reference(&e);
        let mut rng = SimRng::seed_from(42);
        let mut loc = SequentialLocalizer::new(e.initial_guess_nearby(0.8));
        loc.add_pass(scenario.synthesize_pass(0, &mut rng));
        let one = loc.estimate().unwrap().error_radius_km();
        loc.add_pass(scenario.synthesize_pass(1, &mut rng));
        let two = loc.estimate().unwrap().error_radius_km();
        assert!(
            one > 100.0,
            "degenerate geometry must report huge error, got {one}"
        );
        assert!(
            two < one / 10.0,
            "offset pass collapses ambiguity: {one} -> {two}"
        );
    }

    #[test]
    fn mixed_doppler_and_toa_improves_over_doppler_alone() {
        // Use the well-conditioned two-pass base, then add a TOA pass.
        let e = emitter();
        let scenario = PassScenario::reference(&e);
        let solve_with = |use_toa: bool, seed: u64| -> f64 {
            let mut rng = SimRng::seed_from(seed);
            let mut loc = SequentialLocalizer::new(e.initial_guess_nearby(0.8));
            loc.add_pass(scenario.synthesize_pass(0, &mut rng));
            loc.add_pass(scenario.synthesize_pass(1, &mut rng));
            if use_toa {
                loc.add_pass(scenario.synthesize_toa_pass(1, 0.5, &mut rng));
            }
            loc.estimate().unwrap().error_radius_km()
        };
        // Reported uncertainty must shrink when adding an independent
        // modality, whatever the noise realization.
        assert!(solve_with(true, 42) < solve_with(false, 42));
    }

    #[test]
    fn debug_is_informative() {
        let loc = SequentialLocalizer::new([0.5, 0.5, 4.0e8]);
        let s = format!("{loc:?}");
        assert!(s.contains("SequentialLocalizer"));
    }
}
