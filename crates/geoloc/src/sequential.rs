//! Sequential localization: accumulate passes, re-solve, track error.
//!
//! This is the computational core of the paper's QoS-enhancement loop: each
//! satellite that joins the coordination contributes its measurements, the
//! estimate is recomputed from the accumulated set, and the resulting
//! *estimated error* is what termination condition TC-1 compares against an
//! accuracy threshold.
//!
//! Two re-solve strategies are offered:
//!
//! * [`SequentialLocalizer::estimate`] — batch: re-solves over *all*
//!   accumulated measurements (cost grows with the chain length), solving
//!   directly over the boxed storage through the monomorphized fast path —
//!   no per-estimate `Vec<&dyn Observation>` rebuild.
//! * [`SequentialLocalizer::estimate_incremental`] — information-filter
//!   style: measurements already incorporated are summarized by an
//!   [`InformationPrior`] anchored at the previous solution, and each
//!   chain extension solves only over the *new* measurements plus that
//!   prior. When the solution moves further from the anchor than the
//!   linearization can support, the localizer transparently falls back to
//!   a full batch re-solve and rebuilds the prior (this is what happens
//!   when a second pass collapses the single-pass ground-track ambiguity).

use oaq_linalg::SMat;

use crate::wls::{Estimate, InformationPrior, Observation, SolveError, WlsSolver, STATE_DIM};

/// Prior state carried between incremental estimates.
#[derive(Debug, Clone, Copy)]
struct IncrementalState {
    /// How many leading observations are folded into `info`.
    folded: usize,
    /// Accumulated information `Σ w JᵀJ`, linearized at fold time.
    info: SMat<STATE_DIM>,
    /// The solution the information is anchored at.
    anchor: [f64; STATE_DIM],
}

/// Accumulates measurement passes and re-estimates after each.
///
/// See the crate-level example for end-to-end use.
pub struct SequentialLocalizer {
    observations: Vec<Box<dyn Observation + Send>>,
    passes: Vec<usize>,
    initial_guess: [f64; STATE_DIM],
    solver: WlsSolver,
    history: Vec<Estimate>,
    incremental: Option<IncrementalState>,
    relinearization_threshold: f64,
}

impl std::fmt::Debug for SequentialLocalizer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SequentialLocalizer")
            .field("observations", &self.observations.len())
            .field("passes", &self.passes.len())
            .field("estimates", &self.history.len())
            .finish()
    }
}

impl SequentialLocalizer {
    /// Creates a localizer that will start its first solve from
    /// `initial_guess` (e.g. the footprint center of the detecting
    /// satellite).
    #[must_use]
    pub fn new(initial_guess: [f64; STATE_DIM]) -> Self {
        SequentialLocalizer {
            observations: Vec::new(),
            passes: Vec::new(),
            initial_guess,
            solver: WlsSolver::new(),
            history: Vec::new(),
            incremental: None,
            relinearization_threshold: 1e-3,
        }
    }

    /// Replaces the solver configuration.
    #[must_use]
    pub fn with_solver(mut self, solver: WlsSolver) -> Self {
        self.solver = solver;
        self
    }

    /// Sets how far (in the solver's scaled step norm — radians plus
    /// relative frequency) an incremental solution may move from the
    /// prior's anchor before [`SequentialLocalizer::estimate_incremental`]
    /// falls back to a full batch re-solve. The default `1e-3`
    /// (≈ 6 km on the ground) keeps routine chain extensions incremental
    /// while forcing relinearization on ambiguity collapses.
    #[must_use]
    pub fn with_relinearization_threshold(mut self, threshold: f64) -> Self {
        self.relinearization_threshold = threshold;
        self
    }

    /// Adds one pass worth of measurements.
    pub fn add_pass<O>(&mut self, pass: Vec<O>)
    where
        O: Observation + Send + 'static,
    {
        self.passes.push(pass.len());
        self.observations.extend(
            pass.into_iter()
                .map(|o| Box::new(o) as Box<dyn Observation + Send>),
        );
    }

    /// Number of passes accumulated.
    #[must_use]
    pub fn num_passes(&self) -> usize {
        self.passes.len()
    }

    /// Total measurements accumulated.
    #[must_use]
    pub fn num_observations(&self) -> usize {
        self.observations.len()
    }

    /// Re-solves over all accumulated measurements, warm-starting from the
    /// previous estimate when one exists. Solves directly over the boxed
    /// storage (monomorphized fast path) — no reference-list rebuild.
    ///
    /// # Errors
    ///
    /// Propagates [`SolveError`] from the underlying WLS solve.
    pub fn estimate(&mut self) -> Result<Estimate, SolveError> {
        let start = self.history.last().map_or(self.initial_guess, |e| e.state);
        let est = self.solver.solve_obs(&self.observations, start)?;
        self.history.push(est.clone());
        Ok(est)
    }

    /// Re-solves incrementally: only the measurements added since the last
    /// incremental estimate enter the iteration; everything older is
    /// summarized by an [`InformationPrior`] anchored at the previous
    /// solution and folded in by rank-1 updates. Warm-starts from the
    /// anchor.
    ///
    /// Falls back to a full batch re-solve (and rebuilds the prior) when
    /// the solution moves further from the anchor than
    /// [`SequentialLocalizer::with_relinearization_threshold`] allows, so
    /// accuracy-critical transitions — e.g. a second pass collapsing the
    /// single-pass ambiguity — are never served by a stale linearization.
    ///
    /// # Errors
    ///
    /// Propagates [`SolveError`] from the underlying WLS solve.
    pub fn estimate_incremental(&mut self) -> Result<Estimate, SolveError> {
        let (est, extend) = match self.incremental {
            // First estimate: nothing folded yet — plain batch solve.
            None => (
                self.solver
                    .solve_obs(&self.observations, self.initial_guess)?,
                false,
            ),
            Some(ref inc) => {
                let prior = InformationPrior {
                    info: inc.info,
                    anchor: inc.anchor,
                };
                let est = self.solver.solve_obs_with_prior(
                    &self.observations[inc.folded..],
                    &prior,
                    inc.anchor,
                )?;
                let step = ((est.state[0] - inc.anchor[0]).powi(2)
                    + (est.state[1] - inc.anchor[1]).powi(2))
                .sqrt()
                    + (est.state[2] - inc.anchor[2]).abs() / inc.anchor[2].abs().max(1.0);
                if step > self.relinearization_threshold {
                    // The prior's linearization no longer covers the move:
                    // re-solve from scratch, warm-started at the fresher of
                    // the two states.
                    (self.solver.solve_obs(&self.observations, est.state)?, false)
                } else {
                    (est, true)
                }
            }
        };
        // Rebuild / extend the information summary at the new solution.
        let refreshed = if extend {
            // Extend: fold only the new measurements into the prior.
            let inc = self.incremental.as_ref().expect("extend implies a prior");
            let mut info = inc.info;
            for o in &self.observations[inc.folded..] {
                info.rank1_update(o.weight(), &o.jacobian_row(&est.state));
            }
            IncrementalState {
                folded: self.observations.len(),
                info,
                anchor: est.state,
            }
        } else {
            // First solve or relinearization: fold everything.
            let mut info = SMat::<STATE_DIM>::zeros();
            for o in &self.observations {
                info.rank1_update(o.weight(), &o.jacobian_row(&est.state));
            }
            IncrementalState {
                folded: self.observations.len(),
                info,
                anchor: est.state,
            }
        };
        self.incremental = Some(refreshed);
        self.history.push(est.clone());
        Ok(est)
    }

    /// The pre-fast-path reference behavior: rebuilds a
    /// `Vec<&dyn Observation>` and solves through the heap/dynamic-dispatch
    /// baseline. Kept for bench comparison and bit-identity regression
    /// tests against [`SequentialLocalizer::estimate`].
    ///
    /// # Errors
    ///
    /// Propagates [`SolveError`] from the underlying WLS solve.
    pub fn estimate_heap_dyn(&mut self) -> Result<Estimate, SolveError> {
        let start = self.history.last().map_or(self.initial_guess, |e| e.state);
        let refs: Vec<&dyn Observation> = self
            .observations
            .iter()
            .map(|b| b.as_ref() as &dyn Observation)
            .collect();
        let est = self.solver.solve_heap(&refs, start)?;
        self.history.push(est.clone());
        Ok(est)
    }

    /// The estimates produced so far, in order.
    #[must_use]
    pub fn history(&self) -> &[Estimate] {
        &self.history
    }

    /// The 1-σ error radii of the estimates so far (km) — the sequence the
    /// OAQ protocol watches for TC-1.
    #[must_use]
    pub fn error_radius_history_km(&self) -> Vec<f64> {
        self.history.iter().map(Estimate::error_radius_km).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emitter::Emitter;
    use crate::scenario::PassScenario;
    use oaq_orbit::units::Degrees;
    use oaq_orbit::GroundPoint;
    use oaq_sim::SimRng;

    fn emitter() -> Emitter {
        Emitter::new(
            GroundPoint::from_degrees(Degrees(30.0), Degrees(20.0)),
            400.0e6,
        )
    }

    #[test]
    fn sequential_passes_reduce_error() {
        let e = emitter();
        let scenario = PassScenario::reference(&e);
        let mut rng = SimRng::seed_from(11);
        let mut loc = SequentialLocalizer::new(e.initial_guess_nearby(1.0));

        let mut actual_errors = Vec::new();
        let mut reported_errors = Vec::new();
        for pass in 0..3 {
            loc.add_pass(scenario.synthesize_pass(pass, &mut rng));
            let est = loc.estimate().expect("solve");
            actual_errors.push(est.position_error_km(&e.position()));
            reported_errors.push(est.error_radius_km());
        }
        assert!(
            actual_errors[1] < actual_errors[0],
            "second pass improves: {actual_errors:?}"
        );
        assert!(
            reported_errors[2] < reported_errors[0],
            "reported error shrinks: {reported_errors:?}"
        );
        assert_eq!(loc.num_passes(), 3);
        assert_eq!(loc.num_observations(), 27);
    }

    #[test]
    fn reported_error_is_credible() {
        // Over several seeds the actual error should rarely exceed a few
        // multiples of the reported 1-σ radius.
        let e = emitter();
        let scenario = PassScenario::reference(&e);
        let mut within = 0;
        let n = 10;
        for seed in 0..n {
            let mut rng = SimRng::seed_from(100 + seed);
            let mut loc = SequentialLocalizer::new(e.initial_guess_nearby(0.8));
            loc.add_pass(scenario.synthesize_pass(0, &mut rng));
            loc.add_pass(scenario.synthesize_pass(1, &mut rng));
            let est = loc.estimate().expect("solve");
            if est.position_error_km(&e.position()) <= 4.0 * est.error_radius_km() {
                within += 1;
            }
        }
        assert!(within >= n - 2, "only {within}/{n} within 4 sigma");
    }

    #[test]
    fn estimate_without_passes_is_underdetermined() {
        let e = emitter();
        let mut loc = SequentialLocalizer::new(e.initial_guess_nearby(1.0));
        assert!(matches!(
            loc.estimate(),
            Err(SolveError::Underdetermined { observations: 0 })
        ));
    }

    #[test]
    fn history_accumulates() {
        let e = emitter();
        let scenario = PassScenario::reference(&e);
        let mut rng = SimRng::seed_from(3);
        let mut loc = SequentialLocalizer::new(e.initial_guess_nearby(1.0));
        loc.add_pass(scenario.synthesize_pass(0, &mut rng));
        loc.estimate().unwrap();
        loc.add_pass(scenario.synthesize_pass(1, &mut rng));
        loc.estimate().unwrap();
        assert_eq!(loc.history().len(), 2);
        assert_eq!(loc.error_radius_history_km().len(), 2);
    }

    #[test]
    fn single_center_line_pass_is_ambiguous() {
        // Pass 0 overflies the emitter dead-center, so the Doppler curve has
        // no first-order cross-track sensitivity — the literature's
        // "ambiguity problem". The reported uncertainty must be honest about
        // it (enormous), and a second, offset pass must collapse it.
        let e = emitter();
        let scenario = PassScenario::reference(&e);
        let mut rng = SimRng::seed_from(42);
        let mut loc = SequentialLocalizer::new(e.initial_guess_nearby(0.8));
        loc.add_pass(scenario.synthesize_pass(0, &mut rng));
        let one = loc.estimate().unwrap().error_radius_km();
        loc.add_pass(scenario.synthesize_pass(1, &mut rng));
        let two = loc.estimate().unwrap().error_radius_km();
        assert!(
            one > 100.0,
            "degenerate geometry must report huge error, got {one}"
        );
        assert!(
            two < one / 10.0,
            "offset pass collapses ambiguity: {one} -> {two}"
        );
    }

    #[test]
    fn mixed_doppler_and_toa_improves_over_doppler_alone() {
        // Use the well-conditioned two-pass base, then add a TOA pass.
        let e = emitter();
        let scenario = PassScenario::reference(&e);
        let solve_with = |use_toa: bool, seed: u64| -> f64 {
            let mut rng = SimRng::seed_from(seed);
            let mut loc = SequentialLocalizer::new(e.initial_guess_nearby(0.8));
            loc.add_pass(scenario.synthesize_pass(0, &mut rng));
            loc.add_pass(scenario.synthesize_pass(1, &mut rng));
            if use_toa {
                loc.add_pass(scenario.synthesize_toa_pass(1, 0.5, &mut rng));
            }
            loc.estimate().unwrap().error_radius_km()
        };
        // Reported uncertainty must shrink when adding an independent
        // modality, whatever the noise realization.
        assert!(solve_with(true, 42) < solve_with(false, 42));
    }

    #[test]
    fn debug_is_informative() {
        let loc = SequentialLocalizer::new([0.5, 0.5, 4.0e8]);
        let s = format!("{loc:?}");
        assert!(s.contains("SequentialLocalizer"));
    }

    #[test]
    fn fast_estimate_is_bit_identical_to_heap_dyn_reference() {
        // Two localizers fed identical measurement streams: the boxed
        // fast-path estimate must reproduce the pre-PR heap/dyn reference
        // bit for bit at every chain length.
        let e = emitter();
        let scenario = PassScenario::reference(&e);
        let mut rng_a = SimRng::seed_from(5);
        let mut rng_b = SimRng::seed_from(5);
        let mut fast = SequentialLocalizer::new(e.initial_guess_nearby(1.0));
        let mut heap = SequentialLocalizer::new(e.initial_guess_nearby(1.0));
        for pass in 0..3 {
            fast.add_pass(scenario.synthesize_pass(pass, &mut rng_a));
            heap.add_pass(scenario.synthesize_pass(pass, &mut rng_b));
            let f = fast.estimate().expect("fast solve");
            let h = heap.estimate_heap_dyn().expect("heap solve");
            assert_eq!(f.iterations, h.iterations);
            assert_eq!(f.cost.to_bits(), h.cost.to_bits());
            for (a, b) in f.state.iter().zip(&h.state) {
                assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn incremental_estimate_agrees_with_batch() {
        // After the ambiguity-collapsing second pass (which triggers the
        // relinearization fallback), further chain extensions are served
        // incrementally and must stay within solver tolerance of the batch
        // answer.
        let e = emitter();
        let scenario = PassScenario::reference(&e);
        let mut rng_a = SimRng::seed_from(9);
        let mut rng_b = SimRng::seed_from(9);
        let mut inc = SequentialLocalizer::new(e.initial_guess_nearby(0.8));
        let mut batch = SequentialLocalizer::new(e.initial_guess_nearby(0.8));
        for pass in 0..4 {
            inc.add_pass(scenario.synthesize_pass(pass % 2, &mut rng_a));
            batch.add_pass(scenario.synthesize_pass(pass % 2, &mut rng_b));
            let i = inc.estimate_incremental().expect("incremental solve");
            let b = batch.estimate().expect("batch solve");
            // Positions agree to well under the reported error radius.
            let d = i.position().great_circle_distance(&b.position()).value();
            assert!(
                d <= 0.05 * b.error_radius_km().max(0.1),
                "pass {pass}: incremental drifted {d} km from batch \
                 (radius {})",
                b.error_radius_km()
            );
        }
        assert_eq!(inc.history().len(), 4);
    }

    #[test]
    fn incremental_first_pass_matches_batch_exactly() {
        // With no prior yet, the incremental path IS the batch path.
        let e = emitter();
        let scenario = PassScenario::reference(&e);
        let mut rng_a = SimRng::seed_from(13);
        let mut rng_b = SimRng::seed_from(13);
        let mut inc = SequentialLocalizer::new(e.initial_guess_nearby(1.0));
        let mut batch = SequentialLocalizer::new(e.initial_guess_nearby(1.0));
        inc.add_pass(scenario.synthesize_pass(1, &mut rng_a));
        batch.add_pass(scenario.synthesize_pass(1, &mut rng_b));
        let i = inc.estimate_incremental().unwrap();
        let b = batch.estimate().unwrap();
        for (a, c) in i.state.iter().zip(&b.state) {
            assert_eq!(a.to_bits(), c.to_bits());
        }
    }

    #[test]
    fn incremental_resolves_single_pass_ambiguity() {
        // The scenario of `single_center_line_pass_is_ambiguous`, through
        // the incremental path: the fallback relinearization must collapse
        // the error just like a batch re-solve does.
        let e = emitter();
        let scenario = PassScenario::reference(&e);
        let mut rng = SimRng::seed_from(42);
        let mut loc = SequentialLocalizer::new(e.initial_guess_nearby(0.8));
        loc.add_pass(scenario.synthesize_pass(0, &mut rng));
        let one = loc.estimate_incremental().unwrap().error_radius_km();
        loc.add_pass(scenario.synthesize_pass(1, &mut rng));
        let two = loc.estimate_incremental().unwrap().error_radius_km();
        assert!(one > 100.0, "degenerate geometry reports huge error: {one}");
        assert!(
            two < one / 10.0,
            "fallback collapses ambiguity: {one} -> {two}"
        );
    }
}
