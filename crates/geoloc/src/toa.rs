//! Time-of-arrival (slant-range) measurements.
//!
//! A complement to Doppler: some payload configurations timestamp signal
//! arrival against a synchronized clock, which after multiplying by the
//! speed of light is a slant-range observation. Range observations are
//! insensitive to the carrier frequency (their Jacobian's `f0` component is
//! zero), so mixing TOA with Doppler improves the conditioning of the joint
//! estimate — one of the "diverse information sources" the paper's Section 3
//! overview refers to.

use oaq_orbit::geo::EARTH_RADIUS;
use oaq_orbit::units::Radians;
use oaq_sim::SimRng;

use crate::emitter::Emitter;
use crate::error::MeasurementError;
use crate::satstate::SatelliteState;
use crate::wls::{Observation, STATE_DIM};

/// One slant-range observation, in km.
#[derive(Debug, Clone, Copy)]
pub struct ToaMeasurement {
    satellite: SatelliteState,
    observed_km: f64,
    sigma_km: f64,
}

impl ToaMeasurement {
    /// Wraps an already-measured range, validating it.
    ///
    /// # Errors
    ///
    /// [`MeasurementError::InvalidSigma`] if `sigma_km` is not strictly
    /// positive and finite (its weight `1/σ²` would be `inf`/`NaN`), and
    /// [`MeasurementError::NonFiniteObserved`] for a NaN/infinite range.
    pub fn try_new(
        satellite: SatelliteState,
        observed_km: f64,
        sigma_km: f64,
    ) -> Result<Self, MeasurementError> {
        crate::error::validate_measurement(observed_km, sigma_km)?;
        Ok(ToaMeasurement {
            satellite,
            observed_km,
            sigma_km,
        })
    }

    /// Wraps an already-measured range.
    ///
    /// # Panics
    ///
    /// Panics if `sigma_km` is not strictly positive or the range is not
    /// finite; see [`ToaMeasurement::try_new`] for the non-panicking form.
    #[must_use]
    pub fn new(satellite: SatelliteState, observed_km: f64, sigma_km: f64) -> Self {
        match Self::try_new(satellite, observed_km, sigma_km) {
            Ok(m) => m,
            Err(e) => panic!("{e}"),
        }
    }

    /// Synthesizes a noisy range measurement of `emitter`.
    #[must_use]
    pub fn synthesize(
        satellite: SatelliteState,
        emitter: &Emitter,
        sigma_km: f64,
        rng: &mut SimRng,
    ) -> Self {
        let truth = satellite.range_to(&emitter.position_ecef_km());
        ToaMeasurement::new(satellite, rng.normal(truth, sigma_km), sigma_km)
    }
}

impl Observation for ToaMeasurement {
    fn predict(&self, x: &[f64; STATE_DIM]) -> f64 {
        let lat = x[0].clamp(
            -std::f64::consts::FRAC_PI_2 + 1e-12,
            std::f64::consts::FRAC_PI_2 - 1e-12,
        );
        let p = oaq_orbit::GroundPoint::new(Radians(lat), Radians(x[1]));
        let u = p.unit_vector();
        let r = EARTH_RADIUS.value();
        self.satellite.range_to(&[u[0] * r, u[1] * r, u[2] * r])
    }

    fn observed(&self) -> f64 {
        self.observed_km
    }

    fn sigma(&self) -> f64 {
        self.sigma_km
    }

    /// Closed-form gradient of the slant range `ρ = |s − t(lat, lon)|`:
    /// `∂ρ/∂θ = (d · d_θ)/ρ` with `d_θ = −R ∂u/∂θ`, and exactly zero in
    /// the carrier-frequency component. Validated against
    /// [`Observation::jacobian_row_fd`] by property test.
    fn jacobian_row(&self, x: &[f64; STATE_DIM]) -> [f64; STATE_DIM] {
        let lat = x[0].clamp(
            -std::f64::consts::FRAC_PI_2 + 1e-12,
            std::f64::consts::FRAC_PI_2 - 1e-12,
        );
        let (slat, clat) = lat.sin_cos();
        let (slon, clon) = x[1].sin_cos();
        let r = EARTH_RADIUS.value();
        let target = [r * clat * clon, r * clat * slon, r * slat];
        let t_lat = [-r * slat * clon, -r * slat * slon, r * clat];
        let t_lon = [-r * clat * slon, r * clat * clon, 0.0];
        let s = &self.satellite.position_km;
        let d = [s[0] - target[0], s[1] - target[1], s[2] - target[2]];
        let rho = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
        // (d · d_θ)/ρ with d_θ = −t_θ.
        let grad = |t_q: &[f64; 3]| -(d[0] * t_q[0] + d[1] * t_q[1] + d[2] * t_q[2]) / rho;
        [grad(&t_lat), grad(&t_lon), 0.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oaq_orbit::orbit::CircularOrbit;
    use oaq_orbit::units::{Degrees, Minutes};
    use oaq_orbit::GroundPoint;

    fn setup() -> (Emitter, SatelliteState) {
        let emitter = Emitter::new(
            GroundPoint::from_degrees(Degrees(30.0), Degrees(0.0)),
            400.0e6,
        );
        let orbit = CircularOrbit::new(Degrees(85.0).to_radians(), Radians(0.0), Minutes(90.0))
            .with_earth_rotation(false);
        (
            emitter,
            SatelliteState::on_orbit(&orbit, Radians(0.0), Minutes(6.0)),
        )
    }

    #[test]
    fn range_prediction_matches_truth() {
        let (emitter, sat) = setup();
        let mut rng = SimRng::seed_from(0);
        let m = ToaMeasurement::synthesize(sat, &emitter, 1e-9, &mut rng);
        let x = [
            emitter.position().lat().value(),
            emitter.position().lon().value(),
            emitter.frequency_hz(),
        ];
        assert!((m.predict(&x) - m.observed()).abs() < 1e-6);
        // LEO slant range is hundreds to thousands of km.
        assert!(m.observed() > 200.0 && m.observed() < 5000.0);
    }

    #[test]
    fn frequency_insensitive() {
        let (emitter, sat) = setup();
        let mut rng = SimRng::seed_from(1);
        let m = ToaMeasurement::synthesize(sat, &emitter, 0.1, &mut rng);
        let x = emitter.initial_guess_nearby(0.3);
        let row = m.jacobian_row(&x);
        assert_eq!(row[2], 0.0, "range does not depend on carrier frequency");
        assert!(row[0].abs() > 0.0);
    }

    #[test]
    fn noise_perturbs_observation() {
        let (emitter, sat) = setup();
        let mut rng = SimRng::seed_from(2);
        let clean = sat.range_to(&emitter.position_ecef_km());
        let m = ToaMeasurement::synthesize(sat, &emitter, 5.0, &mut rng);
        assert_ne!(m.observed(), clean);
        assert!((m.observed() - clean).abs() < 50.0, "within 10 sigma");
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn negative_sigma_rejected() {
        let (_, sat) = setup();
        let _ = ToaMeasurement::new(sat, 1000.0, -1.0);
    }

    #[test]
    fn try_new_surfaces_typed_errors() {
        use crate::error::MeasurementError;
        let (_, sat) = setup();
        assert!(matches!(
            ToaMeasurement::try_new(sat, 1000.0, 0.0),
            Err(MeasurementError::InvalidSigma { .. })
        ));
        assert!(matches!(
            ToaMeasurement::try_new(sat, f64::NAN, 1.0),
            Err(MeasurementError::NonFiniteObserved { .. })
        ));
        assert!(ToaMeasurement::try_new(sat, 1000.0, 0.5).is_ok());
    }

    #[test]
    fn analytic_jacobian_matches_finite_differences() {
        let (emitter, sat) = setup();
        let mut rng = SimRng::seed_from(8);
        let m = ToaMeasurement::synthesize(sat, &emitter, 0.5, &mut rng);
        for offset in [0.1, 0.5, 1.5] {
            let x = emitter.initial_guess_nearby(offset);
            let analytic = m.jacobian_row(&x);
            let fd = m.jacobian_row_fd(&x);
            for (a, f) in analytic.iter().zip(&fd) {
                let tol = 1e-6 * a.abs().max(f.abs()) + 1e-9;
                assert!((a - f).abs() <= tol, "analytic {a} vs fd {f}");
            }
        }
    }
}
