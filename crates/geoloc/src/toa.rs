//! Time-of-arrival (slant-range) measurements.
//!
//! A complement to Doppler: some payload configurations timestamp signal
//! arrival against a synchronized clock, which after multiplying by the
//! speed of light is a slant-range observation. Range observations are
//! insensitive to the carrier frequency (their Jacobian's `f0` component is
//! zero), so mixing TOA with Doppler improves the conditioning of the joint
//! estimate — one of the "diverse information sources" the paper's Section 3
//! overview refers to.

use oaq_orbit::geo::EARTH_RADIUS;
use oaq_orbit::units::Radians;
use oaq_sim::SimRng;

use crate::emitter::Emitter;
use crate::satstate::SatelliteState;
use crate::wls::{Observation, STATE_DIM};

/// One slant-range observation, in km.
#[derive(Debug, Clone, Copy)]
pub struct ToaMeasurement {
    satellite: SatelliteState,
    observed_km: f64,
    sigma_km: f64,
}

impl ToaMeasurement {
    /// Wraps an already-measured range.
    ///
    /// # Panics
    ///
    /// Panics if `sigma_km` is not strictly positive.
    #[must_use]
    pub fn new(satellite: SatelliteState, observed_km: f64, sigma_km: f64) -> Self {
        assert!(
            sigma_km.is_finite() && sigma_km > 0.0,
            "sigma must be positive"
        );
        ToaMeasurement {
            satellite,
            observed_km,
            sigma_km,
        }
    }

    /// Synthesizes a noisy range measurement of `emitter`.
    #[must_use]
    pub fn synthesize(
        satellite: SatelliteState,
        emitter: &Emitter,
        sigma_km: f64,
        rng: &mut SimRng,
    ) -> Self {
        let truth = satellite.range_to(&emitter.position_ecef_km());
        ToaMeasurement::new(satellite, rng.normal(truth, sigma_km), sigma_km)
    }
}

impl Observation for ToaMeasurement {
    fn predict(&self, x: &[f64; STATE_DIM]) -> f64 {
        let lat = x[0].clamp(
            -std::f64::consts::FRAC_PI_2 + 1e-12,
            std::f64::consts::FRAC_PI_2 - 1e-12,
        );
        let p = oaq_orbit::GroundPoint::new(Radians(lat), Radians(x[1]));
        let u = p.unit_vector();
        let r = EARTH_RADIUS.value();
        self.satellite.range_to(&[u[0] * r, u[1] * r, u[2] * r])
    }

    fn observed(&self) -> f64 {
        self.observed_km
    }

    fn sigma(&self) -> f64 {
        self.sigma_km
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oaq_orbit::orbit::CircularOrbit;
    use oaq_orbit::units::{Degrees, Minutes};
    use oaq_orbit::GroundPoint;

    fn setup() -> (Emitter, SatelliteState) {
        let emitter = Emitter::new(
            GroundPoint::from_degrees(Degrees(30.0), Degrees(0.0)),
            400.0e6,
        );
        let orbit = CircularOrbit::new(Degrees(85.0).to_radians(), Radians(0.0), Minutes(90.0))
            .with_earth_rotation(false);
        (
            emitter,
            SatelliteState::on_orbit(&orbit, Radians(0.0), Minutes(6.0)),
        )
    }

    #[test]
    fn range_prediction_matches_truth() {
        let (emitter, sat) = setup();
        let mut rng = SimRng::seed_from(0);
        let m = ToaMeasurement::synthesize(sat, &emitter, 1e-9, &mut rng);
        let x = [
            emitter.position().lat().value(),
            emitter.position().lon().value(),
            emitter.frequency_hz(),
        ];
        assert!((m.predict(&x) - m.observed()).abs() < 1e-6);
        // LEO slant range is hundreds to thousands of km.
        assert!(m.observed() > 200.0 && m.observed() < 5000.0);
    }

    #[test]
    fn frequency_insensitive() {
        let (emitter, sat) = setup();
        let mut rng = SimRng::seed_from(1);
        let m = ToaMeasurement::synthesize(sat, &emitter, 0.1, &mut rng);
        let x = emitter.initial_guess_nearby(0.3);
        let row = m.jacobian_row(&x);
        assert_eq!(row[2], 0.0, "range does not depend on carrier frequency");
        assert!(row[0].abs() > 0.0);
    }

    #[test]
    fn noise_perturbs_observation() {
        let (emitter, sat) = setup();
        let mut rng = SimRng::seed_from(2);
        let clean = sat.range_to(&emitter.position_ecef_km());
        let m = ToaMeasurement::synthesize(sat, &emitter, 5.0, &mut rng);
        assert_ne!(m.observed(), clean);
        assert!((m.observed() - clean).abs() < 50.0, "within 10 sigma");
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn negative_sigma_rejected() {
        let (_, sat) = setup();
        let _ = ToaMeasurement::new(sat, 1000.0, -1.0);
    }
}
