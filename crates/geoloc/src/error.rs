//! Typed construction errors for measurement models.

/// Why a measurement could not be constructed.
///
/// A non-positive or non-finite σ would silently poison the WLS normal
/// equations (`weight = 1/σ²` becomes `inf`/`NaN`), so observation
/// constructors validate it up front and surface this typed error through
/// the `try_new` constructors (the panicking `new` constructors wrap them).
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum MeasurementError {
    /// The measurement standard deviation was zero, negative or non-finite.
    InvalidSigma {
        /// The rejected value.
        sigma: f64,
    },
    /// The observed value was NaN or infinite.
    NonFiniteObserved {
        /// The rejected value.
        value: f64,
    },
}

impl std::fmt::Display for MeasurementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeasurementError::InvalidSigma { sigma } => {
                write!(f, "sigma must be positive and finite, got {sigma}")
            }
            MeasurementError::NonFiniteObserved { value } => {
                write!(f, "observed value must be finite, got {value}")
            }
        }
    }
}

impl std::error::Error for MeasurementError {}

/// Validates the (σ, observed) pair shared by every measurement model.
pub(crate) fn validate_measurement(observed: f64, sigma: f64) -> Result<(), MeasurementError> {
    if !(sigma.is_finite() && sigma > 0.0) {
        return Err(MeasurementError::InvalidSigma { sigma });
    }
    if !observed.is_finite() {
        return Err(MeasurementError::NonFiniteObserved { value: observed });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MeasurementError::InvalidSigma { sigma: -1.0 };
        assert!(e.to_string().contains("sigma must be positive"));
        let e = MeasurementError::NonFiniteObserved { value: f64::NAN };
        assert!(e.to_string().contains("finite"));
    }

    #[test]
    fn validation_rules() {
        assert!(validate_measurement(1.0, 1.0).is_ok());
        assert!(matches!(
            validate_measurement(1.0, 0.0),
            Err(MeasurementError::InvalidSigma { .. })
        ));
        assert!(matches!(
            validate_measurement(1.0, f64::NAN),
            Err(MeasurementError::InvalidSigma { .. })
        ));
        assert!(matches!(
            validate_measurement(f64::INFINITY, 1.0),
            Err(MeasurementError::NonFiniteObserved { .. })
        ));
    }
}
