//! Doppler-shift measurements (Levanon-style single/dual-satellite
//! geolocation).

use oaq_orbit::geo::EARTH_RADIUS;
use oaq_orbit::units::Radians;
use oaq_sim::SimRng;

use crate::emitter::Emitter;
use crate::error::MeasurementError;
use crate::satstate::SatelliteState;
use crate::wls::{Observation, STATE_DIM};
use crate::SPEED_OF_LIGHT_KM_S;

fn dot(a: &[f64; 3], b: &[f64; 3]) -> f64 {
    a[0] * b[0] + a[1] * b[1] + a[2] * b[2]
}

/// One Doppler observation: the received frequency of the emitter's carrier
/// at a satellite whose kinematic state is known.
///
/// Model: `f_obs = f0 · (1 − ρ̇ / c)`, where `ρ̇` is the range rate from the
/// satellite to the hypothesized emitter position. The unknowns are the
/// emitter position *and* its carrier `f0`, exactly the observability
/// structure of the LEO Doppler-geolocation literature the paper cites —
/// including its left/right ground-track ambiguity, which the sequential
/// accumulation of passes resolves.
#[derive(Debug, Clone, Copy)]
pub struct DopplerMeasurement {
    satellite: SatelliteState,
    observed_hz: f64,
    sigma_hz: f64,
}

impl DopplerMeasurement {
    /// Wraps an already-measured value, validating it.
    ///
    /// # Errors
    ///
    /// [`MeasurementError::InvalidSigma`] if `sigma_hz` is not strictly
    /// positive and finite (its weight `1/σ²` would be `inf`/`NaN`), and
    /// [`MeasurementError::NonFiniteObserved`] for a NaN/infinite value.
    pub fn try_new(
        satellite: SatelliteState,
        observed_hz: f64,
        sigma_hz: f64,
    ) -> Result<Self, MeasurementError> {
        crate::error::validate_measurement(observed_hz, sigma_hz)?;
        Ok(DopplerMeasurement {
            satellite,
            observed_hz,
            sigma_hz,
        })
    }

    /// Wraps an already-measured value.
    ///
    /// # Panics
    ///
    /// Panics if `sigma_hz` is not strictly positive or the value is not
    /// finite; see [`DopplerMeasurement::try_new`] for the non-panicking
    /// form.
    #[must_use]
    pub fn new(satellite: SatelliteState, observed_hz: f64, sigma_hz: f64) -> Self {
        match Self::try_new(satellite, observed_hz, sigma_hz) {
            Ok(m) => m,
            Err(e) => panic!("{e}"),
        }
    }

    /// Synthesizes a noisy measurement of `emitter` from `satellite`
    /// (the substitution for real RF hardware; see crate docs).
    #[must_use]
    pub fn synthesize(
        satellite: SatelliteState,
        emitter: &Emitter,
        sigma_hz: f64,
        rng: &mut SimRng,
    ) -> Self {
        let target = emitter.position_ecef_km();
        let rate = satellite.range_rate_to(&target);
        let truth = emitter.frequency_hz() * (1.0 - rate / SPEED_OF_LIGHT_KM_S);
        DopplerMeasurement::new(satellite, rng.normal(truth, sigma_hz), sigma_hz)
    }

    /// The satellite state this measurement was taken from.
    #[must_use]
    pub fn satellite(&self) -> &SatelliteState {
        &self.satellite
    }
}

impl Observation for DopplerMeasurement {
    fn predict(&self, x: &[f64; STATE_DIM]) -> f64 {
        let lat = x[0].clamp(
            -std::f64::consts::FRAC_PI_2 + 1e-12,
            std::f64::consts::FRAC_PI_2 - 1e-12,
        );
        let p = oaq_orbit::GroundPoint::new(Radians(lat), Radians(x[1]));
        let u = p.unit_vector();
        let r = EARTH_RADIUS.value();
        let target = [u[0] * r, u[1] * r, u[2] * r];
        let rate = self.satellite.range_rate_to(&target);
        x[2] * (1.0 - rate / SPEED_OF_LIGHT_KM_S)
    }

    fn observed(&self) -> f64 {
        self.observed_hz
    }

    fn sigma(&self) -> f64 {
        self.sigma_hz
    }

    /// Closed-form gradient of `f = x₂ (1 − ρ̇/c)`: with `d = s − t(lat,lon)`
    /// the satellite→target offset, `ρ = |d|` and `ρ̇ = v·d/ρ`,
    ///
    /// `∂ρ̇/∂θ = (v·d_θ)/ρ − ρ̇ (d·d_θ)/ρ²`,  `d_θ = −R ∂u/∂θ`,
    ///
    /// so `∂f/∂θ = −x₂ ∂ρ̇/∂θ / c` for θ ∈ {lat, lon} and
    /// `∂f/∂f₀ = 1 − ρ̇/c`. Validated against the finite-difference
    /// reference [`Observation::jacobian_row_fd`] by property test and in
    /// the E19 bench.
    fn jacobian_row(&self, x: &[f64; STATE_DIM]) -> [f64; STATE_DIM] {
        let lat = x[0].clamp(
            -std::f64::consts::FRAC_PI_2 + 1e-12,
            std::f64::consts::FRAC_PI_2 - 1e-12,
        );
        let (slat, clat) = lat.sin_cos();
        let (slon, clon) = x[1].sin_cos();
        let r = EARTH_RADIUS.value();
        let target = [r * clat * clon, r * clat * slon, r * slat];
        // Target partials: t_θ = R ∂u/∂θ (d_θ = −t_θ).
        let t_lat = [-r * slat * clon, -r * slat * slon, r * clat];
        let t_lon = [-r * clat * slon, r * clat * clon, 0.0];
        let s = &self.satellite;
        let d = [
            s.position_km[0] - target[0],
            s.position_km[1] - target[1],
            s.position_km[2] - target[2],
        ];
        let rho = dot(&d, &d).sqrt();
        let v = &s.velocity_km_s;
        let rho_dot = dot(v, &d) / rho;
        let drho_dot = |t_q: &[f64; 3]| {
            let d_q = [-t_q[0], -t_q[1], -t_q[2]];
            (dot(v, &d_q) - rho_dot * dot(&d, &d_q) / rho) / rho
        };
        let scale = -x[2] / SPEED_OF_LIGHT_KM_S;
        [
            scale * drho_dot(&t_lat),
            scale * drho_dot(&t_lon),
            1.0 - rho_dot / SPEED_OF_LIGHT_KM_S,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oaq_orbit::orbit::CircularOrbit;
    use oaq_orbit::units::{Degrees, Minutes};
    use oaq_orbit::GroundPoint;

    fn setup() -> (Emitter, SatelliteState) {
        let emitter = Emitter::new(
            GroundPoint::from_degrees(Degrees(30.0), Degrees(0.0)),
            400.0e6,
        );
        let orbit = CircularOrbit::new(Degrees(85.0).to_radians(), Radians(0.0), Minutes(90.0))
            .with_earth_rotation(false);
        let sat = SatelliteState::on_orbit(&orbit, Radians(0.0), Minutes(5.0));
        (emitter, sat)
    }

    #[test]
    fn prediction_at_truth_matches_noiseless_measurement() {
        let (emitter, sat) = setup();
        let mut rng = SimRng::seed_from(0);
        // Tiny sigma: the "noisy" value is essentially the truth.
        let m = DopplerMeasurement::synthesize(sat, &emitter, 1e-9, &mut rng);
        let truth_state = [
            emitter.position().lat().value(),
            emitter.position().lon().value(),
            emitter.frequency_hz(),
        ];
        assert!((m.predict(&truth_state) - m.observed()).abs() < 1e-6);
    }

    #[test]
    fn approaching_satellite_sees_blue_shift() {
        let (emitter, _) = setup();
        let orbit = CircularOrbit::new(Degrees(85.0).to_radians(), Radians(0.0), Minutes(90.0))
            .with_earth_rotation(false);
        // The satellite crosses the emitter's latitude (~30°) around
        // u = asin(sin30/sin85) → t ≈ 7.6 min; earlier it approaches.
        let approaching = SatelliteState::on_orbit(&orbit, Radians(0.0), Minutes(3.0));
        let mut rng = SimRng::seed_from(1);
        let m = DopplerMeasurement::synthesize(approaching, &emitter, 1e-9, &mut rng);
        assert!(
            m.observed() > emitter.frequency_hz(),
            "approach must raise the received frequency"
        );
    }

    #[test]
    fn jacobian_row_is_finite_and_nonzero() {
        let (emitter, sat) = setup();
        let mut rng = SimRng::seed_from(2);
        let m = DopplerMeasurement::synthesize(sat, &emitter, 1.0, &mut rng);
        let x = emitter.initial_guess_nearby(0.5);
        let row = m.jacobian_row(&x);
        assert!(row.iter().all(|v| v.is_finite()));
        assert!(row[0].abs() > 0.0, "latitude sensitivity");
        // ∂f/∂f0 ≈ 1 − ρ̇/c ≈ 1.
        assert!((row[2] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn weight_is_inverse_variance() {
        let (emitter, sat) = setup();
        let mut rng = SimRng::seed_from(3);
        let m = DopplerMeasurement::synthesize(sat, &emitter, 2.0, &mut rng);
        assert!((m.weight() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn zero_sigma_rejected() {
        let (_, sat) = setup();
        let _ = DopplerMeasurement::new(sat, 1.0, 0.0);
    }

    #[test]
    fn try_new_surfaces_typed_errors() {
        use crate::error::MeasurementError;
        let (_, sat) = setup();
        assert!(matches!(
            DopplerMeasurement::try_new(sat, 1.0, f64::NAN),
            Err(MeasurementError::InvalidSigma { .. })
        ));
        assert!(matches!(
            DopplerMeasurement::try_new(sat, f64::INFINITY, 1.0),
            Err(MeasurementError::NonFiniteObserved { .. })
        ));
        assert!(DopplerMeasurement::try_new(sat, 4.0e8, 1.0).is_ok());
    }

    #[test]
    fn analytic_jacobian_matches_finite_differences() {
        let (emitter, sat) = setup();
        let mut rng = SimRng::seed_from(7);
        let m = DopplerMeasurement::synthesize(sat, &emitter, 1.0, &mut rng);
        for offset in [0.1, 0.5, 1.5] {
            let x = emitter.initial_guess_nearby(offset);
            let analytic = m.jacobian_row(&x);
            let fd = m.jacobian_row_fd(&x);
            for (a, f) in analytic.iter().zip(&fd) {
                let tol = 1e-6 * a.abs().max(f.abs()) + 1e-9;
                assert!((a - f).abs() <= tol, "analytic {a} vs fd {f}");
            }
        }
    }
}
