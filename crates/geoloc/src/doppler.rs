//! Doppler-shift measurements (Levanon-style single/dual-satellite
//! geolocation).

use oaq_orbit::geo::EARTH_RADIUS;
use oaq_orbit::units::Radians;
use oaq_sim::SimRng;

use crate::emitter::Emitter;
use crate::satstate::SatelliteState;
use crate::wls::{Observation, STATE_DIM};
use crate::SPEED_OF_LIGHT_KM_S;

/// One Doppler observation: the received frequency of the emitter's carrier
/// at a satellite whose kinematic state is known.
///
/// Model: `f_obs = f0 · (1 − ρ̇ / c)`, where `ρ̇` is the range rate from the
/// satellite to the hypothesized emitter position. The unknowns are the
/// emitter position *and* its carrier `f0`, exactly the observability
/// structure of the LEO Doppler-geolocation literature the paper cites —
/// including its left/right ground-track ambiguity, which the sequential
/// accumulation of passes resolves.
#[derive(Debug, Clone, Copy)]
pub struct DopplerMeasurement {
    satellite: SatelliteState,
    observed_hz: f64,
    sigma_hz: f64,
}

impl DopplerMeasurement {
    /// Wraps an already-measured value.
    ///
    /// # Panics
    ///
    /// Panics if `sigma_hz` is not strictly positive.
    #[must_use]
    pub fn new(satellite: SatelliteState, observed_hz: f64, sigma_hz: f64) -> Self {
        assert!(
            sigma_hz.is_finite() && sigma_hz > 0.0,
            "sigma must be positive"
        );
        DopplerMeasurement {
            satellite,
            observed_hz,
            sigma_hz,
        }
    }

    /// Synthesizes a noisy measurement of `emitter` from `satellite`
    /// (the substitution for real RF hardware; see crate docs).
    #[must_use]
    pub fn synthesize(
        satellite: SatelliteState,
        emitter: &Emitter,
        sigma_hz: f64,
        rng: &mut SimRng,
    ) -> Self {
        let target = emitter.position_ecef_km();
        let rate = satellite.range_rate_to(&target);
        let truth = emitter.frequency_hz() * (1.0 - rate / SPEED_OF_LIGHT_KM_S);
        DopplerMeasurement::new(satellite, rng.normal(truth, sigma_hz), sigma_hz)
    }

    /// The satellite state this measurement was taken from.
    #[must_use]
    pub fn satellite(&self) -> &SatelliteState {
        &self.satellite
    }
}

impl Observation for DopplerMeasurement {
    fn predict(&self, x: &[f64; STATE_DIM]) -> f64 {
        let lat = x[0].clamp(
            -std::f64::consts::FRAC_PI_2 + 1e-12,
            std::f64::consts::FRAC_PI_2 - 1e-12,
        );
        let p = oaq_orbit::GroundPoint::new(Radians(lat), Radians(x[1]));
        let u = p.unit_vector();
        let r = EARTH_RADIUS.value();
        let target = [u[0] * r, u[1] * r, u[2] * r];
        let rate = self.satellite.range_rate_to(&target);
        x[2] * (1.0 - rate / SPEED_OF_LIGHT_KM_S)
    }

    fn observed(&self) -> f64 {
        self.observed_hz
    }

    fn sigma(&self) -> f64 {
        self.sigma_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oaq_orbit::orbit::CircularOrbit;
    use oaq_orbit::units::{Degrees, Minutes};
    use oaq_orbit::GroundPoint;

    fn setup() -> (Emitter, SatelliteState) {
        let emitter = Emitter::new(
            GroundPoint::from_degrees(Degrees(30.0), Degrees(0.0)),
            400.0e6,
        );
        let orbit = CircularOrbit::new(Degrees(85.0).to_radians(), Radians(0.0), Minutes(90.0))
            .with_earth_rotation(false);
        let sat = SatelliteState::on_orbit(&orbit, Radians(0.0), Minutes(5.0));
        (emitter, sat)
    }

    #[test]
    fn prediction_at_truth_matches_noiseless_measurement() {
        let (emitter, sat) = setup();
        let mut rng = SimRng::seed_from(0);
        // Tiny sigma: the "noisy" value is essentially the truth.
        let m = DopplerMeasurement::synthesize(sat, &emitter, 1e-9, &mut rng);
        let truth_state = [
            emitter.position().lat().value(),
            emitter.position().lon().value(),
            emitter.frequency_hz(),
        ];
        assert!((m.predict(&truth_state) - m.observed()).abs() < 1e-6);
    }

    #[test]
    fn approaching_satellite_sees_blue_shift() {
        let (emitter, _) = setup();
        let orbit = CircularOrbit::new(Degrees(85.0).to_radians(), Radians(0.0), Minutes(90.0))
            .with_earth_rotation(false);
        // The satellite crosses the emitter's latitude (~30°) around
        // u = asin(sin30/sin85) → t ≈ 7.6 min; earlier it approaches.
        let approaching = SatelliteState::on_orbit(&orbit, Radians(0.0), Minutes(3.0));
        let mut rng = SimRng::seed_from(1);
        let m = DopplerMeasurement::synthesize(approaching, &emitter, 1e-9, &mut rng);
        assert!(
            m.observed() > emitter.frequency_hz(),
            "approach must raise the received frequency"
        );
    }

    #[test]
    fn jacobian_row_is_finite_and_nonzero() {
        let (emitter, sat) = setup();
        let mut rng = SimRng::seed_from(2);
        let m = DopplerMeasurement::synthesize(sat, &emitter, 1.0, &mut rng);
        let x = emitter.initial_guess_nearby(0.5);
        let row = m.jacobian_row(&x);
        assert!(row.iter().all(|v| v.is_finite()));
        assert!(row[0].abs() > 0.0, "latitude sensitivity");
        // ∂f/∂f0 ≈ 1 − ρ̇/c ≈ 1.
        assert!((row[2] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn weight_is_inverse_variance() {
        let (emitter, sat) = setup();
        let mut rng = SimRng::seed_from(3);
        let m = DopplerMeasurement::synthesize(sat, &emitter, 2.0, &mut rng);
        assert!((m.weight() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn zero_sigma_rejected() {
        let (_, sat) = setup();
        let _ = DopplerMeasurement::new(sat, 1.0, 0.0);
    }
}
