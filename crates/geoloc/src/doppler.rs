//! Doppler-shift measurements (Levanon-style single/dual-satellite
//! geolocation).

use oaq_orbit::geo::EARTH_RADIUS;
use oaq_orbit::units::Radians;
use oaq_sim::SimRng;

use crate::batch::{BatchObservation, SoaColumns};
use crate::emitter::Emitter;
use crate::error::MeasurementError;
use crate::satstate::SatelliteState;
use crate::wls::{Observation, STATE_DIM};
use crate::SPEED_OF_LIGHT_KM_S;

fn dot(a: &[f64; 3], b: &[f64; 3]) -> f64 {
    a[0] * b[0] + a[1] * b[1] + a[2] * b[2]
}

/// Trial-state geometry shared by every Doppler observation of one emitter:
/// the hypothesized target position and its partials depend only on the
/// state `x`, not on the satellite, so the batch solver hoists them out of
/// the per-observation loop (one trig evaluation per trial state instead of
/// one per measurement — the dominant cost of the un-hoisted solve).
///
/// Bit-identity is load-bearing: `predict` builds the target through
/// [`oaq_orbit::GroundPoint::unit_vector`] while `jacobian_row` builds it
/// from `sin_cos` products in a different association order, and the two
/// can differ in the last ulp. The geom therefore captures *both* values,
/// each computed by exactly the operations of the path it replaces.
#[derive(Debug, Clone, Copy)]
pub struct DopplerGeom {
    /// Target ECEF position as `predict` computes it (`GroundPoint` route,
    /// longitude wrapped into `(-π, π]`).
    target_predict: [f64; 3],
    /// Target ECEF position as `jacobian_row` computes it (`sin_cos` route).
    target: [f64; 3],
    /// `R ∂u/∂lat` — target partial w.r.t. latitude.
    t_lat: [f64; 3],
    /// `R ∂u/∂lon` — target partial w.r.t. longitude.
    t_lon: [f64; 3],
}

impl DopplerGeom {
    /// Computes the shared geometry at trial state `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x[1]` is non-finite (exactly as `predict` does through
    /// [`oaq_orbit::GroundPoint::new`]).
    #[must_use]
    pub fn for_state(x: &[f64; STATE_DIM]) -> Self {
        // The predict route, operation for operation.
        let lat = x[0].clamp(
            -std::f64::consts::FRAC_PI_2 + 1e-12,
            std::f64::consts::FRAC_PI_2 - 1e-12,
        );
        let p = oaq_orbit::GroundPoint::new(Radians(lat), Radians(x[1]));
        let u = p.unit_vector();
        let r = EARTH_RADIUS.value();
        let target_predict = [u[0] * r, u[1] * r, u[2] * r];
        // The jacobian_row route, operation for operation.
        let (slat, clat) = lat.sin_cos();
        let (slon, clon) = x[1].sin_cos();
        let target = [r * clat * clon, r * clat * slon, r * slat];
        let t_lat = [-r * slat * clon, -r * slat * slon, r * clat];
        let t_lon = [-r * clat * slon, r * clat * clon, 0.0];
        DopplerGeom {
            target_predict,
            target,
            t_lat,
            t_lon,
        }
    }
}

/// One Doppler observation: the received frequency of the emitter's carrier
/// at a satellite whose kinematic state is known.
///
/// Model: `f_obs = f0 · (1 − ρ̇ / c)`, where `ρ̇` is the range rate from the
/// satellite to the hypothesized emitter position. The unknowns are the
/// emitter position *and* its carrier `f0`, exactly the observability
/// structure of the LEO Doppler-geolocation literature the paper cites —
/// including its left/right ground-track ambiguity, which the sequential
/// accumulation of passes resolves.
#[derive(Debug, Clone, Copy)]
pub struct DopplerMeasurement {
    satellite: SatelliteState,
    observed_hz: f64,
    sigma_hz: f64,
}

impl DopplerMeasurement {
    /// Wraps an already-measured value, validating it.
    ///
    /// # Errors
    ///
    /// [`MeasurementError::InvalidSigma`] if `sigma_hz` is not strictly
    /// positive and finite (its weight `1/σ²` would be `inf`/`NaN`), and
    /// [`MeasurementError::NonFiniteObserved`] for a NaN/infinite value.
    pub fn try_new(
        satellite: SatelliteState,
        observed_hz: f64,
        sigma_hz: f64,
    ) -> Result<Self, MeasurementError> {
        crate::error::validate_measurement(observed_hz, sigma_hz)?;
        Ok(DopplerMeasurement {
            satellite,
            observed_hz,
            sigma_hz,
        })
    }

    /// Wraps an already-measured value.
    ///
    /// # Panics
    ///
    /// Panics if `sigma_hz` is not strictly positive or the value is not
    /// finite; see [`DopplerMeasurement::try_new`] for the non-panicking
    /// form.
    #[must_use]
    pub fn new(satellite: SatelliteState, observed_hz: f64, sigma_hz: f64) -> Self {
        match Self::try_new(satellite, observed_hz, sigma_hz) {
            Ok(m) => m,
            Err(e) => panic!("{e}"),
        }
    }

    /// Synthesizes a noisy measurement of `emitter` from `satellite`
    /// (the substitution for real RF hardware; see crate docs).
    #[must_use]
    pub fn synthesize(
        satellite: SatelliteState,
        emitter: &Emitter,
        sigma_hz: f64,
        rng: &mut SimRng,
    ) -> Self {
        let target = emitter.position_ecef_km();
        let rate = satellite.range_rate_to(&target);
        let truth = emitter.frequency_hz() * (1.0 - rate / SPEED_OF_LIGHT_KM_S);
        DopplerMeasurement::new(satellite, rng.normal(truth, sigma_hz), sigma_hz)
    }

    /// The satellite state this measurement was taken from.
    #[must_use]
    pub fn satellite(&self) -> &SatelliteState {
        &self.satellite
    }
}

impl Observation for DopplerMeasurement {
    fn predict(&self, x: &[f64; STATE_DIM]) -> f64 {
        let lat = x[0].clamp(
            -std::f64::consts::FRAC_PI_2 + 1e-12,
            std::f64::consts::FRAC_PI_2 - 1e-12,
        );
        let p = oaq_orbit::GroundPoint::new(Radians(lat), Radians(x[1]));
        let u = p.unit_vector();
        let r = EARTH_RADIUS.value();
        let target = [u[0] * r, u[1] * r, u[2] * r];
        let rate = self.satellite.range_rate_to(&target);
        x[2] * (1.0 - rate / SPEED_OF_LIGHT_KM_S)
    }

    fn observed(&self) -> f64 {
        self.observed_hz
    }

    fn sigma(&self) -> f64 {
        self.sigma_hz
    }

    /// Closed-form gradient of `f = x₂ (1 − ρ̇/c)`: with `d = s − t(lat,lon)`
    /// the satellite→target offset, `ρ = |d|` and `ρ̇ = v·d/ρ`,
    ///
    /// `∂ρ̇/∂θ = (v·d_θ)/ρ − ρ̇ (d·d_θ)/ρ²`,  `d_θ = −R ∂u/∂θ`,
    ///
    /// so `∂f/∂θ = −x₂ ∂ρ̇/∂θ / c` for θ ∈ {lat, lon} and
    /// `∂f/∂f₀ = 1 − ρ̇/c`. Validated against the finite-difference
    /// reference [`Observation::jacobian_row_fd`] by property test and in
    /// the E19 bench.
    fn jacobian_row(&self, x: &[f64; STATE_DIM]) -> [f64; STATE_DIM] {
        let lat = x[0].clamp(
            -std::f64::consts::FRAC_PI_2 + 1e-12,
            std::f64::consts::FRAC_PI_2 - 1e-12,
        );
        let (slat, clat) = lat.sin_cos();
        let (slon, clon) = x[1].sin_cos();
        let r = EARTH_RADIUS.value();
        let target = [r * clat * clon, r * clat * slon, r * slat];
        // Target partials: t_θ = R ∂u/∂θ (d_θ = −t_θ).
        let t_lat = [-r * slat * clon, -r * slat * slon, r * clat];
        let t_lon = [-r * clat * slon, r * clat * clon, 0.0];
        let s = &self.satellite;
        let d = [
            s.position_km[0] - target[0],
            s.position_km[1] - target[1],
            s.position_km[2] - target[2],
        ];
        let rho = dot(&d, &d).sqrt();
        let v = &s.velocity_km_s;
        let rho_dot = dot(v, &d) / rho;
        let drho_dot = |t_q: &[f64; 3]| {
            let d_q = [-t_q[0], -t_q[1], -t_q[2]];
            (dot(v, &d_q) - rho_dot * dot(&d, &d_q) / rho) / rho
        };
        let scale = -x[2] / SPEED_OF_LIGHT_KM_S;
        [
            scale * drho_dot(&t_lat),
            scale * drho_dot(&t_lon),
            1.0 - rho_dot / SPEED_OF_LIGHT_KM_S,
        ]
    }
}

/// The Doppler batch's structure-of-arrays columns: each queued
/// measurement's satellite kinematics split into six contiguous `f64`
/// columns. The batch solver's inner loops stream these columns instead of
/// striding over 64-byte [`DopplerMeasurement`] records, and every element
/// of the two kernels is an independent IEEE expression (no cross-element
/// accumulation), so the compiler vectorizes the `sqrt`/`div` chains —
/// bitwise harmless, since element-wise SIMD lanes round exactly like the
/// scalar ops they replace.
#[derive(Debug, Clone, Default)]
pub struct DopplerSoa {
    px: Vec<f64>,
    py: Vec<f64>,
    pz: Vec<f64>,
    vx: Vec<f64>,
    vy: Vec<f64>,
    vz: Vec<f64>,
}

impl SoaColumns<DopplerMeasurement> for DopplerSoa {
    type Geom = DopplerGeom;

    fn clear(&mut self) {
        self.px.clear();
        self.py.clear();
        self.pz.clear();
        self.vx.clear();
        self.vy.clear();
        self.vz.clear();
    }

    fn push(&mut self, o: &DopplerMeasurement) {
        let p = &o.satellite.position_km;
        let v = &o.satellite.velocity_km_s;
        self.px.push(p[0]);
        self.py.push(p[1]);
        self.pz.push(p[2]);
        self.vx.push(v[0]);
        self.vy.push(v[1]);
        self.vz.push(v[2]);
    }

    /// `predict_hoisted` as a column kernel: per element, exactly the
    /// operations of [`SatelliteState::range_rate_to`] (same association
    /// order, same `r == 0` guard) followed by the frequency model.
    fn predict_into(
        &self,
        lo: usize,
        hi: usize,
        geom: &DopplerGeom,
        x: &[f64; STATE_DIM],
        out: &mut [f64],
    ) {
        let m = hi - lo;
        assert_eq!(out.len(), m);
        let (px, py, pz) = (&self.px[lo..hi], &self.py[lo..hi], &self.pz[lo..hi]);
        let (vx, vy, vz) = (&self.vx[lo..hi], &self.vy[lo..hi], &self.vz[lo..hi]);
        let t = &geom.target_predict;
        let x2 = x[2];
        for k in 0..m {
            let d0 = px[k] - t[0];
            let d1 = py[k] - t[1];
            let d2 = pz[k] - t[2];
            let r = (d0 * d0 + d1 * d1 + d2 * d2).sqrt();
            let rate = if r == 0.0 {
                0.0
            } else {
                (vx[k] * d0 + vy[k] * d1 + vz[k] * d2) / r
            };
            out[k] = x2 * (1.0 - rate / SPEED_OF_LIGHT_KM_S);
        }
    }

    /// `jacobian_row_hoisted` as a column kernel: the `dot` products are
    /// expanded in the same `a₀b₀ + a₁b₁ + a₂b₂` association order, `d_q`
    /// negations included, so every element matches the scalar row bit for
    /// bit.
    fn jacobian_into(
        &self,
        lo: usize,
        hi: usize,
        geom: &DopplerGeom,
        x: &[f64; STATE_DIM],
        row_lat: &mut [f64],
        row_lon: &mut [f64],
        row_f0: &mut [f64],
    ) {
        let m = hi - lo;
        assert_eq!(row_lat.len(), m);
        assert_eq!(row_lon.len(), m);
        assert_eq!(row_f0.len(), m);
        let (px, py, pz) = (&self.px[lo..hi], &self.py[lo..hi], &self.pz[lo..hi]);
        let (vx, vy, vz) = (&self.vx[lo..hi], &self.vy[lo..hi], &self.vz[lo..hi]);
        let t = &geom.target;
        let t_lat = &geom.t_lat;
        let t_lon = &geom.t_lon;
        let scale = -x[2] / SPEED_OF_LIGHT_KM_S;
        for k in 0..m {
            let d = [px[k] - t[0], py[k] - t[1], pz[k] - t[2]];
            let rho = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
            let v = [vx[k], vy[k], vz[k]];
            let rho_dot = (v[0] * d[0] + v[1] * d[1] + v[2] * d[2]) / rho;
            let drho_dot = |t_q: &[f64; 3]| {
                let d_q = [-t_q[0], -t_q[1], -t_q[2]];
                ((v[0] * d_q[0] + v[1] * d_q[1] + v[2] * d_q[2])
                    - rho_dot * (d[0] * d_q[0] + d[1] * d_q[1] + d[2] * d_q[2]) / rho)
                    / rho
            };
            row_lat[k] = scale * drho_dot(t_lat);
            row_lon[k] = scale * drho_dot(t_lon);
            row_f0[k] = 1.0 - rho_dot / SPEED_OF_LIGHT_KM_S;
        }
    }
}

impl BatchObservation for DopplerMeasurement {
    type Geom = DopplerGeom;
    type Soa = DopplerSoa;

    fn geom(x: &[f64; STATE_DIM]) -> DopplerGeom {
        DopplerGeom::for_state(x)
    }

    fn predict_hoisted(&self, geom: &DopplerGeom, x: &[f64; STATE_DIM]) -> f64 {
        let rate = self.satellite.range_rate_to(&geom.target_predict);
        x[2] * (1.0 - rate / SPEED_OF_LIGHT_KM_S)
    }

    fn jacobian_row_hoisted(&self, geom: &DopplerGeom, x: &[f64; STATE_DIM]) -> [f64; STATE_DIM] {
        let s = &self.satellite;
        let d = [
            s.position_km[0] - geom.target[0],
            s.position_km[1] - geom.target[1],
            s.position_km[2] - geom.target[2],
        ];
        let rho = dot(&d, &d).sqrt();
        let v = &s.velocity_km_s;
        let rho_dot = dot(v, &d) / rho;
        let drho_dot = |t_q: &[f64; 3]| {
            let d_q = [-t_q[0], -t_q[1], -t_q[2]];
            (dot(v, &d_q) - rho_dot * dot(&d, &d_q) / rho) / rho
        };
        let scale = -x[2] / SPEED_OF_LIGHT_KM_S;
        [
            scale * drho_dot(&geom.t_lat),
            scale * drho_dot(&geom.t_lon),
            1.0 - rho_dot / SPEED_OF_LIGHT_KM_S,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oaq_orbit::orbit::CircularOrbit;
    use oaq_orbit::units::{Degrees, Minutes};
    use oaq_orbit::GroundPoint;

    fn setup() -> (Emitter, SatelliteState) {
        let emitter = Emitter::new(
            GroundPoint::from_degrees(Degrees(30.0), Degrees(0.0)),
            400.0e6,
        );
        let orbit = CircularOrbit::new(Degrees(85.0).to_radians(), Radians(0.0), Minutes(90.0))
            .with_earth_rotation(false);
        let sat = SatelliteState::on_orbit(&orbit, Radians(0.0), Minutes(5.0));
        (emitter, sat)
    }

    #[test]
    fn prediction_at_truth_matches_noiseless_measurement() {
        let (emitter, sat) = setup();
        let mut rng = SimRng::seed_from(0);
        // Tiny sigma: the "noisy" value is essentially the truth.
        let m = DopplerMeasurement::synthesize(sat, &emitter, 1e-9, &mut rng);
        let truth_state = [
            emitter.position().lat().value(),
            emitter.position().lon().value(),
            emitter.frequency_hz(),
        ];
        assert!((m.predict(&truth_state) - m.observed()).abs() < 1e-6);
    }

    #[test]
    fn approaching_satellite_sees_blue_shift() {
        let (emitter, _) = setup();
        let orbit = CircularOrbit::new(Degrees(85.0).to_radians(), Radians(0.0), Minutes(90.0))
            .with_earth_rotation(false);
        // The satellite crosses the emitter's latitude (~30°) around
        // u = asin(sin30/sin85) → t ≈ 7.6 min; earlier it approaches.
        let approaching = SatelliteState::on_orbit(&orbit, Radians(0.0), Minutes(3.0));
        let mut rng = SimRng::seed_from(1);
        let m = DopplerMeasurement::synthesize(approaching, &emitter, 1e-9, &mut rng);
        assert!(
            m.observed() > emitter.frequency_hz(),
            "approach must raise the received frequency"
        );
    }

    #[test]
    fn jacobian_row_is_finite_and_nonzero() {
        let (emitter, sat) = setup();
        let mut rng = SimRng::seed_from(2);
        let m = DopplerMeasurement::synthesize(sat, &emitter, 1.0, &mut rng);
        let x = emitter.initial_guess_nearby(0.5);
        let row = m.jacobian_row(&x);
        assert!(row.iter().all(|v| v.is_finite()));
        assert!(row[0].abs() > 0.0, "latitude sensitivity");
        // ∂f/∂f0 ≈ 1 − ρ̇/c ≈ 1.
        assert!((row[2] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn weight_is_inverse_variance() {
        let (emitter, sat) = setup();
        let mut rng = SimRng::seed_from(3);
        let m = DopplerMeasurement::synthesize(sat, &emitter, 2.0, &mut rng);
        assert!((m.weight() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn zero_sigma_rejected() {
        let (_, sat) = setup();
        let _ = DopplerMeasurement::new(sat, 1.0, 0.0);
    }

    #[test]
    fn try_new_surfaces_typed_errors() {
        use crate::error::MeasurementError;
        let (_, sat) = setup();
        assert!(matches!(
            DopplerMeasurement::try_new(sat, 1.0, f64::NAN),
            Err(MeasurementError::InvalidSigma { .. })
        ));
        assert!(matches!(
            DopplerMeasurement::try_new(sat, f64::INFINITY, 1.0),
            Err(MeasurementError::NonFiniteObserved { .. })
        ));
        assert!(DopplerMeasurement::try_new(sat, 4.0e8, 1.0).is_ok());
    }

    #[test]
    fn hoisted_kernels_are_bit_identical_to_unhoisted() {
        // The batch-solver contract: with the trial-state geometry computed
        // once, predict/jacobian over that geom must reproduce the
        // per-observation paths bit for bit (including the negative-lon /
        // wrapped-lon and clamped-lat corners).
        let (emitter, _) = setup();
        let orbit = CircularOrbit::new(Degrees(85.0).to_radians(), Radians(0.4), Minutes(90.0))
            .with_earth_rotation(false);
        let mut rng = SimRng::seed_from(11);
        let states: Vec<[f64; STATE_DIM]> = vec![
            emitter.initial_guess_nearby(0.3),
            emitter.initial_guess_nearby(1.2),
            [1.7, 3.5, 4.1e8], // lat clamp inactive, lon wraps
            [std::f64::consts::FRAC_PI_2, -2.9, 3.9e8], // lat clamp active
            [-0.4, -0.1, 4.0e8],
        ];
        for t in [2.0, 5.0, 8.0] {
            let sat = SatelliteState::on_orbit(&orbit, Radians(0.0), Minutes(t));
            let m = DopplerMeasurement::synthesize(sat, &emitter, 1.0, &mut rng);
            for x in &states {
                let geom = DopplerMeasurement::geom(x);
                assert_eq!(
                    m.predict_hoisted(&geom, x).to_bits(),
                    m.predict(x).to_bits(),
                    "predict at {x:?}"
                );
                let hoisted = m.jacobian_row_hoisted(&geom, x);
                let plain = m.jacobian_row(x);
                for (h, p) in hoisted.iter().zip(&plain) {
                    assert_eq!(h.to_bits(), p.to_bits(), "jacobian at {x:?}: {h} vs {p}");
                }
            }
        }
    }

    #[test]
    fn soa_kernels_are_bit_identical_to_hoisted() {
        // The column kernels must reproduce the per-observation hoisted
        // paths element for element — this is what licenses the batch
        // solver to stream SoA columns in its hot loops.
        let (emitter, _) = setup();
        let orbit = CircularOrbit::new(Degrees(85.0).to_radians(), Radians(0.4), Minutes(90.0))
            .with_earth_rotation(false);
        let mut rng = SimRng::seed_from(13);
        let measurements: Vec<DopplerMeasurement> = (0..7)
            .map(|i| {
                let sat =
                    SatelliteState::on_orbit(&orbit, Radians(0.0), Minutes(1.0 + f64::from(i)));
                DopplerMeasurement::synthesize(sat, &emitter, 1.0, &mut rng)
            })
            .collect();
        let mut soa = DopplerSoa::default();
        for m in &measurements {
            soa.push(m);
        }
        let states: Vec<[f64; STATE_DIM]> = vec![
            emitter.initial_guess_nearby(0.3),
            [1.7, 3.5, 4.1e8],
            [std::f64::consts::FRAC_PI_2, -2.9, 3.9e8],
        ];
        // Exercise a sub-range too: the kernels index `lo..hi` within the
        // shared columns, exactly as the batch solver's CSR slices do.
        for (lo, hi) in [(0, measurements.len()), (2, 6)] {
            let m = hi - lo;
            let mut pred = vec![0.0; m];
            let (mut lat, mut lon, mut f0) = (vec![0.0; m], vec![0.0; m], vec![0.0; m]);
            for x in &states {
                let geom = DopplerMeasurement::geom(x);
                soa.predict_into(lo, hi, &geom, x, &mut pred);
                soa.jacobian_into(lo, hi, &geom, x, &mut lat, &mut lon, &mut f0);
                for (k, obs) in measurements[lo..hi].iter().enumerate() {
                    assert_eq!(
                        pred[k].to_bits(),
                        obs.predict_hoisted(&geom, x).to_bits(),
                        "predict at {x:?}"
                    );
                    let row = obs.jacobian_row_hoisted(&geom, x);
                    assert_eq!(lat[k].to_bits(), row[0].to_bits(), "d/dlat at {x:?}");
                    assert_eq!(lon[k].to_bits(), row[1].to_bits(), "d/dlon at {x:?}");
                    assert_eq!(f0[k].to_bits(), row[2].to_bits(), "d/df0 at {x:?}");
                }
            }
        }
    }

    #[test]
    fn analytic_jacobian_matches_finite_differences() {
        let (emitter, sat) = setup();
        let mut rng = SimRng::seed_from(7);
        let m = DopplerMeasurement::synthesize(sat, &emitter, 1.0, &mut rng);
        for offset in [0.1, 0.5, 1.5] {
            let x = emitter.initial_guess_nearby(offset);
            let analytic = m.jacobian_row(&x);
            let fd = m.jacobian_row_fd(&x);
            for (a, f) in analytic.iter().zip(&fd) {
                let tol = 1e-6 * a.abs().max(f.abs()) + 1e-9;
                assert!((a - f).abs() <= tol, "analytic {a} vs fd {f}");
            }
        }
    }
}
