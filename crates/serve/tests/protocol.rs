//! Protocol robustness properties: the decoder is total.
//!
//! Arbitrary bytes, corrupted valid frames, truncations at every prefix,
//! and adversarially chunked streams must all map to either a decoded
//! frame or a typed [`ProtoError`] — never a panic, a hang, or an
//! unbounded allocation.

use proptest::prelude::*;

use oaq_engine::{Measure, QuerySpec, Scheme, TenantId};
use oaq_serve::proto::{
    decode_frame, encode_error, encode_request, encode_response, ErrorCode, ErrorFrame, Frame,
    FrameBuffer, ProtoError, Request, MAX_FRAME,
};

fn request_strategy() -> impl Strategy<Value = Request> {
    (
        any::<u64>(),
        any::<u32>(),
        any::<u32>(),
        any::<u64>(),
        prop::collection::vec(any::<u64>(), 8),
        prop::collection::vec(any::<u32>(), 4),
    )
        .prop_map(
            |(req_id, tenant, eta, deadline_bits, params, measure)| Request {
                req_id,
                tenant,
                eta,
                deadline_bits,
                param_bits: params.try_into().unwrap(),
                measure: measure.try_into().unwrap(),
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary payloads decode to a frame or a typed error — total, no
    /// panic.
    #[test]
    fn arbitrary_bytes_never_panic(payload in prop::collection::vec(any::<u8>(), 0..256)) {
        match decode_frame(&payload) {
            Ok(_) | Err(_) => {}
        }
    }

    /// Every wire request round-trips exactly, even with hostile bit
    /// patterns in every field (semantic validation is a later layer).
    #[test]
    fn requests_round_trip(req in request_strategy()) {
        let bytes = encode_request(&req);
        prop_assert!(bytes.len() <= MAX_FRAME);
        let back = decode_frame(&bytes);
        prop_assert_eq!(back, Ok(Frame::Request(req)));
    }

    /// Truncating a valid frame at any point yields a typed error.
    #[test]
    fn truncations_are_typed(req in request_strategy(), cut_seed in any::<u64>()) {
        let bytes = encode_request(&req);
        #[allow(clippy::cast_possible_truncation)]
        let cut = (cut_seed % bytes.len() as u64) as usize;
        let r = decode_frame(&bytes[..cut]);
        prop_assert!(
            matches!(r, Err(ProtoError::Truncated { .. } | ProtoError::BadMagic(_))),
            "cut {} of {}: {:?}", cut, bytes.len(), r
        );
    }

    /// Flipping any single byte of a valid request yields either a valid
    /// frame (payload bits are opaque) or a typed error — never a panic.
    #[test]
    fn single_byte_corruption_is_typed(
        req in request_strategy(),
        pos_seed in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let mut bytes = encode_request(&req);
        #[allow(clippy::cast_possible_truncation)]
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= flip;
        match decode_frame(&bytes) {
            Ok(_) | Err(_) => {}
        }
    }

    /// A frame stream chopped into arbitrary chunk sizes reassembles into
    /// exactly the frames that were written, in order.
    #[test]
    fn chunked_streams_reassemble(
        reqs in prop::collection::vec(request_strategy(), 1..8),
        chunk_seed in any::<u64>(),
    ) {
        let mut wire = Vec::new();
        for r in &reqs {
            let payload = encode_request(r);
            #[allow(clippy::cast_possible_truncation)]
            wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            wire.extend_from_slice(&payload);
        }
        let mut fb = FrameBuffer::new();
        let mut decoded = Vec::new();
        let mut pos = 0usize;
        let mut seed = chunk_seed;
        while pos < wire.len() {
            seed = seed.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            #[allow(clippy::cast_possible_truncation)]
            let step = ((seed >> 33) as usize % 37) + 1;
            let end = (pos + step).min(wire.len());
            fb.push(&wire[pos..end]);
            pos = end;
            while let Some(p) = fb.next_frame().unwrap() {
                decoded.push(p);
            }
        }
        prop_assert_eq!(decoded.len(), reqs.len());
        for (payload, want) in decoded.iter().zip(&reqs) {
            prop_assert_eq!(decode_frame(payload), Ok(Frame::Request(*want)));
        }
        prop_assert_eq!(fb.buffered(), 0);
    }

    /// Hostile measure words survive the wire structurally and then fail
    /// *semantically*, as `to_spec() == None` — the server's typed
    /// `Malformed` path, never a panic.
    #[test]
    fn hostile_measures_fail_semantically_not_structurally(
        measure in prop::collection::vec(any::<u32>(), 4),
    ) {
        let q = QuerySpec::paper_defaults(
            5e-5,
            Measure::QosAtLeast { scheme: Scheme::Oaq, y: 2 },
        )
        .build()
        .unwrap();
        let mut req = Request::from_query(1, &q.for_tenant(TenantId(3)));
        req.measure = measure.try_into().unwrap();
        let bytes = encode_request(&req);
        let Ok(Frame::Request(back)) = decode_frame(&bytes) else {
            return Err(TestCaseError::fail("structural decode must succeed"));
        };
        let decoded = Measure::decode(back.measure);
        prop_assert_eq!(back.to_spec().is_some(), decoded.is_some());
    }
}

/// Deterministic (non-property) coverage of the response and error kinds.
#[test]
fn response_and_error_payloads_round_trip() {
    let scalar = encode_response(7, &oaq_engine::QosValue::Scalar(0.25));
    assert!(matches!(decode_frame(&scalar), Ok(Frame::Response(_))));
    let err = encode_error(&ErrorFrame {
        req_id: 7,
        code: ErrorCode::Overloaded,
        aux0: 0,
        aux1: 0,
    });
    assert!(matches!(decode_frame(&err), Ok(Frame::Error(_))));
}
