//! Snapshot round-trip and corruption-rejection tests.
//!
//! The contract: a saved snapshot reloaded into a fresh engine answers
//! the original working set bit-identically *without re-running a single
//! `P(k)` solve*, and any damaged file — truncated anywhere, any bit
//! flipped, wrong magic, future version — is rejected with a typed
//! [`SnapshotError`] leaving the engine cold.

use std::path::PathBuf;

use oaq_engine::{direct_eval, zipf_workload, Engine, EngineConfig, EngineResult, WorkloadConfig};
use oaq_serve::snapshot::{decode_into, encode, fnv1a64, load, save, SnapshotError, VERSION};

fn engine() -> Engine {
    Engine::new(EngineConfig {
        workers: 2,
        queue_capacity: 128,
        batch_size: 8,
        result_cache: 512,
        pk_cache: 64,
        ..EngineConfig::default()
    })
}

fn workload() -> Vec<oaq_engine::QosQuery> {
    zipf_workload(
        &WorkloadConfig {
            scenarios: 12,
            skew: 1.0,
            queries: 120,
        },
        7,
    )
}

/// A per-test scratch path under the system temp dir, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let path =
            std::env::temp_dir().join(format!("oaq_snapshot_{tag}_{}.snap", std::process::id()));
        let _ = std::fs::remove_file(&path);
        Scratch(path)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
        let _ = std::fs::remove_file(self.0.with_extension("tmp"));
    }
}

#[test]
fn round_trip_restores_warm_hits_bit_identically() {
    let queries = workload();
    let warm = engine();
    let baseline: Vec<EngineResult> = warm.run_all(&queries);
    let solves_cold = warm.metrics().pk_solves;
    assert!(solves_cold > 0, "the cold run must actually solve");

    let scratch = Scratch::new("roundtrip");
    let stats = save(&scratch.0, &warm).unwrap();
    assert!(stats.pk_entries > 0 && stats.result_entries > 0);

    let reloaded = engine();
    let loaded = load(&scratch.0, &reloaded).unwrap();
    assert_eq!(loaded.pk_entries, stats.pk_entries);
    assert_eq!(loaded.result_entries, stats.result_entries);

    let replay = reloaded.run_all(&queries);
    assert_eq!(replay, baseline, "bit-identical answers after reload");
    let m = reloaded.metrics();
    assert_eq!(m.pk_solves, 0, "a warm-started engine re-solves nothing");
    assert_eq!(
        m.result_cache_hits, m.submitted,
        "every query in the working set is a warm hit"
    );
    for (r, q) in replay.iter().zip(&queries) {
        assert_eq!(r.as_ref().unwrap(), &direct_eval(q).unwrap());
    }
}

#[test]
fn truncation_anywhere_is_rejected_and_leaves_the_engine_cold() {
    let warm = engine();
    let _ = warm.run_all(&workload());
    let image = encode(&warm);
    // Sample prefixes across the whole image (every prefix would be slow).
    for cut in (0..image.len()).step_by(image.len() / 64 + 1) {
        let fresh = engine();
        let err = decode_into(&image[..cut], &fresh).unwrap_err();
        assert!(
            matches!(
                err,
                SnapshotError::Truncated
                    | SnapshotError::BadMagic
                    | SnapshotError::ChecksumMismatch
            ),
            "cut {cut}: {err}"
        );
        assert_eq!(
            fresh.export_pk_cache().len() + fresh.export_result_cache().len(),
            0,
            "a rejected snapshot must not half-load (cut {cut})"
        );
    }
}

#[test]
fn any_flipped_bit_is_rejected() {
    let warm = engine();
    let _ = warm.run_all(&workload());
    let image = encode(&warm);
    for pos in (0..image.len()).step_by(image.len() / 48 + 1) {
        let mut corrupt = image.clone();
        corrupt[pos] ^= 0x40;
        let fresh = engine();
        assert!(
            decode_into(&corrupt, &fresh).is_err(),
            "flip at byte {pos} of {} must be rejected",
            image.len()
        );
        assert!(fresh.export_pk_cache().is_empty());
    }
}

#[test]
fn version_and_magic_mismatches_are_typed() {
    let warm = engine();
    let _ = warm.run_all(&workload());
    let image = encode(&warm);

    let mut future = image.clone();
    future[8..12].copy_from_slice(&(VERSION + 1).to_le_bytes());
    // Re-seal so the version check (not the checksum) speaks.
    let n = future.len() - 8;
    let fixed = fnv1a64(&future[..n]);
    future[n..].copy_from_slice(&fixed.to_le_bytes());
    assert!(matches!(
        decode_into(&future, &engine()),
        Err(SnapshotError::UnsupportedVersion(v)) if v == VERSION + 1
    ));

    let mut alien = image;
    alien[0] = b'X';
    assert!(matches!(
        decode_into(&alien, &engine()),
        Err(SnapshotError::BadMagic)
    ));

    assert!(matches!(
        decode_into(b"", &engine()),
        Err(SnapshotError::Truncated)
    ));
    assert!(matches!(
        decode_into(b"NOTASNAPSHOT", &engine()),
        Err(SnapshotError::BadMagic)
    ));
}

#[test]
fn missing_file_is_io_and_save_replaces_atomically() {
    let scratch = Scratch::new("atomic");
    assert!(matches!(
        load(&scratch.0, &engine()),
        Err(SnapshotError::Io(_))
    ));

    // Two saves: the second replaces the first; no .tmp residue.
    let warm = engine();
    let _ = warm.run_all(&workload());
    save(&scratch.0, &warm).unwrap();
    let first = std::fs::read(&scratch.0).unwrap();
    save(&scratch.0, &warm).unwrap();
    let second = std::fs::read(&scratch.0).unwrap();
    assert_eq!(first, second, "same caches, byte-identical snapshot");
    assert!(
        !scratch.0.with_extension("tmp").exists(),
        "temp file renamed away"
    );
}

#[test]
fn snapshot_is_deterministic_across_engines() {
    // Two engines serving the same workload (different worker counts,
    // different shard counts) export byte-identical snapshots: the
    // export order is sorted by encoded key, not by shard or timing.
    // Caches are sized so every per-shard slice holds its share of the
    // working set — eviction is per shard, so a cap that only fits the
    // working set *globally* could drop entries on one engine and not
    // the other.
    let queries = workload();
    let a = engine();
    let _ = a.run_all(&queries);
    let b = Engine::new(EngineConfig {
        workers: 4,
        cache_shards: 4,
        queue_capacity: 128,
        batch_size: 2,
        result_cache: 2048,
        pk_cache: 256,
        ..EngineConfig::default()
    });
    let _ = b.run_all(&queries);
    assert_eq!(encode(&a), encode(&b));
}
