//! End-to-end server tests: wire answers are bit-identical to direct
//! evaluation, failures arrive as typed error frames, hostile bytes never
//! take the server down, and graceful shutdown drains and persists.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

use oaq_engine::{
    direct_eval, zipf_workload, EngineConfig, Measure, QuerySpec, QuotaPolicy, Scheme, TenantId,
    WorkloadConfig,
};
use oaq_serve::client::{Client, Reply};
use oaq_serve::proto::{ErrorCode, Request};
use oaq_serve::server::{serve, ServerConfig, ServerHandle, WarmStart};

fn test_config() -> ServerConfig {
    ServerConfig {
        engine: EngineConfig {
            workers: 2,
            queue_capacity: 256,
            batch_size: 8,
            result_cache: 512,
            pk_cache: 64,
            ..EngineConfig::default()
        },
        read_timeout: Duration::from_millis(10),
        ..ServerConfig::default()
    }
}

fn start() -> ServerHandle {
    serve(&test_config()).unwrap()
}

fn sample_query(lambda: f64) -> oaq_engine::QosQuery {
    QuerySpec::paper_defaults(
        lambda,
        Measure::QosAtLeast {
            scheme: Scheme::Oaq,
            y: 2,
        },
    )
    .build()
    .unwrap()
}

struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let path =
            std::env::temp_dir().join(format!("oaq_server_{tag}_{}.snap", std::process::id()));
        let _ = std::fs::remove_file(&path);
        Scratch(path)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

#[test]
fn served_answers_are_bit_identical_to_direct_eval() {
    let handle = start();
    let mut client = Client::connect(handle.local_addr()).unwrap();
    let queries = zipf_workload(
        &WorkloadConfig {
            scenarios: 10,
            skew: 1.0,
            queries: 60,
        },
        11,
    );
    for (i, q) in queries.iter().enumerate() {
        let req = Request::from_query(i as u64, q);
        match client.call(&req).unwrap() {
            Reply::Value { req_id, value } => {
                assert_eq!(req_id, i as u64);
                assert_eq!(value, direct_eval(q).unwrap(), "query {i}");
            }
            Reply::Error { code, .. } => panic!("query {i} failed: {code:?}"),
        }
    }
    drop(client);
    handle.shutdown().unwrap();
}

#[test]
fn pipelined_replies_arrive_in_request_order() {
    let handle = start();
    let mut client = Client::connect(handle.local_addr()).unwrap();
    let queries: Vec<_> = (0..24u32)
        .map(|i| sample_query(1e-5 + f64::from(i) * 1e-6))
        .collect();
    for (i, q) in queries.iter().enumerate() {
        client
            .send_buffered(&Request::from_query(1000 + i as u64, q))
            .unwrap();
    }
    client.flush().unwrap();
    for (i, q) in queries.iter().enumerate() {
        let reply = client.recv().unwrap();
        assert_eq!(reply.req_id(), 1000 + i as u64, "in-order replies");
        let Reply::Value { value, .. } = reply else {
            panic!("query {i} failed");
        };
        assert_eq!(value, direct_eval(q).unwrap());
    }
    drop(client);
    handle.shutdown().unwrap();
}

#[test]
fn engine_failures_map_to_typed_error_frames() {
    let handle = start();
    let mut client = Client::connect(handle.local_addr()).unwrap();

    // NaN lambda: rejected at validation with InvalidParam.
    let mut req = Request::from_query(1, &sample_query(5e-5));
    req.param_bits[2] = f64::NAN.to_bits();
    let Reply::Error { req_id, code, .. } = client.call(&req).unwrap() else {
        panic!("NaN lambda must fail");
    };
    assert_eq!((req_id, code), (1, ErrorCode::InvalidParam));

    // delta_eff >= tau: DeadlineConsumed with both floats in aux words.
    let mut req = Request::from_query(2, &sample_query(5e-5));
    req.param_bits[7] = req.param_bits[4]; // delta_eff := tau
    let Reply::Error {
        code, aux0, aux1, ..
    } = client.call(&req).unwrap()
    else {
        panic!("consumed deadline must fail");
    };
    assert_eq!(code, ErrorCode::DeadlineConsumed);
    assert_eq!(f64::from_bits(aux0), 5.0, "tau rides in aux0");
    assert_eq!(f64::from_bits(aux1), 5.0, "delta_eff rides in aux1");

    // Unknown measure tag: structurally fine, semantically Malformed.
    let mut req = Request::from_query(3, &sample_query(5e-5));
    req.measure = [99, 0, 0, 0];
    let Reply::Error { req_id, code, .. } = client.call(&req).unwrap() else {
        panic!("unknown measure must fail");
    };
    assert_eq!((req_id, code), (3, ErrorCode::Malformed));

    // An expired serving deadline arrives as DeadlineExceeded.
    let q = sample_query(7.77e-5).with_deadline_ms(1e-3).unwrap();
    let Reply::Error { code, .. } = client.call(&Request::from_query(4, &q)).unwrap() else {
        panic!("a 1 microsecond deadline must expire");
    };
    assert_eq!(code, ErrorCode::DeadlineExceeded);

    drop(client);
    handle.shutdown().unwrap();
}

#[test]
fn quota_rejections_carry_the_tenant() {
    let mut config = test_config();
    config.engine.quota = QuotaPolicy {
        rate_per_sec: 0.0,
        burst: 1.0,
        queue_share: 1.0,
    };
    let handle = serve(&config).unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();
    let mut quota_rejections = 0;
    for i in 0..10u32 {
        // Distinct lambdas defeat the result cache (cache hits bypass
        // quotas), same tenant drains the 1-token bucket.
        let q = sample_query(1e-5 + f64::from(i) * 1e-6).for_tenant(TenantId(9));
        match client.call(&Request::from_query(u64::from(i), &q)).unwrap() {
            Reply::Value { .. } => {}
            Reply::Error { code, aux0, .. } => {
                assert_eq!(code, ErrorCode::QuotaExceeded);
                assert_eq!(aux0, 9, "the over-quota tenant rides in aux0");
                quota_rejections += 1;
            }
        }
    }
    assert!(quota_rejections >= 8, "a 1-burst bucket rejects the flood");
    drop(client);
    handle.shutdown().unwrap();
}

#[test]
fn hostile_bytes_get_typed_errors_and_the_connection_survives() {
    let handle = start();
    let mut client = Client::connect(handle.local_addr()).unwrap();

    // A garbage frame (valid length prefix, junk payload).
    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    let junk = [0xDEu8, 0xAD, 0xBE, 0xEF, 0x00, 0x01];
    stream
        .write_all(&(junk.len() as u32).to_le_bytes())
        .unwrap();
    stream.write_all(&junk).unwrap();
    let mut raw = Client::from_stream(stream).unwrap();
    let Reply::Error { req_id, code, .. } = raw.recv().unwrap() else {
        panic!("junk must be answered with an error frame");
    };
    assert_eq!((req_id, code), (0, ErrorCode::Malformed));

    // The healthy connection still serves bit-identical answers.
    let q = sample_query(3e-5);
    let Reply::Value { value, .. } = client.call(&Request::from_query(7, &q)).unwrap() else {
        panic!("healthy connection broken by another client's junk");
    };
    assert_eq!(value, direct_eval(&q).unwrap());

    // An oversized length prefix: one Malformed answer, then close.
    let mut bomb = TcpStream::connect(handle.local_addr()).unwrap();
    bomb.write_all(&u32::MAX.to_le_bytes()).unwrap();
    bomb.write_all(&[0u8; 64]).unwrap();
    let mut reply = Vec::new();
    bomb.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    bomb.read_to_end(&mut reply).unwrap();
    assert!(!reply.is_empty(), "the oversize answer precedes the close");

    drop(client);
    drop(raw);
    handle.shutdown().unwrap();
}

#[test]
fn graceful_shutdown_persists_and_warm_start_restores() {
    let scratch = Scratch::new("warm");
    let mut config = test_config();
    config.snapshot_path = Some(scratch.0.clone());

    // First life: cold boot, serve a working set, drain, persist.
    let first = serve(&config).unwrap();
    assert!(matches!(first.warm_start(), WarmStart::ColdBoot));
    let queries = zipf_workload(
        &WorkloadConfig {
            scenarios: 8,
            skew: 1.0,
            queries: 40,
        },
        23,
    );
    let mut client = Client::connect(first.local_addr()).unwrap();
    let mut baseline = Vec::new();
    for (i, q) in queries.iter().enumerate() {
        let Reply::Value { value, .. } = client.call(&Request::from_query(i as u64, q)).unwrap()
        else {
            panic!("query {i} failed");
        };
        baseline.push(value);
    }
    let cold_solves = first.engine().metrics().pk_solves;
    assert!(cold_solves > 0);
    drop(client);
    let saved = first.shutdown().unwrap().expect("snapshot saved");
    assert!(saved.pk_entries > 0 && saved.result_entries > 0);

    // Second life: warm boot from the snapshot, replay, re-solve nothing.
    let second = serve(&config).unwrap();
    let WarmStart::Loaded(loaded) = second.warm_start() else {
        panic!("expected a warm start, got {:?}", second.warm_start());
    };
    assert_eq!(loaded.pk_entries, saved.pk_entries);
    let mut client = Client::connect(second.local_addr()).unwrap();
    for (i, (q, want)) in queries.iter().zip(&baseline).enumerate() {
        let Reply::Value { value, .. } = client.call(&Request::from_query(i as u64, q)).unwrap()
        else {
            panic!("warm query {i} failed");
        };
        assert_eq!(&value, want, "warm answer {i} bit-identical");
    }
    let m = second.engine().metrics();
    assert_eq!(m.pk_solves, 0, "warm start re-solves nothing");
    assert_eq!(m.result_cache_hits, m.submitted);
    drop(client);
    second.shutdown().unwrap();

    // Third life: corrupt the snapshot; the server boots cold, not dead.
    let mut bytes = std::fs::read(&scratch.0).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&scratch.0, &bytes).unwrap();
    let third = serve(&config).unwrap();
    assert!(
        matches!(third.warm_start(), WarmStart::Rejected(_)),
        "corrupt snapshot must be rejected, got {:?}",
        third.warm_start()
    );
    assert!(third.engine().export_pk_cache().is_empty(), "boots cold");
    let mut client = Client::connect(third.local_addr()).unwrap();
    let q = &queries[0];
    let Reply::Value { value, .. } = client.call(&Request::from_query(0, q)).unwrap() else {
        panic!("cold-booted server must still serve");
    };
    assert_eq!(value, baseline[0]);
    drop(client);
    third.shutdown().unwrap();
}

#[test]
fn shard_counters_accumulate_under_load() {
    let handle = start();
    let mut client = Client::connect(handle.local_addr()).unwrap();
    let q = sample_query(4e-5);
    for i in 0..50u64 {
        let Reply::Value { .. } = client.call(&Request::from_query(i, &q)).unwrap() else {
            panic!("query {i} failed");
        };
    }
    let stats = handle.engine().cache_stats();
    let hits: u64 = stats.result.iter().map(|s| s.hits).sum();
    let misses: u64 = stats.result.iter().map(|s| s.misses).sum();
    assert!(hits >= 49, "one miss, then warm hits: {hits}");
    assert!(misses >= 1);
    assert_eq!(
        stats.result.len(),
        handle.engine().config().effective_shards()
    );
    drop(client);
    handle.shutdown().unwrap();
}
