//! JSON emission for the serve bench and a strict validating parser.
//!
//! The emission side extends the workspace's hand-rolled JSON idiom
//! (engine `report::fmt_f64` / `fmt_f64_or_null`) to the serve-side
//! nested structures: per-shard cache counter arrays and latency
//! percentile blocks. Every float goes through the `or_null` path so an
//! empty stage serializes as `null`, never a bare `NaN` token.
//!
//! The parsing side is a small *strict* JSON reader
//! ([`parse`]) used by the round-trip tests: the emitted
//! `BENCH_serve.json` must parse as standard JSON — balanced structure,
//! no trailing commas, no `NaN`/`Infinity` tokens, nothing after the
//! top-level value. It validates; it does not aim to be a general
//! deserializer.

use std::collections::BTreeMap;
use std::fmt;

use oaq_engine::report::{fmt_f64, fmt_f64_or_null};
use oaq_engine::{CacheShardStats, CacheStatsSnapshot};

/// One cache shard's counters as a JSON object.
#[must_use]
pub fn shard_json(s: &CacheShardStats) -> String {
    format!(
        "{{\"hits\":{},\"misses\":{},\"inserts\":{},\"contended\":{},\"entries\":{}}}",
        s.hits, s.misses, s.inserts, s.contended, s.entries
    )
}

/// A shard array as JSON.
#[must_use]
pub fn shards_json(shards: &[CacheShardStats]) -> String {
    let items: Vec<String> = shards.iter().map(shard_json).collect();
    format!("[{}]", items.join(","))
}

/// Both cache layers' per-shard counters plus layer totals.
#[must_use]
pub fn cache_stats_json(stats: &CacheStatsSnapshot) -> String {
    let totals = |layer: &[CacheShardStats]| {
        let hits: u64 = layer.iter().map(|s| s.hits).sum();
        let misses: u64 = layer.iter().map(|s| s.misses).sum();
        let contended: u64 = layer.iter().map(|s| s.contended).sum();
        format!("{{\"hits\":{hits},\"misses\":{misses},\"contended\":{contended}}}")
    };
    format!(
        "{{\"result_total\":{},\"pk_total\":{},\"result_shards\":{},\"pk_shards\":{}}}",
        totals(&stats.result),
        totals(&stats.pk),
        shards_json(&stats.result),
        shards_json(&stats.pk),
    )
}

/// An open-loop latency block: p50/p95/p99/p999 (seconds) plus count and
/// max, every float through the `or_null` path.
#[must_use]
pub fn quantiles_json(count: usize, q: &[(&str, f64)]) -> String {
    let mut fields = vec![format!("\"count\":{count}")];
    for (name, value) in q {
        fields.push(format!("\"{name}\":{}", fmt_f64_or_null(*value)));
    }
    format!("{{{}}}", fields.join(","))
}

/// `secs` and derived `qps` as one JSON block.
#[must_use]
#[allow(clippy::cast_precision_loss)]
pub fn rate_json(queries: usize, secs: f64) -> String {
    format!(
        "{{\"secs\":{},\"qps\":{}}}",
        fmt_f64(secs),
        fmt_f64_or_null(queries as f64 / secs)
    )
}

// ---- strict parsing ----------------------------------------------------

/// A parsed JSON value (objects keep sorted keys; good enough for
/// validation and assertions).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true`/`false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string (escapes resolved).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Member lookup on an object; `None` otherwise.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The number payload; `None` otherwise.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The array payload; `None` otherwise.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(a) => Some(a),
            _ => None,
        }
    }
}

/// Where and why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: &str) -> Result<T, JsonParseError> {
        Err(JsonParseError {
            at: self.pos,
            message: message.to_string(),
        })
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", b as char))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.err(&format!("expected '{word}'"))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => self.err("unexpected character"),
            None => self.err("unexpected end of input"),
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return self.err("truncated \\u escape");
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| JsonParseError {
                                    at: self.pos,
                                    message: "non-UTF-8 \\u escape".to_string(),
                                })?;
                            let cp = u32::from_str_radix(hex, 16).map_err(|_| JsonParseError {
                                at: self.pos,
                                message: "bad \\u escape".to_string(),
                            })?;
                            // Surrogates would need pairing; the emitter
                            // never writes them, so reject outright.
                            match char::from_u32(cp) {
                                Some(c) => out.push(c),
                                None => return self.err("surrogate \\u escape"),
                            }
                            self.pos += 4;
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return self.err("raw control character in string"),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str upstream, so
                    // boundaries are valid).
                    let s = std::str::from_utf8(&self.bytes[self.pos..]).map_err(|_| {
                        JsonParseError {
                            at: self.pos,
                            message: "invalid UTF-8".to_string(),
                        }
                    })?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_from = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_from {
            return self.err("digits expected");
        }
        // Strict: no leading zeros like 007.
        if self.pos - digits_from > 1 && self.bytes[digits_from] == b'0' {
            return self.err("leading zero");
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_from = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_from {
                return self.err("fraction digits expected");
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_from = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_from {
                return self.err("exponent digits expected");
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        match text.parse::<f64>() {
            Ok(x) => Ok(JsonValue::Number(x)),
            Err(_) => self.err("unparseable number"),
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

/// Parses `input` as one strict JSON document (whole input consumed).
///
/// # Errors
///
/// A [`JsonParseError`] locating the first violation.
pub fn parse(input: &str) -> Result<JsonValue, JsonParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing content after the document");
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_emitters_output() {
        let shard = CacheShardStats {
            hits: 10,
            misses: 2,
            inserts: 2,
            contended: 1,
            entries: 2,
        };
        let stats = CacheStatsSnapshot {
            result: vec![shard, shard],
            pk: vec![shard],
        };
        let doc = format!(
            "{{\"cache\":{},\"lat\":{},\"rate\":{}}}",
            cache_stats_json(&stats),
            quantiles_json(100, &[("p50_s", 0.5), ("p999_s", f64::NAN)]),
            rate_json(1000, 2.0),
        );
        let v = parse(&doc).unwrap();
        assert_eq!(
            v.get("cache")
                .and_then(|c| c.get("result_total"))
                .and_then(|t| t.get("hits"))
                .and_then(JsonValue::as_f64),
            Some(20.0)
        );
        assert_eq!(
            v.get("lat").and_then(|l| l.get("p999_s")),
            Some(&JsonValue::Null),
            "NaN quantile must serialize as null"
        );
        assert_eq!(
            v.get("rate")
                .and_then(|r| r.get("qps"))
                .and_then(JsonValue::as_f64),
            Some(500.0)
        );
        assert_eq!(
            v.get("cache")
                .and_then(|c| c.get("result_shards"))
                .and_then(JsonValue::as_array)
                .map(<[JsonValue]>::len),
            Some(2)
        );
    }

    #[test]
    fn rejects_non_strict_documents() {
        for bad in [
            "",
            "{",
            "[1,2,]",
            "{\"a\":1,}",
            "NaN",
            "Infinity",
            "{\"a\" 1}",
            "1 2",
            "{\"a\":007}",
            "\"unterminated",
            "[1] tail",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn round_trips_exact_floats() {
        let x = 0.123_456_789_012_345_68_f64;
        let v = parse(&fmt_f64(x)).unwrap();
        assert_eq!(v.as_f64().map(f64::to_bits), Some(x.to_bits()));
        assert_eq!(parse(&fmt_f64_or_null(f64::NAN)).unwrap(), JsonValue::Null);
    }

    #[test]
    fn parses_strings_and_escapes() {
        let v = parse(r#"{"k":"a\"b\\c\ndA"}"#).unwrap();
        assert_eq!(
            v.get("k"),
            Some(&JsonValue::String("a\"b\\c\nd\u{41}".to_string()))
        );
        assert!(parse("\"bad \\q escape\"").is_err());
    }
}
