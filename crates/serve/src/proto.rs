//! The wire protocol: compact length-prefixed binary frames.
//!
//! Every message on the wire is `u32 LE length ‖ payload`; every payload
//! starts with a fixed four-byte header — magic `0x4F51` (`"OQ"`),
//! protocol version, frame kind — followed by a kind-specific body. All
//! integers and float bit patterns are little-endian.
//!
//! The decoder is total: any byte sequence — truncated, oversized,
//! wrong-magic, future-version, unknown-kind, trailing-garbage — maps to
//! a typed [`ProtoError`], never a panic and never an unbounded
//! allocation (frame length is capped at [`MAX_FRAME`], distribution
//! length at [`MAX_DISTRIBUTION`]). The property tests in
//! `tests/protocol.rs` drive arbitrary and corrupted frames through it.
//!
//! Frame kinds:
//!
//! * **Request** (client → server): request id, tenant, optional serving
//!   deadline, the eight f64 model parameters as raw IEEE-754 bits, η,
//!   and the packed [`Measure`](oaq_engine::Measure) quad. Parameter
//!   *semantic* validation happens server-side in
//!   [`QuerySpec::build`](oaq_engine::QuerySpec::build); the codec only
//!   enforces structure.
//! * **Response** (server → client): request id plus a scalar or a
//!   `P(K = k)` distribution.
//! * **Error** (server → client): request id, a stable [`ErrorCode`]
//!   mapping every engine-side failure, and two auxiliary words carrying
//!   code-specific detail (queue capacity, tenant id, deadline floats as
//!   bits).

use std::fmt;
use std::io::{self, Read, Write};

use oaq_engine::{EngineError, QueryError, RejectReason};

/// Frame magic: `"OQ"` as a little-endian u16.
pub const MAGIC: u16 = 0x4F51;
/// Current protocol version.
pub const VERSION: u8 = 1;
/// Upper bound on a frame payload; larger length prefixes are rejected
/// before allocation.
pub const MAX_FRAME: usize = 1 << 20;
/// Upper bound on a response distribution length (the model's `P(k)` has
/// 15 points; this is hostile-input armor, not a model limit).
pub const MAX_DISTRIBUTION: u32 = 4096;

const KIND_REQUEST: u8 = 1;
const KIND_RESPONSE: u8 = 2;
const KIND_ERROR: u8 = 3;

const HEADER_LEN: usize = 4;
/// Request body: id 8 + tenant 4 + eta 4 + deadline 8 + 8 params × 8 +
/// measure 4 × 4.
const REQUEST_BODY_LEN: usize = 8 + 4 + 4 + 8 + 64 + 16;
/// Error body: id 8 + code 2 + aux0 8 + aux1 8.
const ERROR_BODY_LEN: usize = 8 + 2 + 8 + 8;

/// A decoded frame payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// A client query request.
    Request(Request),
    /// A server answer.
    Response(Response),
    /// A server-side failure, typed.
    Error(ErrorFrame),
}

/// A query request as it travels on the wire. Floats are raw bit
/// patterns: the server reconstitutes and *revalidates* them, so hostile
/// bits (NaN λ) surface as typed [`ErrorCode::InvalidParam`] answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Client-chosen correlation id, echoed verbatim in the answer.
    pub req_id: u64,
    /// Submitting tenant.
    pub tenant: u32,
    /// Replenishment threshold η.
    pub eta: u32,
    /// Serving deadline in milliseconds as f64 bits; `0` means none
    /// (`0.0` is not a valid deadline, so the sentinel is unambiguous).
    pub deadline_bits: u64,
    /// θ, Tc, λ, φ, τ, µ, ν, δ_eff as f64 bits, in that order.
    pub param_bits: [u64; 8],
    /// The packed [`Measure::encode`](oaq_engine::Measure::encode) quad.
    pub measure: [u32; 4],
}

impl Request {
    /// Builds a wire request from validated query parts.
    #[must_use]
    pub fn from_query(req_id: u64, query: &oaq_engine::QosQuery) -> Self {
        let s = query.spec();
        Request {
            req_id,
            tenant: s.tenant.0,
            eta: s.eta,
            deadline_bits: s.deadline_ms.map_or(0, f64::to_bits),
            param_bits: [
                s.theta.to_bits(),
                s.tc.to_bits(),
                s.lambda.to_bits(),
                s.phi.to_bits(),
                s.tau.to_bits(),
                s.mu.to_bits(),
                s.nu.to_bits(),
                s.delta_eff.to_bits(),
            ],
            measure: s.measure.encode(),
        }
    }

    /// Reconstitutes the not-yet-validated [`oaq_engine::QuerySpec`] this request
    /// describes; `None` when the measure words are malformed (the
    /// server answers [`ErrorCode::Malformed`]).
    #[must_use]
    pub fn to_spec(&self) -> Option<oaq_engine::QuerySpec> {
        let measure = oaq_engine::Measure::decode(self.measure)?;
        let [theta, tc, lambda, phi, tau, mu, nu, delta_eff] = self.param_bits.map(f64::from_bits);
        Some(oaq_engine::QuerySpec {
            theta,
            tc,
            lambda,
            phi,
            eta: self.eta,
            tau,
            mu,
            nu,
            delta_eff,
            measure,
            tenant: oaq_engine::TenantId(self.tenant),
            deadline_ms: (self.deadline_bits != 0).then(|| f64::from_bits(self.deadline_bits)),
        })
    }
}

/// A server answer: the request id plus the value.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The request's correlation id.
    pub req_id: u64,
    /// The computed measure.
    pub value: oaq_engine::QosValue,
}

/// A typed server-side failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ErrorFrame {
    /// The request's correlation id (`0` when the request itself could
    /// not be parsed).
    pub req_id: u64,
    /// The stable failure code.
    pub code: ErrorCode,
    /// Code-specific detail word (e.g. queue capacity, tenant id, or an
    /// f64 bit pattern — see [`ErrorCode`]).
    pub aux0: u64,
    /// Second detail word.
    pub aux1: u64,
}

/// Stable wire codes for every failure the server can answer with.
/// Admission rejections are 1–9, per-query failures 10–19, engine
/// internals 20–29, protocol violations 40+.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// Submission queue at capacity (`aux0` = capacity). Retryable.
    QueueFull = 1,
    /// The server is shutting down. Terminal.
    ShuttingDown = 2,
    /// The tenant is over quota (`aux0` = tenant id). Retryable.
    QuotaExceeded = 3,
    /// The SLO shedder rejected the query. Retryable.
    Overloaded = 4,
    /// A parameter failed validation.
    InvalidParam = 10,
    /// δ_eff consumes the whole deadline (`aux0`/`aux1` = τ/δ_eff bits).
    DeadlineConsumed = 11,
    /// The evaluating worker panicked; resubmit.
    EvalPanicked = 12,
    /// The serving deadline expired (`aux0`/`aux1` = deadline/waited ms
    /// bits).
    DeadlineExceeded = 13,
    /// The capacity CTMC solve failed.
    Solver = 20,
    /// The worker vanished without an answer; resubmit.
    WorkerLost = 21,
    /// The request frame parsed structurally but its content is
    /// meaningless (unknown measure words, unexpected frame kind).
    Malformed = 40,
    /// An engine failure with no dedicated code (future variants).
    Internal = 99,
}

impl ErrorCode {
    /// The wire value.
    #[must_use]
    pub fn code(self) -> u16 {
        self as u16
    }

    /// Decodes a wire value; `None` for unknown codes.
    #[must_use]
    pub fn from_code(code: u16) -> Option<ErrorCode> {
        Some(match code {
            1 => ErrorCode::QueueFull,
            2 => ErrorCode::ShuttingDown,
            3 => ErrorCode::QuotaExceeded,
            4 => ErrorCode::Overloaded,
            10 => ErrorCode::InvalidParam,
            11 => ErrorCode::DeadlineConsumed,
            12 => ErrorCode::EvalPanicked,
            13 => ErrorCode::DeadlineExceeded,
            20 => ErrorCode::Solver,
            21 => ErrorCode::WorkerLost,
            40 => ErrorCode::Malformed,
            99 => ErrorCode::Internal,
            _ => return None,
        })
    }
}

/// Maps an engine failure to its wire code and auxiliary detail words.
#[must_use]
pub fn error_code_of(e: &EngineError) -> (ErrorCode, u64, u64) {
    match e {
        EngineError::Rejected(RejectReason::QueueFull { capacity }) => {
            (ErrorCode::QueueFull, *capacity as u64, 0)
        }
        EngineError::Rejected(RejectReason::ShuttingDown) => (ErrorCode::ShuttingDown, 0, 0),
        EngineError::Rejected(RejectReason::QuotaExceeded { tenant }) => {
            (ErrorCode::QuotaExceeded, u64::from(tenant.0), 0)
        }
        EngineError::Rejected(RejectReason::Overloaded) => (ErrorCode::Overloaded, 0, 0),
        EngineError::Solver(_) => (ErrorCode::Solver, 0, 0),
        EngineError::WorkerLost => (ErrorCode::WorkerLost, 0, 0),
        EngineError::Query(QueryError::Param(_)) => (ErrorCode::InvalidParam, 0, 0),
        EngineError::Query(QueryError::DeadlineConsumed { tau, delta_eff }) => (
            ErrorCode::DeadlineConsumed,
            tau.to_bits(),
            delta_eff.to_bits(),
        ),
        EngineError::Query(QueryError::EvalPanicked) => (ErrorCode::EvalPanicked, 0, 0),
        EngineError::Query(QueryError::DeadlineExceeded {
            deadline_ms,
            waited_ms,
        }) => (
            ErrorCode::DeadlineExceeded,
            deadline_ms.to_bits(),
            waited_ms.to_bits(),
        ),
        // Both enums are #[non_exhaustive]: future variants degrade to a
        // generic code instead of a compile break or a panic.
        EngineError::Rejected(_) | EngineError::Query(_) => (ErrorCode::Internal, 0, 0),
        _ => (ErrorCode::Internal, 0, 0),
    }
}

/// Why a payload failed to decode. Total over arbitrary bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtoError {
    /// The payload ends before the structure it announces.
    Truncated {
        /// Bytes the structure needed.
        needed: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The first two bytes are not [`MAGIC`].
    BadMagic(u16),
    /// A version this decoder does not speak.
    UnsupportedVersion(u8),
    /// An unknown frame kind.
    UnknownKind(u8),
    /// Bytes after the announced structure.
    TrailingBytes {
        /// How many extra bytes.
        extra: usize,
    },
    /// A length prefix above [`MAX_FRAME`].
    Oversized {
        /// The announced length.
        len: u64,
    },
    /// A response value tag that is neither scalar nor distribution.
    BadValueTag(u8),
    /// A distribution length above [`MAX_DISTRIBUTION`].
    BadDistributionLength(u32),
    /// An error code outside the registry.
    UnknownErrorCode(u16),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ProtoError::Truncated { needed, got } => {
                write!(f, "truncated frame: needed {needed} bytes, got {got}")
            }
            ProtoError::BadMagic(m) => write!(f, "bad magic {m:#06x} (want {MAGIC:#06x})"),
            ProtoError::UnsupportedVersion(v) => {
                write!(f, "unsupported protocol version {v} (speak {VERSION})")
            }
            ProtoError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            ProtoError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the frame body")
            }
            ProtoError::Oversized { len } => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME}-byte cap")
            }
            ProtoError::BadValueTag(t) => write!(f, "unknown value tag {t}"),
            ProtoError::BadDistributionLength(n) => {
                write!(
                    f,
                    "distribution length {n} exceeds the {MAX_DISTRIBUTION} cap"
                )
            }
            ProtoError::UnknownErrorCode(c) => write!(f, "unknown error code {c}"),
        }
    }
}

impl std::error::Error for ProtoError {}

// ---- encoding ----------------------------------------------------------

fn header(kind: u8, body_capacity: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + body_capacity);
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(VERSION);
    out.push(kind);
    out
}

/// Encodes a request payload (no length prefix; see [`write_frame`]).
#[must_use]
pub fn encode_request(r: &Request) -> Vec<u8> {
    let mut out = header(KIND_REQUEST, REQUEST_BODY_LEN);
    out.extend_from_slice(&r.req_id.to_le_bytes());
    out.extend_from_slice(&r.tenant.to_le_bytes());
    out.extend_from_slice(&r.eta.to_le_bytes());
    out.extend_from_slice(&r.deadline_bits.to_le_bytes());
    for bits in r.param_bits {
        out.extend_from_slice(&bits.to_le_bytes());
    }
    for w in r.measure {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out
}

/// Encodes a response payload.
#[must_use]
pub fn encode_response(req_id: u64, value: &oaq_engine::QosValue) -> Vec<u8> {
    let mut out = header(KIND_RESPONSE, 32);
    out.extend_from_slice(&req_id.to_le_bytes());
    match value {
        oaq_engine::QosValue::Scalar(x) => {
            out.push(0);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        oaq_engine::QosValue::Distribution(d) => {
            out.push(1);
            #[allow(clippy::cast_possible_truncation)]
            out.extend_from_slice(&(d.len() as u32).to_le_bytes());
            for &x in d {
                out.extend_from_slice(&x.to_bits().to_le_bytes());
            }
        }
    }
    out
}

/// Encodes an error payload.
#[must_use]
pub fn encode_error(e: &ErrorFrame) -> Vec<u8> {
    let mut out = header(KIND_ERROR, ERROR_BODY_LEN);
    out.extend_from_slice(&e.req_id.to_le_bytes());
    out.extend_from_slice(&e.code.code().to_le_bytes());
    out.extend_from_slice(&e.aux0.to_le_bytes());
    out.extend_from_slice(&e.aux1.to_le_bytes());
    out
}

// ---- decoding ----------------------------------------------------------

/// A bounds-checked little-endian cursor; every read is total.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let end = self.pos.checked_add(n).ok_or(ProtoError::Truncated {
            needed: usize::MAX,
            got: self.bytes.len(),
        })?;
        if end > self.bytes.len() {
            return Err(ProtoError::Truncated {
                needed: end,
                got: self.bytes.len(),
            });
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn finish(&self) -> Result<(), ProtoError> {
        if self.pos < self.bytes.len() {
            Err(ProtoError::TrailingBytes {
                extra: self.bytes.len() - self.pos,
            })
        } else {
            Ok(())
        }
    }
}

/// Decodes one frame payload (the bytes after the length prefix).
///
/// # Errors
///
/// A typed [`ProtoError`] for any structural violation; never panics on
/// arbitrary input.
pub fn decode_frame(payload: &[u8]) -> Result<Frame, ProtoError> {
    let mut c = Cursor::new(payload);
    let magic = c.u16()?;
    if magic != MAGIC {
        return Err(ProtoError::BadMagic(magic));
    }
    let version = c.u8()?;
    if version != VERSION {
        return Err(ProtoError::UnsupportedVersion(version));
    }
    let kind = c.u8()?;
    let frame = match kind {
        KIND_REQUEST => {
            let req_id = c.u64()?;
            let tenant = c.u32()?;
            let eta = c.u32()?;
            let deadline_bits = c.u64()?;
            let mut param_bits = [0u64; 8];
            for b in &mut param_bits {
                *b = c.u64()?;
            }
            let mut measure = [0u32; 4];
            for w in &mut measure {
                *w = c.u32()?;
            }
            Frame::Request(Request {
                req_id,
                tenant,
                eta,
                deadline_bits,
                param_bits,
                measure,
            })
        }
        KIND_RESPONSE => {
            let req_id = c.u64()?;
            let tag = c.u8()?;
            let value = match tag {
                0 => oaq_engine::QosValue::Scalar(f64::from_bits(c.u64()?)),
                1 => {
                    let n = c.u32()?;
                    if n > MAX_DISTRIBUTION {
                        return Err(ProtoError::BadDistributionLength(n));
                    }
                    let mut d = Vec::with_capacity(n as usize);
                    for _ in 0..n {
                        d.push(f64::from_bits(c.u64()?));
                    }
                    oaq_engine::QosValue::Distribution(d)
                }
                t => return Err(ProtoError::BadValueTag(t)),
            };
            Frame::Response(Response { req_id, value })
        }
        KIND_ERROR => {
            let req_id = c.u64()?;
            let raw = c.u16()?;
            let code = ErrorCode::from_code(raw).ok_or(ProtoError::UnknownErrorCode(raw))?;
            let aux0 = c.u64()?;
            let aux1 = c.u64()?;
            Frame::Error(ErrorFrame {
                req_id,
                code,
                aux0,
                aux1,
            })
        }
        k => return Err(ProtoError::UnknownKind(k)),
    };
    c.finish()?;
    Ok(frame)
}

// ---- framing I/O -------------------------------------------------------

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME);
    #[allow(clippy::cast_possible_truncation)]
    let len = (payload.len() as u32).to_le_bytes();
    w.write_all(&len)?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame payload; `Ok(None)` on a clean EOF at
/// a frame boundary.
///
/// # Errors
///
/// `InvalidData` for an oversized length prefix, `UnexpectedEof` for a
/// connection cut mid-frame, or any underlying I/O error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    match r.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            ProtoError::Oversized { len: len as u64 },
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// An incremental frame extractor for reads that may time out mid-frame.
///
/// The server feeds whatever bytes `read` returned into [`push`] and
/// drains complete frames with [`next_frame`]; partial frames stay
/// buffered across read timeouts, so a slow client never desynchronizes
/// the stream.
///
/// [`push`]: FrameBuffer::push
/// [`next_frame`]: FrameBuffer::next_frame
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
}

impl FrameBuffer {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        FrameBuffer::default()
    }

    /// Appends freshly read bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Extracts the next complete frame payload, if one is buffered.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Oversized`] when the buffered length prefix exceeds
    /// [`MAX_FRAME`] — the connection cannot resynchronize and should be
    /// dropped.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, ProtoError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[..4].try_into().unwrap()) as usize;
        if len > MAX_FRAME {
            return Err(ProtoError::Oversized { len: len as u64 });
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let payload = self.buf[4..4 + len].to_vec();
        self.buf.drain(..4 + len);
        Ok(Some(payload))
    }

    /// Bytes currently buffered (complete or partial).
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oaq_engine::{Measure, QosValue, QuerySpec, Scheme, TenantId};

    fn sample_query() -> oaq_engine::QosQuery {
        QuerySpec::paper_defaults(
            5e-5,
            Measure::QosAtLeast {
                scheme: Scheme::Oaq,
                y: 2,
            },
        )
        .build()
        .unwrap()
    }

    #[test]
    fn request_round_trips_through_wire_and_spec() {
        let q = sample_query()
            .for_tenant(TenantId(7))
            .with_deadline_ms(25.0)
            .unwrap();
        let req = Request::from_query(42, &q);
        let bytes = encode_request(&req);
        let Frame::Request(back) = decode_frame(&bytes).unwrap() else {
            panic!("request frame expected");
        };
        assert_eq!(back, req);
        let spec = back.to_spec().unwrap();
        let rebuilt = spec.build().unwrap();
        assert_eq!(rebuilt.key(), q.key(), "wire trip preserves the exact key");
        assert_eq!(rebuilt.tenant(), TenantId(7));
        assert_eq!(rebuilt.deadline_ms(), Some(25.0));
    }

    #[test]
    fn responses_round_trip_bit_exactly() {
        for value in [
            QosValue::Scalar(0.123_456_789_012_345_67),
            QosValue::Scalar(f64::MIN_POSITIVE),
            QosValue::Distribution(vec![0.25, 0.5, 0.25]),
            QosValue::Distribution(vec![]),
        ] {
            let bytes = encode_response(9, &value);
            let Frame::Response(r) = decode_frame(&bytes).unwrap() else {
                panic!("response frame expected");
            };
            assert_eq!(r.req_id, 9);
            assert_eq!(r.value, value);
        }
    }

    #[test]
    fn error_frames_round_trip() {
        let e = ErrorFrame {
            req_id: 3,
            code: ErrorCode::QueueFull,
            aux0: 1024,
            aux1: 0,
        };
        let bytes = encode_error(&e);
        assert_eq!(decode_frame(&bytes).unwrap(), Frame::Error(e));
    }

    #[test]
    fn every_error_code_survives_the_wire() {
        for code in [
            ErrorCode::QueueFull,
            ErrorCode::ShuttingDown,
            ErrorCode::QuotaExceeded,
            ErrorCode::Overloaded,
            ErrorCode::InvalidParam,
            ErrorCode::DeadlineConsumed,
            ErrorCode::EvalPanicked,
            ErrorCode::DeadlineExceeded,
            ErrorCode::Solver,
            ErrorCode::WorkerLost,
            ErrorCode::Malformed,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::from_code(code.code()), Some(code));
        }
        assert_eq!(ErrorCode::from_code(0), None);
        assert_eq!(ErrorCode::from_code(12345), None);
    }

    #[test]
    fn engine_errors_map_to_stable_codes() {
        let cases = [
            (
                EngineError::Rejected(RejectReason::QueueFull { capacity: 64 }),
                ErrorCode::QueueFull,
            ),
            (
                EngineError::Rejected(RejectReason::ShuttingDown),
                ErrorCode::ShuttingDown,
            ),
            (
                EngineError::Rejected(RejectReason::QuotaExceeded {
                    tenant: TenantId(5),
                }),
                ErrorCode::QuotaExceeded,
            ),
            (
                EngineError::Rejected(RejectReason::Overloaded),
                ErrorCode::Overloaded,
            ),
            (EngineError::WorkerLost, ErrorCode::WorkerLost),
            (
                EngineError::Query(QueryError::EvalPanicked),
                ErrorCode::EvalPanicked,
            ),
        ];
        for (err, want) in cases {
            assert_eq!(error_code_of(&err).0, want, "{err:?}");
        }
        let (code, a0, a1) = error_code_of(&EngineError::Query(QueryError::DeadlineExceeded {
            deadline_ms: 10.0,
            waited_ms: 12.5,
        }));
        assert_eq!(code, ErrorCode::DeadlineExceeded);
        assert_eq!(f64::from_bits(a0), 10.0);
        assert_eq!(f64::from_bits(a1), 12.5);
    }

    #[test]
    fn hostile_payloads_yield_typed_errors() {
        assert!(matches!(
            decode_frame(&[]),
            Err(ProtoError::Truncated { .. })
        ));
        assert!(matches!(
            decode_frame(&[0x00, 0x00, 1, 1]),
            Err(ProtoError::BadMagic(0))
        ));
        let mut bad_version = encode_error(&ErrorFrame {
            req_id: 0,
            code: ErrorCode::Internal,
            aux0: 0,
            aux1: 0,
        });
        bad_version[2] = 99;
        assert_eq!(
            decode_frame(&bad_version),
            Err(ProtoError::UnsupportedVersion(99))
        );
        let mut bad_kind = bad_version;
        bad_kind[2] = VERSION;
        bad_kind[3] = 200;
        assert_eq!(decode_frame(&bad_kind), Err(ProtoError::UnknownKind(200)));
        // Truncation at every prefix of a valid request: typed, no panic.
        let full = encode_request(&Request::from_query(1, &sample_query()));
        for cut in 0..full.len() {
            assert!(
                matches!(
                    decode_frame(&full[..cut]),
                    Err(ProtoError::Truncated { .. } | ProtoError::BadMagic(_))
                ),
                "cut at {cut}"
            );
        }
        // Trailing garbage is rejected, not ignored.
        let mut padded = full;
        padded.push(0xFF);
        assert_eq!(
            decode_frame(&padded),
            Err(ProtoError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn oversized_distribution_is_rejected_before_allocation() {
        let mut bytes = header(KIND_RESPONSE, 16);
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.push(1);
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            decode_frame(&bytes),
            Err(ProtoError::BadDistributionLength(u32::MAX))
        );
    }

    #[test]
    fn frame_buffer_reassembles_split_frames() {
        let a = encode_request(&Request::from_query(1, &sample_query()));
        let b = encode_error(&ErrorFrame {
            req_id: 2,
            code: ErrorCode::Overloaded,
            aux0: 0,
            aux1: 0,
        });
        let mut wire = Vec::new();
        write_frame(&mut wire, &a).unwrap();
        write_frame(&mut wire, &b).unwrap();
        let mut fb = FrameBuffer::new();
        // Feed one byte at a time: frames must come out whole, in order.
        let mut out = Vec::new();
        for &byte in &wire {
            fb.push(&[byte]);
            while let Some(p) = fb.next_frame().unwrap() {
                out.push(p);
            }
        }
        assert_eq!(out, vec![a, b]);
        assert_eq!(fb.buffered(), 0);
    }

    #[test]
    fn frame_buffer_rejects_oversized_prefix() {
        let mut fb = FrameBuffer::new();
        fb.push(&u32::MAX.to_le_bytes());
        assert!(matches!(fb.next_frame(), Err(ProtoError::Oversized { .. })));
    }

    #[test]
    fn read_frame_handles_eof_and_oversize() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"abc").unwrap();
        let mut r = io::Cursor::new(wire);
        assert_eq!(read_frame(&mut r).unwrap(), Some(b"abc".to_vec()));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
        let mut huge = io::Cursor::new(u32::MAX.to_le_bytes().to_vec());
        let err = read_frame(&mut huge).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // EOF mid-frame is an error, not a silent truncation.
        let mut cut = io::Cursor::new(vec![8, 0, 0, 0, 1, 2]);
        assert_eq!(
            read_frame(&mut cut).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn proto_errors_render() {
        for e in [
            ProtoError::Truncated { needed: 4, got: 2 },
            ProtoError::BadMagic(7),
            ProtoError::UnsupportedVersion(9),
            ProtoError::UnknownKind(5),
            ProtoError::TrailingBytes { extra: 3 },
            ProtoError::Oversized { len: 1 << 30 },
            ProtoError::BadValueTag(9),
            ProtoError::BadDistributionLength(70_000),
            ProtoError::UnknownErrorCode(77),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
