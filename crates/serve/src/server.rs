//! The TCP serving frontend: accept loop, per-connection frame pump,
//! graceful drain, snapshot warm-start.
//!
//! One OS thread per connection (connection counts here are bench
//! harnesses and operator tools, not the open internet), blocking I/O
//! with a short read timeout so every handler observes the shutdown flag
//! promptly. Shutdown is *graceful by construction*: the accept loop
//! closes first, each handler finishes the request it is currently
//! answering before it closes, and only then does the engine drain and
//! the cache snapshot get written — so a drained server loses neither
//! in-flight answers nor its warm working set.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use oaq_engine::{Engine, EngineConfig, EngineError};

use crate::proto::{
    decode_frame, encode_error, encode_response, write_frame, ErrorCode, ErrorFrame, Frame,
    FrameBuffer, Request,
};
use crate::snapshot::{self, SnapshotStats};

/// How the server is sized and where its snapshot lives.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port `0` to let the OS pick (the bound address
    /// is on [`ServerHandle::local_addr`]).
    pub addr: String,
    /// The engine behind the protocol.
    pub engine: EngineConfig,
    /// Cache snapshot path: loaded (best-effort) on boot, written on
    /// graceful shutdown. `None` disables persistence.
    pub snapshot_path: Option<PathBuf>,
    /// Per-read socket timeout — the shutdown-flag polling cadence.
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            engine: EngineConfig::default(),
            snapshot_path: None,
            read_timeout: Duration::from_millis(50),
        }
    }
}

/// What happened to the boot-time snapshot load.
#[derive(Debug, Clone)]
pub enum WarmStart {
    /// No snapshot path was configured.
    Disabled,
    /// No snapshot file existed (first boot); the engine starts cold.
    ColdBoot,
    /// The snapshot loaded; caches are warm.
    Loaded(SnapshotStats),
    /// A snapshot existed but was rejected (corrupt, truncated, or a
    /// version this build does not speak); the engine starts cold.
    Rejected(String),
}

/// A running server. Dropping the handle without calling
/// [`ServerHandle::shutdown`] still stops and joins everything, but skips
/// the snapshot write.
#[derive(Debug)]
pub struct ServerHandle {
    engine: Arc<Engine>,
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    snapshot_path: Option<PathBuf>,
    warm_start: WarmStart,
}

/// Starts a server per `config`: loads the snapshot (best-effort), binds,
/// and spawns the accept loop.
///
/// # Errors
///
/// The bind error, verbatim. A snapshot that fails to load is *not* an
/// error — the server boots cold and reports why on
/// [`ServerHandle::warm_start`].
pub fn serve(config: &ServerConfig) -> io::Result<ServerHandle> {
    let engine = Arc::new(Engine::new(config.engine));
    let warm_start = match &config.snapshot_path {
        None => WarmStart::Disabled,
        Some(path) => match snapshot::load(path, &engine) {
            Ok(stats) => WarmStart::Loaded(stats),
            Err(snapshot::SnapshotError::Io(e)) if e.kind() == io::ErrorKind::NotFound => {
                WarmStart::ColdBoot
            }
            Err(e) => WarmStart::Rejected(e.to_string()),
        },
    };
    let listener = TcpListener::bind(config.addr.as_str())?;
    let local_addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_thread = {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        let read_timeout = config.read_timeout;
        std::thread::spawn(move || accept_loop(&listener, &engine, &stop, read_timeout))
    };
    Ok(ServerHandle {
        engine,
        local_addr,
        stop,
        accept_thread: Some(accept_thread),
        snapshot_path: config.snapshot_path.clone(),
        warm_start,
    })
}

fn accept_loop(
    listener: &TcpListener,
    engine: &Arc<Engine>,
    stop: &Arc<AtomicBool>,
    read_timeout: Duration,
) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    for conn in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            break;
        }
        match conn {
            Ok(stream) => {
                let engine = Arc::clone(engine);
                let stop = Arc::clone(stop);
                handlers.push(std::thread::spawn(move || {
                    // A connection we cannot serve (socket error) is just
                    // dropped; the peer sees the close.
                    let _ = handle_connection(stream, &engine, &stop, read_timeout);
                }));
            }
            Err(_) => {
                if stop.load(Ordering::Acquire) {
                    break;
                }
            }
        }
    }
    // Drain: every handler finishes its in-flight request before the
    // accept loop reports the server down.
    for h in handlers {
        let _ = h.join();
    }
}

/// Serves one connection until the peer closes, a fatal protocol
/// violation desynchronizes the stream, or shutdown drains it.
fn handle_connection(
    stream: TcpStream,
    engine: &Engine,
    stop: &AtomicBool,
    read_timeout: Duration,
) -> io::Result<()> {
    stream.set_read_timeout(Some(read_timeout))?;
    let mut reader = stream.try_clone()?;
    let mut writer = stream;
    let mut frames = FrameBuffer::new();
    let mut chunk = [0u8; 4096];
    loop {
        // Serve everything already buffered before touching the socket.
        loop {
            match frames.next_frame() {
                Ok(Some(payload)) => serve_frame(&payload, engine, &mut writer)?,
                Ok(None) => break,
                // An oversized length prefix cannot resynchronize: answer
                // once, then close.
                Err(_) => {
                    let reply = encode_error(&ErrorFrame {
                        req_id: 0,
                        code: ErrorCode::Malformed,
                        aux0: 0,
                        aux1: 0,
                    });
                    write_frame(&mut writer, &reply)?;
                    return Ok(());
                }
            }
        }
        if stop.load(Ordering::Acquire) {
            // Drained: nothing buffered and shutdown requested.
            return Ok(());
        }
        match reader.read(&mut chunk) {
            Ok(0) => return Ok(()), // peer closed
            Ok(n) => frames.push(&chunk[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Answers one frame: a request runs through the engine; anything else
/// (including undecodable bytes) gets a typed `Malformed` error frame.
fn serve_frame(payload: &[u8], engine: &Engine, writer: &mut impl Write) -> io::Result<()> {
    let reply = match decode_frame(payload) {
        Ok(Frame::Request(req)) => answer_request(&req, engine),
        Ok(Frame::Response(r)) => malformed(r.req_id),
        Ok(Frame::Error(e)) => malformed(e.req_id),
        Err(_) => malformed(0),
    };
    write_frame(writer, &reply)
}

fn malformed(req_id: u64) -> Vec<u8> {
    encode_error(&ErrorFrame {
        req_id,
        code: ErrorCode::Malformed,
        aux0: 0,
        aux1: 0,
    })
}

fn answer_request(req: &Request, engine: &Engine) -> Vec<u8> {
    let Some(spec) = req.to_spec() else {
        return malformed(req.req_id);
    };
    let query = match spec.build() {
        Ok(q) => q,
        Err(e) => return engine_error(req.req_id, &EngineError::Query(e)),
    };
    match engine.evaluate(query) {
        Ok(value) => encode_response(req.req_id, &value),
        Err(e) => engine_error(req.req_id, &e),
    }
}

fn engine_error(req_id: u64, e: &EngineError) -> Vec<u8> {
    let (code, aux0, aux1) = crate::proto::error_code_of(e);
    encode_error(&ErrorFrame {
        req_id,
        code,
        aux0,
        aux1,
    })
}

impl ServerHandle {
    /// The bound address (resolves port `0`).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The engine behind the protocol — for metrics and cache-counter
    /// reads; submitting through it bypasses the wire path.
    #[must_use]
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// What the boot-time snapshot load did.
    #[must_use]
    pub fn warm_start(&self) -> &WarmStart {
        &self.warm_start
    }

    /// Gracefully stops the server: no new connections, every in-flight
    /// request answered, engine drained, snapshot written (when
    /// configured). Returns the snapshot stats, if one was saved.
    ///
    /// # Errors
    ///
    /// A snapshot write failure; the server is down regardless.
    pub fn shutdown(mut self) -> Result<Option<SnapshotStats>, snapshot::SnapshotError> {
        self.stop_and_join();
        self.engine.shutdown();
        match self.snapshot_path.take() {
            Some(path) => snapshot::save(&path, &self.engine).map(Some),
            None => Ok(None),
        }
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        // The listener blocks in accept(): a throwaway connection wakes
        // it so it can observe the flag.
        let _ = TcpStream::connect_timeout(&wake_addr(self.local_addr), Duration::from_millis(250));
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

/// The address a wake-up connection should dial (loopback realization of
/// a wildcard bind).
fn wake_addr(bound: SocketAddr) -> SocketAddr {
    if bound.ip().is_unspecified() {
        if let Ok(mut it) = ("127.0.0.1", bound.port()).to_socket_addrs() {
            if let Some(a) = it.next() {
                return a;
            }
        }
    }
    bound
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
        self.engine.shutdown();
    }
}
