//! # oaq-serve — the networked QoS serving frontend
//!
//! Puts the in-process [`oaq_engine::Engine`] behind a TCP socket with a
//! compact length-prefixed binary protocol, cache snapshot warm-start,
//! and graceful drain — the deployment shape of the paper's QoS
//! evaluation stack: one long-lived server answering constellation
//! operators' `P(Y ≥ y)` queries instead of each tool re-running the
//! analytic pipeline.
//!
//! * [`proto`] — the wire protocol: versioned frames, typed request /
//!   response / error payloads, a total decoder (arbitrary bytes map to
//!   typed [`proto::ProtoError`]s, never a panic), and the incremental
//!   [`proto::FrameBuffer`] the server pumps between read timeouts.
//! * [`server`] — the accept loop and per-connection handlers; shutdown
//!   drains every in-flight request before the engine winds down.
//! * [`client`] — a blocking client with split send/recv for pipelined
//!   load generation.
//! * [`snapshot`] — versioned, checksummed serialization of both engine
//!   cache layers; a reloaded snapshot answers the steady-state working
//!   set without re-running a single `P(k)` CTMC solve, and a corrupt or
//!   future-version file is rejected typed (the server just boots cold).
//! * [`report`] — JSON emission for `BENCH_serve.json` plus a strict
//!   JSON parser backing the round-trip tests.
//!
//! ## Example
//!
//! ```
//! use oaq_engine::{EngineConfig, Measure, QuerySpec, Scheme};
//! use oaq_serve::client::{Client, Reply};
//! use oaq_serve::proto::Request;
//! use oaq_serve::server::{serve, ServerConfig};
//!
//! let handle = serve(&ServerConfig {
//!     engine: EngineConfig { workers: 2, ..EngineConfig::default() },
//!     ..ServerConfig::default()
//! })
//! .unwrap();
//! let query = QuerySpec::paper_defaults(1e-5, Measure::QosAtLeast { scheme: Scheme::Oaq, y: 2 })
//!     .build()
//!     .unwrap();
//! let mut client = Client::connect(handle.local_addr()).unwrap();
//! let Reply::Value { value, .. } = client.call(&Request::from_query(1, &query)).unwrap() else {
//!     panic!("expected a value");
//! };
//! assert!(value.scalar() > 0.7);
//! drop(client);
//! handle.shutdown().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod proto;
pub mod report;
pub mod server;
pub mod snapshot;

pub use client::{Client, ClientError, Reply};
pub use proto::{ErrorCode, Frame, ProtoError, Request};
pub use server::{serve, ServerConfig, ServerHandle, WarmStart};
pub use snapshot::{SnapshotError, SnapshotStats};
