//! Cache snapshots: serialize both engine cache layers to disk on
//! shutdown, reload them on boot.
//!
//! A warm-start that skips the expensive `P(k)` CTMC solves is the whole
//! point: a restarted server answers its steady-state working set from
//! the snapshot instead of recomputing it, and E21 (`serve_bench`)
//! measures exactly that (`pk_solves` after reload ≪ a cold run).
//!
//! ## On-disk format (version 1, little-endian)
//!
//! ```text
//! magic    8 B   b"OAQSNAP\0"
//! version  4 B   u32 = 1
//! pk_n     8 B   u64   number of P(k) entries
//! res_n    8 B   u64   number of result entries
//! pk entries     [u64;3] capacity key ‖ u32 len ‖ len × f64 bits
//! res entries    [u64;11] query key ‖ tag u8 (0 scalar / 1 dist) ‖ value
//! checksum 8 B   FNV-1a 64 over every preceding byte
//! ```
//!
//! Loading is total: a truncated file, wrong magic, future version,
//! malformed key or flipped bit maps to a typed [`SnapshotError`] and the
//! engine simply boots cold — a bad snapshot can cost a warm-start, never
//! correctness. Values re-enter the cache exactly as the bit patterns
//! that were exported, so a warm hit after reload equals the original
//! computation bit for bit.

use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::Path;

use oaq_engine::{CapacityKey, Engine, QosValue, QueryKey};

/// Snapshot file magic.
pub const MAGIC: &[u8; 8] = b"OAQSNAP\0";
/// Current snapshot format version.
pub const VERSION: u32 = 1;
/// Upper bound on a stored distribution length (hostile-input armor).
const MAX_DISTRIBUTION: u32 = 4096;
/// Upper bound on stored entry counts (hostile-input armor).
const MAX_ENTRIES: u64 = 1 << 24;

/// What a save or load moved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotStats {
    /// `P(k)` capacity-cache entries.
    pub pk_entries: usize,
    /// Result-cache entries.
    pub result_entries: usize,
    /// Snapshot size on disk, bytes.
    pub bytes: u64,
}

/// Why a snapshot could not be read (or written).
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying file operation failed.
    Io(io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// A format version this build does not speak.
    UnsupportedVersion(u32),
    /// The file ends before the structure it announces.
    Truncated,
    /// The checksum trailer does not match the content — bit rot or a
    /// torn write.
    ChecksumMismatch,
    /// A structurally valid file carrying meaningless content (bad
    /// measure words, oversized counts).
    Malformed,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O: {e}"),
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "snapshot version {v} unsupported (speak {VERSION})")
            }
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            SnapshotError::Malformed => write!(f, "snapshot content malformed"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// FNV-1a 64 over a byte slice.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn put_f64s(out: &mut Vec<u8>, xs: &[f64]) {
    #[allow(clippy::cast_possible_truncation)]
    out.extend_from_slice(&(xs.len() as u32).to_le_bytes());
    for &x in xs {
        out.extend_from_slice(&x.to_bits().to_le_bytes());
    }
}

/// Serializes both cache layers of `engine` into the version-1 byte
/// image (no I/O — the testable core of [`save`]).
#[must_use]
pub fn encode(engine: &Engine) -> Vec<u8> {
    let pk = engine.export_pk_cache();
    let results = engine.export_result_cache();
    let mut out = Vec::with_capacity(64 + pk.len() * 160 + results.len() * 104);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(pk.len() as u64).to_le_bytes());
    out.extend_from_slice(&(results.len() as u64).to_le_bytes());
    for (key, dist) in &pk {
        for w in key.encode() {
            out.extend_from_slice(&w.to_le_bytes());
        }
        put_f64s(&mut out, dist);
    }
    for (key, value) in &results {
        for w in key.encode() {
            out.extend_from_slice(&w.to_le_bytes());
        }
        match value {
            QosValue::Scalar(x) => {
                out.push(0);
                out.extend_from_slice(&x.to_bits().to_le_bytes());
            }
            QosValue::Distribution(d) => {
                out.push(1);
                put_f64s(&mut out, d);
            }
        }
    }
    let checksum = fnv1a64(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// A bounds-checked reader over the snapshot image.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.bytes.len() {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64s(&mut self) -> Result<Vec<f64>, SnapshotError> {
        let n = self.u32()?;
        if n > MAX_DISTRIBUTION {
            return Err(SnapshotError::Malformed);
        }
        let mut xs = Vec::with_capacity(n as usize);
        for _ in 0..n {
            xs.push(f64::from_bits(self.u64()?));
        }
        Ok(xs)
    }
}

/// Decodes a version-1 byte image and preloads both cache layers of
/// `engine` (the testable core of [`load`]).
///
/// # Errors
///
/// A typed [`SnapshotError`]; the engine's caches are only touched after
/// the whole image (including the checksum) has validated, so a corrupt
/// snapshot never half-loads.
pub fn decode_into(bytes: &[u8], engine: &Engine) -> Result<SnapshotStats, SnapshotError> {
    if bytes.len() < MAGIC.len() + 4 {
        return Err(if bytes.starts_with(&MAGIC[..bytes.len().min(8)]) {
            SnapshotError::Truncated
        } else {
            SnapshotError::BadMagic
        });
    }
    if &bytes[..8] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    // Checksum first: decode only content that arrived intact.
    if bytes.len() < 8 + 4 + 8 {
        return Err(SnapshotError::Truncated);
    }
    let (content, trailer) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(trailer.try_into().unwrap());
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    if fnv1a64(content) != stored {
        return Err(SnapshotError::ChecksumMismatch);
    }
    let mut r = Reader {
        bytes: content,
        pos: 12,
    };
    let pk_n = r.u64()?;
    let res_n = r.u64()?;
    if pk_n > MAX_ENTRIES || res_n > MAX_ENTRIES {
        return Err(SnapshotError::Malformed);
    }
    let mut pk_entries = Vec::with_capacity(pk_n as usize);
    for _ in 0..pk_n {
        let words = [r.u64()?, r.u64()?, r.u64()?];
        let key = CapacityKey::decode(words).ok_or(SnapshotError::Malformed)?;
        pk_entries.push((key, r.f64s()?));
    }
    let mut result_entries = Vec::with_capacity(res_n as usize);
    for _ in 0..res_n {
        let mut words = [0u64; 11];
        for w in &mut words {
            *w = r.u64()?;
        }
        let key = QueryKey::decode(words).ok_or(SnapshotError::Malformed)?;
        let value = match r.u8()? {
            0 => QosValue::Scalar(f64::from_bits(r.u64()?)),
            1 => QosValue::Distribution(r.f64s()?),
            _ => return Err(SnapshotError::Malformed),
        };
        result_entries.push((key, value));
    }
    if r.pos != content.len() {
        return Err(SnapshotError::Malformed);
    }
    let stats = SnapshotStats {
        pk_entries: pk_entries.len(),
        result_entries: result_entries.len(),
        bytes: bytes.len() as u64,
    };
    for (key, dist) in pk_entries {
        engine.preload_pk(key, dist);
    }
    for (key, value) in result_entries {
        engine.preload_result(key, value);
    }
    Ok(stats)
}

/// Saves both cache layers of `engine` to `path` — written to a sibling
/// temp file and renamed into place, so a crash mid-save leaves the old
/// snapshot intact rather than a torn one.
///
/// # Errors
///
/// [`SnapshotError::Io`] on any file operation failure.
pub fn save(path: &Path, engine: &Engine) -> Result<SnapshotStats, SnapshotError> {
    let image = encode(engine);
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&image)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    let pk = engine.export_pk_cache().len();
    let results = engine.export_result_cache().len();
    Ok(SnapshotStats {
        pk_entries: pk,
        result_entries: results,
        bytes: image.len() as u64,
    })
}

/// Loads the snapshot at `path` into `engine`'s caches.
///
/// # Errors
///
/// A typed [`SnapshotError`] — including [`SnapshotError::Io`] when the
/// file is missing. On any error the caches are untouched and the engine
/// boots cold.
pub fn load(path: &Path, engine: &Engine) -> Result<SnapshotStats, SnapshotError> {
    let bytes = fs::read(path)?;
    decode_into(&bytes, engine)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn errors_render_and_chain() {
        let io_err = SnapshotError::from(io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert!(io_err.to_string().contains("gone"));
        assert!(std::error::Error::source(&io_err).is_some());
        for e in [
            SnapshotError::BadMagic,
            SnapshotError::UnsupportedVersion(9),
            SnapshotError::Truncated,
            SnapshotError::ChecksumMismatch,
            SnapshotError::Malformed,
        ] {
            assert!(!e.to_string().is_empty());
            assert!(std::error::Error::source(&e).is_none());
        }
    }
}
