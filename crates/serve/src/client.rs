//! A minimal blocking client for the serve protocol.
//!
//! Two usage shapes: [`Client::call`] for one-request-at-a-time callers,
//! and split [`Client::send`]/[`Client::recv`] for pipelining — the load
//! generator keeps a window of requests on the wire and matches answers
//! by request id. The connection is sequential (answers arrive in request
//! order), so no reorder buffer is needed.

use std::fmt;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::proto::{
    decode_frame, encode_request, read_frame, write_frame, ErrorCode, Frame, ProtoError, Request,
};

/// What the server answered.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// The computed value.
    Value {
        /// Echoed request id.
        req_id: u64,
        /// The measure.
        value: oaq_engine::QosValue,
    },
    /// A typed failure.
    Error {
        /// Echoed request id (`0` when the request never parsed).
        req_id: u64,
        /// The failure code.
        code: ErrorCode,
        /// Code-specific detail.
        aux0: u64,
        /// Second detail word.
        aux1: u64,
    },
}

impl Reply {
    /// The request id this reply answers.
    #[must_use]
    pub fn req_id(&self) -> u64 {
        match self {
            Reply::Value { req_id, .. } | Reply::Error { req_id, .. } => *req_id,
        }
    }
}

/// Why a client call failed below the protocol's typed error frames.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// The server sent bytes that do not decode.
    Proto(ProtoError),
    /// The server closed the connection before answering.
    Closed,
    /// The server sent a request frame (only clients send those).
    UnexpectedFrame,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client I/O: {e}"),
            ClientError::Proto(e) => write!(f, "client protocol: {e}"),
            ClientError::Closed => write!(f, "server closed the connection"),
            ClientError::UnexpectedFrame => write!(f, "server sent a request frame"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Proto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A blocking protocol client over one TCP connection.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a serve frontend.
    ///
    /// # Errors
    ///
    /// The connect error, verbatim.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Client::from_stream(stream)
    }

    /// Wraps an already-connected stream (e.g. one that has spoken raw
    /// bytes first).
    ///
    /// # Errors
    ///
    /// The stream-clone error, verbatim.
    pub fn from_stream(stream: TcpStream) -> io::Result<Client> {
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Sends a request without waiting (pipelining). Flushes the socket.
    ///
    /// # Errors
    ///
    /// The write error, verbatim.
    pub fn send(&mut self, req: &Request) -> io::Result<()> {
        write_frame(&mut self.writer, &encode_request(req))
    }

    /// Sends a request *without* flushing — the batcher for deep
    /// pipelines; call [`Client::flush`] before the first `recv`.
    ///
    /// # Errors
    ///
    /// The write error, verbatim.
    pub fn send_buffered(&mut self, req: &Request) -> io::Result<()> {
        let payload = encode_request(req);
        #[allow(clippy::cast_possible_truncation)]
        let len = (payload.len() as u32).to_le_bytes();
        self.writer.write_all(&len)?;
        self.writer.write_all(&payload)
    }

    /// Flushes buffered sends.
    ///
    /// # Errors
    ///
    /// The flush error, verbatim.
    pub fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }

    /// Receives the next reply in wire order.
    ///
    /// # Errors
    ///
    /// [`ClientError::Closed`] on clean EOF, otherwise the I/O or
    /// protocol failure.
    pub fn recv(&mut self) -> Result<Reply, ClientError> {
        let payload = read_frame(&mut self.reader)?.ok_or(ClientError::Closed)?;
        match decode_frame(&payload).map_err(ClientError::Proto)? {
            Frame::Response(r) => Ok(Reply::Value {
                req_id: r.req_id,
                value: r.value,
            }),
            Frame::Error(e) => Ok(Reply::Error {
                req_id: e.req_id,
                code: e.code,
                aux0: e.aux0,
                aux1: e.aux1,
            }),
            Frame::Request(_) => Err(ClientError::UnexpectedFrame),
        }
    }

    /// One synchronous round trip.
    ///
    /// # Errors
    ///
    /// Same as [`Client::send`] and [`Client::recv`].
    pub fn call(&mut self, req: &Request) -> Result<Reply, ClientError> {
        self.send(req)?;
        self.recv()
    }
}
