//! Free functions on `&[f64]` vectors.
//!
//! These are deliberately plain functions (not a newtype) because callers in
//! the estimation and Markov-solver code paths work with `Vec<f64>` buffers
//! they own and index directly.

/// Dot product.
///
/// # Panics
///
/// Panics if lengths differ.
///
/// # Examples
///
/// ```
/// assert_eq!(oaq_linalg::vec_ops::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
#[must_use]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
#[must_use]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Max-absolute-entry norm.
#[must_use]
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0, |m, x| m.max(x.abs()))
}

/// `a + s·b`, element-wise.
///
/// # Panics
///
/// Panics if lengths differ.
#[must_use]
pub fn axpy(a: &[f64], s: f64, b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "axpy: length mismatch");
    a.iter().zip(b).map(|(x, y)| x + s * y).collect()
}

/// `a − b`, element-wise.
///
/// # Panics
///
/// Panics if lengths differ.
#[must_use]
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    axpy(a, -1.0, b)
}

/// Normalizes `a` to sum to one (probability vector); returns `None` when the
/// sum is zero or non-finite.
#[must_use]
pub fn normalize_prob(a: &[f64]) -> Option<Vec<f64>> {
    let s: f64 = a.iter().sum();
    if !s.is_finite() || s <= 0.0 {
        return None;
    }
    Some(a.iter().map(|x| x / s).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(norm_inf(&[-7.0, 2.0]), 7.0);
    }

    #[test]
    fn axpy_and_sub() {
        assert_eq!(axpy(&[1.0, 1.0], 2.0, &[1.0, 2.0]), vec![3.0, 5.0]);
        assert_eq!(sub(&[3.0, 5.0], &[1.0, 2.0]), vec![2.0, 3.0]);
    }

    #[test]
    fn normalize_prob_works() {
        assert_eq!(normalize_prob(&[1.0, 3.0]).unwrap(), vec![0.25, 0.75]);
        assert!(normalize_prob(&[0.0, 0.0]).is_none());
        assert!(normalize_prob(&[f64::INFINITY]).is_none());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn empty_vectors() {
        assert_eq!(dot(&[], &[]), 0.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }
}
