//! # oaq-linalg — small dense linear algebra
//!
//! A self-contained dense linear-algebra toolkit sized for the needs of this
//! workspace: the iterative weighted least-squares geolocation estimator in
//! `oaq-geoloc` (normal equations, Cholesky — served zero-allocation by the
//! const-generic [`stack`] kernels, with the heap path kept as the
//! bit-identical reference), and the CTMC steady-state and transient solvers
//! in `oaq-san` (LU with partial pivoting, linear solves, and a CSR sparse
//! type for the uniformization transient kernel).
//!
//! No external numerical dependencies; everything is `f64`, row-major and
//! bounds-checked.
//!
//! ## Example
//!
//! ```
//! use oaq_linalg::Matrix;
//!
//! # fn main() -> Result<(), oaq_linalg::LinalgError> {
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
//! let x = a.solve(&[1.0, 2.0])?;
//! assert!((x[0] - 1.0 / 11.0).abs() < 1e-12);
//! assert!((x[1] - 7.0 / 11.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Index-based loops mirror the textbook factorization algorithms; iterator
// rewrites obscure the pivot/column structure.
#![allow(clippy::needless_range_loop)]

mod cholesky;
mod error;
mod lu;
mod matrix;
mod qr;
mod sparse;
pub mod stack;
pub mod vec_ops;

pub use cholesky::Cholesky;
pub use error::LinalgError;
pub use lu::Lu;
pub use matrix::Matrix;
pub use qr::Qr;
pub use sparse::CsrMatrix;
pub use stack::{SCholesky, SLu, SMat, SVec};
