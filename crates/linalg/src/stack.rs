//! Const-generic stack small-matrix kernels.
//!
//! The iterative WLS geolocation estimator in `oaq-geoloc` solves a stream
//! of tiny (`3 × 3`) symmetric positive-definite systems — one damped
//! normal-equation solve per Gauss–Newton inner iteration, thousands of
//! solves per Monte-Carlo run. The heap-backed [`Matrix`] path allocates for
//! every factor, clone and solve; these fixed-dimension kernels live
//! entirely on the stack.
//!
//! **Bit-identity contract.** [`SCholesky::factor`]/[`SCholesky::solve`]
//! perform *exactly* the operations of the heap path
//! ([`crate::Cholesky::factor`]/[`crate::Cholesky::solve`]) in the same
//! order — same symmetry/pivot thresholds, same summation order, same
//! division/sqrt sequence — so for equal inputs the results are equal to
//! the last bit, not merely close. The property tests in
//! `tests/properties.rs` assert this over random SPD systems, and the
//! `geoloc_kernel` bench (E19) re-asserts it end-to-end through the
//! estimator.
//!
//! # Examples
//!
//! ```
//! use oaq_linalg::{SCholesky, SMat};
//!
//! let mut a = SMat::<2>::zeros();
//! a[(0, 0)] = 4.0;
//! a[(0, 1)] = 2.0;
//! a[(1, 0)] = 2.0;
//! a[(1, 1)] = 3.0;
//! let x = SCholesky::factor(&a).unwrap().solve(&[2.0, 1.0]);
//! assert!((x[0] - 0.5).abs() < 1e-12);
//! assert!(x[1].abs() < 1e-12);
//! ```

use std::ops::{Index, IndexMut};

use crate::error::LinalgError;
use crate::matrix::Matrix;

/// A stack-allocated fixed-dimension vector.
pub type SVec<const N: usize> = [f64; N];

/// A stack-allocated, row-major `N × N` matrix.
///
/// `N` must be at least 1 (a zero-dimension matrix is degenerate and
/// [`SMat::to_matrix`] would have no heap counterpart).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SMat<const N: usize> {
    data: [[f64; N]; N],
}

impl<const N: usize> Default for SMat<N> {
    fn default() -> Self {
        Self::zeros()
    }
}

impl<const N: usize> SMat<N> {
    /// The zero matrix.
    #[must_use]
    pub const fn zeros() -> Self {
        SMat {
            data: [[0.0; N]; N],
        }
    }

    /// The identity matrix.
    #[must_use]
    pub fn identity() -> Self {
        let mut m = Self::zeros();
        for i in 0..N {
            m.data[i][i] = 1.0;
        }
        m
    }

    /// Builds a matrix from a function of `(row, col)`.
    #[must_use]
    pub fn from_fn(mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros();
        for i in 0..N {
            for j in 0..N {
                m.data[i][j] = f(i, j);
            }
        }
        m
    }

    /// Copies an `N × N` heap matrix into a stack matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidShape`] if `m` is not `N × N`.
    pub fn from_matrix(m: &Matrix) -> Result<Self, LinalgError> {
        if m.shape() != (N, N) {
            return Err(LinalgError::InvalidShape(format!(
                "expected {N}x{N}, got {}x{}",
                m.rows(),
                m.cols()
            )));
        }
        Ok(Self::from_fn(|i, j| m[(i, j)]))
    }

    /// Copies into a heap [`Matrix`] (for interop with heap-only
    /// operations such as [`Matrix::inverse`]).
    #[must_use]
    pub fn to_matrix(&self) -> Matrix {
        Matrix::from_fn(N, N, |i, j| self.data[i][j])
    }

    /// Resets every entry to zero (reuse as a scratch accumulator without
    /// reconstructing).
    pub fn set_zero(&mut self) {
        self.data = [[0.0; N]; N];
    }

    /// Largest absolute entry, scanned in the same row-major order as
    /// [`Matrix::max_norm`].
    #[must_use]
    pub fn max_norm(&self) -> f64 {
        self.data
            .iter()
            .flatten()
            .fold(0.0, |m: f64, x| m.max(x.abs()))
    }

    /// Symmetric rank-1 update `A += w · v vᵀ`, accumulated row-major —
    /// the same entry order the WLS normal-equation assembly uses, so an
    /// incremental accumulation over measurements matches a batch assembly
    /// bit for bit.
    pub fn rank1_update(&mut self, w: f64, v: &SVec<N>) {
        for a in 0..N {
            for b in 0..N {
                self.data[a][b] += w * v[a] * v[b];
            }
        }
    }

    /// Matrix–vector product `A x`.
    #[must_use]
    pub fn mul_vec(&self, x: &SVec<N>) -> SVec<N> {
        let mut y = [0.0; N];
        for i in 0..N {
            let mut sum = 0.0;
            for j in 0..N {
                sum += self.data[i][j] * x[j];
            }
            y[i] = sum;
        }
        y
    }

    /// Entrywise sum `A += B`.
    pub fn add_assign(&mut self, other: &SMat<N>) {
        for i in 0..N {
            for j in 0..N {
                self.data[i][j] += other.data[i][j];
            }
        }
    }
}

impl<const N: usize> Index<(usize, usize)> for SMat<N> {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i][j]
    }
}

impl<const N: usize> IndexMut<(usize, usize)> for SMat<N> {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i][j]
    }
}

/// A stack-allocated lower-triangular Cholesky factor `A = L Lᵀ`.
///
/// See the [module docs](self) for the bit-identity contract with the heap
/// [`crate::Cholesky`].
#[derive(Debug, Clone, Copy)]
pub struct SCholesky<const N: usize> {
    l: [[f64; N]; N],
}

impl<const N: usize> SCholesky<N> {
    /// Factors a symmetric positive-definite matrix without allocating.
    ///
    /// Only the lower triangle of `a` is read; symmetry of the upper
    /// triangle is checked to the same loose tolerance as the heap path.
    ///
    /// # Errors
    ///
    /// [`LinalgError::NotPositiveDefinite`] if a diagonal pivot is
    /// non-positive or the matrix is visibly asymmetric — the identical
    /// conditions (and thresholds) of [`crate::Cholesky::factor`].
    pub fn factor(a: &SMat<N>) -> Result<Self, LinalgError> {
        let scale = a.max_norm().max(1.0);
        for i in 0..N {
            for j in (i + 1)..N {
                if (a[(i, j)] - a[(j, i)]).abs() > 1e-8 * scale {
                    return Err(LinalgError::NotPositiveDefinite);
                }
            }
        }
        let mut l = [[0.0; N]; N];
        for i in 0..N {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[i][k] * l[j][k];
                }
                if i == j {
                    if sum <= 1e-14 * scale {
                        return Err(LinalgError::NotPositiveDefinite);
                    }
                    l[i][j] = sum.sqrt();
                } else {
                    l[i][j] = sum / l[j][j];
                }
            }
        }
        Ok(SCholesky { l })
    }

    /// Solves `A x = b` by forward/back substitution without allocating.
    ///
    /// Infallible: the right-hand side length is enforced by the type.
    #[must_use]
    pub fn solve(&self, b: &SVec<N>) -> SVec<N> {
        // L y = b
        let mut y = [0.0; N];
        for i in 0..N {
            let mut sum = b[i];
            for j in 0..i {
                sum -= self.l[i][j] * y[j];
            }
            y[i] = sum / self.l[i][i];
        }
        // Lᵀ x = y
        let mut x = [0.0; N];
        for i in (0..N).rev() {
            let mut sum = y[i];
            for j in (i + 1)..N {
                sum -= self.l[j][i] * x[j];
            }
            x[i] = sum / self.l[i][i];
        }
        x
    }

    /// Entry `(i, j)` of the lower-triangular factor `L`.
    #[must_use]
    pub fn l(&self, i: usize, j: usize) -> f64 {
        self.l[i][j]
    }
}

/// A stack-allocated packed LU factorization `P A = L U` with partial
/// pivoting.
///
/// The heap [`crate::Lu`] allocates a matrix clone, a permutation vector
/// and one `Vec` per solve; this factors and solves entirely on the stack.
/// Same bit-identity contract as [`SCholesky`]: identical pivot selection
/// (same `PIVOT_EPS`-vs-scale threshold), identical elimination order,
/// identical substitution order — equal inputs give results equal to the
/// last bit.
#[derive(Debug, Clone, Copy)]
pub struct SLu<const N: usize> {
    packed: [[f64; N]; N],
    perm: [usize; N],
    sign: f64,
}

impl<const N: usize> SLu<N> {
    /// Factors a stack matrix, performing exactly the operations of
    /// [`crate::Lu::factor`] (the square-shape check is enforced by the
    /// type instead).
    ///
    /// # Errors
    ///
    /// [`LinalgError::Singular`] if a pivot (relative to the matrix scale)
    /// vanishes — the identical condition and threshold of the heap path.
    pub fn factor(a: &SMat<N>) -> Result<Self, LinalgError> {
        let mut m = a.data;
        let mut perm: [usize; N] = std::array::from_fn(|i| i);
        let mut sign = 1.0;
        let scale = a.max_norm().max(1.0);
        for k in 0..N {
            // Select pivot row.
            let mut p = k;
            let mut best = m[k][k].abs();
            for (i, row) in m.iter().enumerate().skip(k + 1) {
                let v = row[k].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best <= crate::lu::PIVOT_EPS * scale {
                return Err(LinalgError::Singular);
            }
            if p != k {
                m.swap(k, p);
                perm.swap(k, p);
                sign = -sign;
            }
            let pivot = m[k][k];
            for i in (k + 1)..N {
                let factor = m[i][k] / pivot;
                m[i][k] = factor;
                for j in (k + 1)..N {
                    let delta = factor * m[k][j];
                    m[i][j] -= delta;
                }
            }
        }
        Ok(SLu {
            packed: m,
            perm,
            sign,
        })
    }

    /// Solves `A x = b` using the factorization, without allocating.
    ///
    /// Infallible: the right-hand side length is enforced by the type.
    #[must_use]
    pub fn solve(&self, b: &SVec<N>) -> SVec<N> {
        // Forward substitution on the permuted RHS (L has unit diagonal).
        let mut y = [0.0; N];
        for i in 0..N {
            let mut sum = b[self.perm[i]];
            for j in 0..i {
                sum -= self.packed[i][j] * y[j];
            }
            y[i] = sum;
        }
        // Back substitution with U.
        let mut x = [0.0; N];
        for i in (0..N).rev() {
            let mut sum = y[i];
            for j in (i + 1)..N {
                sum -= self.packed[i][j] * x[j];
            }
            x[i] = sum / self.packed[i][i];
        }
        x
    }

    /// The matrix inverse, solved column by column against the identity —
    /// exactly the operations (and column order) of [`Matrix::inverse`],
    /// without its per-column allocations.
    #[must_use]
    pub fn inverse(&self) -> SMat<N> {
        let mut inv = SMat::zeros();
        let mut e = [0.0; N];
        for j in 0..N {
            e[j] = 1.0;
            let col = self.solve(&e);
            e[j] = 0.0;
            for i in 0..N {
                inv.data[i][j] = col[i];
            }
        }
        inv
    }

    /// Determinant of the factored matrix.
    #[must_use]
    pub fn det(&self) -> f64 {
        (0..N).fold(self.sign, |acc, i| acc * self.packed[i][i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cholesky::Cholesky;
    use crate::lu::Lu;

    fn spd3() -> SMat<3> {
        SMat::from_matrix(
            &Matrix::from_rows(&[&[25.0, 15.0, -5.0], &[15.0, 18.0, 0.0], &[-5.0, 0.0, 11.0]])
                .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn factor_matches_heap_bitwise() {
        let s = spd3();
        let heap = Cholesky::factor(&s.to_matrix()).unwrap();
        let stack = SCholesky::factor(&s).unwrap();
        for i in 0..3 {
            for j in 0..=i {
                assert_eq!(
                    stack.l(i, j).to_bits(),
                    heap.factor_l()[(i, j)].to_bits(),
                    "L[{i},{j}]"
                );
            }
        }
    }

    #[test]
    fn solve_matches_heap_bitwise() {
        let s = spd3();
        let b = [1.0, -2.0, 0.5];
        let heap = Cholesky::factor(&s.to_matrix()).unwrap().solve(&b).unwrap();
        let stack = SCholesky::factor(&s).unwrap().solve(&b);
        for (h, st) in heap.iter().zip(&stack) {
            assert_eq!(h.to_bits(), st.to_bits());
        }
    }

    #[test]
    fn rejects_indefinite_and_asymmetric() {
        let mut indef = SMat::<2>::zeros();
        indef[(0, 0)] = 1.0;
        indef[(0, 1)] = 2.0;
        indef[(1, 0)] = 2.0;
        indef[(1, 1)] = 1.0;
        assert_eq!(
            SCholesky::factor(&indef).unwrap_err(),
            LinalgError::NotPositiveDefinite
        );
        let mut asym = SMat::<2>::identity();
        asym[(0, 1)] = 1.0;
        assert_eq!(
            SCholesky::factor(&asym).unwrap_err(),
            LinalgError::NotPositiveDefinite
        );
    }

    #[test]
    fn rank1_update_matches_batch_assembly() {
        // Accumulating w·vvᵀ one measurement at a time must equal the
        // nested-loop batch assembly bit for bit (same order).
        let rows = [[1.0, 2.0, 3.0], [0.5, -1.0, 2.0], [4.0, 0.0, -2.0]];
        let weights = [2.0, 0.25, 1.5];
        let mut inc = SMat::<3>::zeros();
        for (w, v) in weights.iter().zip(&rows) {
            inc.rank1_update(*w, v);
        }
        let mut batch = SMat::<3>::zeros();
        for (w, v) in weights.iter().zip(&rows) {
            for a in 0..3 {
                for b in 0..3 {
                    batch[(a, b)] += w * v[a] * v[b];
                }
            }
        }
        for a in 0..3 {
            for b in 0..3 {
                assert_eq!(inc[(a, b)].to_bits(), batch[(a, b)].to_bits());
            }
        }
    }

    #[test]
    fn slu_factor_solve_and_det_match_heap_bitwise() {
        // A matrix that forces a row swap, so the permutation path is
        // exercised too.
        let a = SMat::<3>::from_matrix(
            &Matrix::from_rows(&[&[1e-20, 1.0, 0.0], &[1.0, 1.0, 1.0], &[0.0, 1.0, 2.0]]).unwrap(),
        )
        .unwrap();
        let heap = Lu::factor(&a.to_matrix()).unwrap();
        let stack = SLu::factor(&a).unwrap();
        let b = [1.0, -2.0, 0.5];
        let hx = heap.solve(&b).unwrap();
        let sx = stack.solve(&b);
        for (h, s) in hx.iter().zip(&sx) {
            assert_eq!(h.to_bits(), s.to_bits());
        }
        assert_eq!(heap.det().to_bits(), stack.det().to_bits());
    }

    #[test]
    fn slu_inverse_matches_heap_bitwise() {
        let a = spd3();
        let heap = a.to_matrix().inverse().unwrap();
        let stack = SLu::factor(&a).unwrap().inverse();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(stack[(i, j)].to_bits(), heap[(i, j)].to_bits(), "({i},{j})");
            }
        }
    }

    #[test]
    fn slu_singular_detected_like_heap() {
        let mut s = SMat::<2>::zeros();
        s[(0, 0)] = 1.0;
        s[(0, 1)] = 2.0;
        s[(1, 0)] = 2.0;
        s[(1, 1)] = 4.0;
        assert_eq!(SLu::factor(&s).unwrap_err(), LinalgError::Singular);
        assert_eq!(
            Lu::factor(&s.to_matrix()).unwrap_err(),
            LinalgError::Singular
        );
    }

    #[test]
    fn matrix_roundtrip_and_shape_check() {
        let s = spd3();
        assert_eq!(SMat::<3>::from_matrix(&s.to_matrix()).unwrap(), s);
        assert!(SMat::<2>::from_matrix(&s.to_matrix()).is_err());
    }

    #[test]
    fn mul_vec_and_add_assign() {
        let mut a = SMat::<2>::identity();
        let b = SMat::from_fn(|i, j| (i + j) as f64);
        a.add_assign(&b);
        let y = a.mul_vec(&[1.0, 2.0]);
        assert_eq!(y, [3.0, 7.0]);
        a.set_zero();
        assert_eq!(a.max_norm(), 0.0);
    }
}
