//! Error type for linear-algebra operations.

use std::fmt;

/// Errors returned by matrix constructors, factorizations and solves.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Operand shapes are incompatible (e.g. multiplying 2×3 by 2×2).
    DimensionMismatch {
        /// Shape of the left/first operand.
        left: (usize, usize),
        /// Shape of the right/second operand.
        right: (usize, usize),
    },
    /// The matrix is singular (or numerically singular) so the operation
    /// cannot proceed.
    Singular,
    /// Cholesky factorization requires a symmetric positive-definite input.
    NotPositiveDefinite,
    /// A constructor was given ragged rows or an empty shape.
    InvalidShape(String),
    /// A non-finite value (NaN/∞) was encountered where one is not allowed.
    NonFinite,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { left, right } => write!(
                f,
                "dimension mismatch: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            LinalgError::Singular => write!(f, "matrix is singular"),
            LinalgError::NotPositiveDefinite => {
                write!(f, "matrix is not symmetric positive-definite")
            }
            LinalgError::InvalidShape(msg) => write!(f, "invalid shape: {msg}"),
            LinalgError::NonFinite => write!(f, "non-finite value encountered"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LinalgError::DimensionMismatch {
            left: (2, 3),
            right: (2, 2),
        };
        assert_eq!(e.to_string(), "dimension mismatch: 2x3 vs 2x2");
        assert_eq!(LinalgError::Singular.to_string(), "matrix is singular");
    }

    #[test]
    fn is_error_send_sync() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<LinalgError>();
    }
}
