//! LU factorization with partial pivoting.

use crate::error::LinalgError;
use crate::matrix::Matrix;

/// A packed LU factorization `P A = L U` of a square matrix.
///
/// # Examples
///
/// ```
/// use oaq_linalg::{Lu, Matrix};
/// # fn main() -> Result<(), oaq_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[0.0, 2.0], &[1.0, 1.0]])?; // needs pivoting
/// let lu = Lu::factor(&a)?;
/// let x = lu.solve(&[2.0, 3.0])?;
/// assert!((x[0] - 2.0).abs() < 1e-12);
/// assert!((x[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    packed: Matrix,
    perm: Vec<usize>,
    sign: f64,
}

pub(crate) const PIVOT_EPS: f64 = 1e-13;

impl Lu {
    /// Factors a square matrix.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::InvalidShape`] if `a` is not square.
    /// * [`LinalgError::Singular`] if a pivot (relative to the matrix scale)
    ///   vanishes.
    pub fn factor(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::InvalidShape(
                "LU requires a square matrix".to_string(),
            ));
        }
        let n = a.rows();
        let mut m = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        let scale = a.max_norm().max(1.0);
        for k in 0..n {
            // Select pivot row.
            let mut p = k;
            let mut best = m[(k, k)].abs();
            for i in (k + 1)..n {
                let v = m[(i, k)].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best <= PIVOT_EPS * scale {
                return Err(LinalgError::Singular);
            }
            if p != k {
                for j in 0..n {
                    let tmp = m[(k, j)];
                    m[(k, j)] = m[(p, j)];
                    m[(p, j)] = tmp;
                }
                perm.swap(k, p);
                sign = -sign;
            }
            let pivot = m[(k, k)];
            for i in (k + 1)..n {
                let factor = m[(i, k)] / pivot;
                m[(i, k)] = factor;
                for j in (k + 1)..n {
                    let delta = factor * m[(k, j)];
                    m[(i, j)] -= delta;
                }
            }
        }
        Ok(Lu {
            packed: m,
            perm,
            sign,
        })
    }

    /// Solves `A x = b` using the factorization.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len()` differs from
    /// the factored dimension.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.packed.rows();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        // Forward substitution on the permuted RHS (L has unit diagonal).
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[self.perm[i]];
            for j in 0..i {
                sum -= self.packed[(i, j)] * y[j];
            }
            y[i] = sum;
        }
        // Back substitution with U.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for j in (i + 1)..n {
                sum -= self.packed[(i, j)] * x[j];
            }
            x[i] = sum / self.packed[(i, i)];
        }
        Ok(x)
    }

    /// Determinant of the factored matrix.
    #[must_use]
    pub fn det(&self) -> f64 {
        let n = self.packed.rows();
        (0..n).fold(self.sign, |acc, i| acc * self.packed[(i, i)])
    }

    /// Dimension of the factored matrix.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.packed.rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
        a.mul_vec(x)
            .unwrap()
            .iter()
            .zip(b)
            .map(|(ax, bb)| (ax - bb).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn solves_with_pivoting() {
        let a = Matrix::from_rows(&[&[1e-20_f64, 1.0, 0.0], &[1.0, 1.0, 1.0], &[0.0, 1.0, 2.0]])
            .unwrap();
        let b = [1.0, 2.0, 3.0];
        let x = Lu::factor(&a).unwrap().solve(&b).unwrap();
        assert!(residual(&a, &x, &b) < 1e-9);
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert_eq!(Lu::factor(&a).unwrap_err(), LinalgError::Singular);
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Lu::factor(&a).unwrap_err(),
            LinalgError::InvalidShape(_)
        ));
    }

    #[test]
    fn det_tracks_permutation_sign() {
        // Swapping two rows of the identity gives det = -1.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let lu = Lu::factor(&a).unwrap();
        assert!((lu.det() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn wrong_rhs_length_errors() {
        let lu = Lu::factor(&Matrix::identity(3)).unwrap();
        assert!(lu.solve(&[1.0]).is_err());
        assert_eq!(lu.dim(), 3);
    }

    #[test]
    fn random_like_system_roundtrips() {
        // A well-conditioned 5x5 system built from a simple formula.
        let a = Matrix::from_fn(5, 5, |i, j| {
            if i == j {
                10.0
            } else {
                ((i * 3 + j * 7) % 5) as f64 - 2.0
            }
        });
        let x_true = [1.0, -2.0, 3.0, 0.5, -0.25];
        let b = a.mul_vec(&x_true).unwrap();
        let x = Lu::factor(&a).unwrap().solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }
}
