//! Compressed sparse row (CSR) matrix.
//!
//! Sized for the CTMC transient kernels in `oaq-san`: generator and
//! uniformized transition matrices of birth–death-like chains are
//! tridiagonal-ish, so a dense O(n²) matvec wastes almost all of its work
//! once planes grow past the paper's 14-satellite reference. The CSR
//! matvec is O(nnz) and — critically for the serving engine's bit-identity
//! guarantee — **deterministic**: entries within a row are stored in
//! strictly ascending column order and every product accumulates in that
//! fixed order, so repeated calls (from any number of threads) produce
//! bit-identical results.

use crate::error::LinalgError;
use crate::matrix::Matrix;

/// A sparse `f64` matrix in compressed-sparse-row form.
///
/// Invariants (upheld by every constructor):
///
/// * `row_ptr.len() == rows + 1`, `row_ptr[0] == 0`, non-decreasing;
/// * within each row, column indices are strictly increasing;
/// * all stored values are finite.
///
/// # Examples
///
/// ```
/// use oaq_linalg::CsrMatrix;
/// let a = CsrMatrix::from_triplets(2, 2, &[(0, 1, 2.0), (1, 0, 3.0)]).unwrap();
/// assert_eq!(a.nnz(), 2);
/// assert_eq!(a.vec_mul(&[1.0, 1.0]).unwrap(), vec![3.0, 2.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from `(row, col, value)` triplets.
    ///
    /// Duplicate coordinates are summed (in triplet order, so the result is
    /// deterministic for a given input sequence); entries whose final sum
    /// is exactly `0.0` are dropped.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::InvalidShape`] for a zero dimension or an
    ///   out-of-range index.
    /// * [`LinalgError::NonFinite`] for NaN/∞ values.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> Result<Self, LinalgError> {
        if rows == 0 || cols == 0 {
            return Err(LinalgError::InvalidShape(
                "matrix dimensions must be positive".to_string(),
            ));
        }
        for &(i, j, v) in triplets {
            if i >= rows || j >= cols {
                return Err(LinalgError::InvalidShape(format!(
                    "triplet ({i}, {j}) out of bounds for {rows}x{cols}"
                )));
            }
            if !v.is_finite() {
                return Err(LinalgError::NonFinite);
            }
        }
        // Stable sort by (row, col) keeps duplicate summation order equal
        // to triplet order — deterministic for a given input.
        let mut sorted: Vec<(usize, usize, f64)> = triplets.to_vec();
        sorted.sort_by_key(|&(i, j, _)| (i, j));
        let mut row_ptr = vec![0usize; rows + 1];
        let mut col_idx = Vec::with_capacity(sorted.len());
        let mut values: Vec<f64> = Vec::with_capacity(sorted.len());
        let mut entries: Vec<(usize, usize, f64)> = Vec::with_capacity(sorted.len());
        for (i, j, v) in sorted {
            match entries.last_mut() {
                Some((pi, pj, pv)) if *pi == i && *pj == j => *pv += v,
                _ => entries.push((i, j, v)),
            }
        }
        for (i, j, v) in entries {
            if v == 0.0 {
                continue;
            }
            row_ptr[i + 1] += 1;
            col_idx.push(j);
            values.push(v);
        }
        for i in 0..rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        Ok(CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Converts a dense matrix, keeping every non-zero entry.
    #[must_use]
    pub fn from_dense(m: &Matrix) -> Self {
        let mut row_ptr = vec![0usize; m.rows() + 1];
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for i in 0..m.rows() {
            for (j, &v) in m.row(i).iter().enumerate() {
                if v != 0.0 {
                    row_ptr[i + 1] += 1;
                    col_idx.push(j);
                    values.push(v);
                }
            }
        }
        for i in 0..m.rows() {
            row_ptr[i + 1] += row_ptr[i];
        }
        CsrMatrix {
            rows: m.rows(),
            cols: m.cols(),
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Expands back to a dense matrix.
    #[must_use]
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            let (cols, vals) = self.row_entries(i);
            for (&j, &v) in cols.iter().zip(vals) {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` when the matrix is square.
    #[must_use]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Number of stored (non-zero) entries.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of entries stored: `nnz / (rows · cols)`.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn density(&self) -> f64 {
        self.nnz() as f64 / (self.rows * self.cols) as f64
    }

    /// The stored entry at `(i, j)`, or `0.0` for structural zeros; `None`
    /// out of bounds.
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> Option<f64> {
        if i >= self.rows || j >= self.cols {
            return None;
        }
        let (cols, vals) = self.row_entries(i);
        Some(match cols.binary_search(&j) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        })
    }

    /// Column indices and values of row `i` (ascending column order).
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[must_use]
    pub fn row_entries(&self, i: usize) -> (&[usize], &[f64]) {
        assert!(i < self.rows, "row {i} out of bounds");
        let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Matrix–vector product `A x`. Row sums accumulate in ascending
    /// column order — deterministic across calls and threads.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                left: self.shape(),
                right: (x.len(), 1),
            });
        }
        Ok((0..self.rows)
            .map(|i| {
                let (cols, vals) = self.row_entries(i);
                cols.iter().zip(vals).map(|(&j, &v)| v * x[j]).sum()
            })
            .collect())
    }

    /// Vector–matrix product `xᵀ A` — the distribution-propagation step of
    /// the CTMC transient kernel. Scatters row by row in ascending row
    /// order (columns ascending within each row), so the floating-point
    /// accumulation order is fixed: repeated calls are bit-identical.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() != rows`.
    pub fn vec_mul(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                left: (1, x.len()),
                right: self.shape(),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            let (cols, vals) = self.row_entries(i);
            for (&j, &v) in cols.iter().zip(vals) {
                out[j] += xi * v;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triplets_sorted_summed_and_zeros_dropped() {
        let a = CsrMatrix::from_triplets(
            2,
            3,
            &[
                (1, 2, 4.0),
                (0, 0, 1.0),
                (1, 2, -1.0),
                (0, 1, 5.0),
                (0, 1, -5.0),
            ],
        )
        .unwrap();
        assert_eq!(a.nnz(), 2, "duplicates summed, exact zeros dropped");
        assert_eq!(a.get(0, 0), Some(1.0));
        assert_eq!(a.get(0, 1), Some(0.0));
        assert_eq!(a.get(1, 2), Some(3.0));
        assert_eq!(a.get(2, 0), None);
    }

    #[test]
    fn rejects_bad_triplets() {
        assert!(matches!(
            CsrMatrix::from_triplets(0, 2, &[]),
            Err(LinalgError::InvalidShape(_))
        ));
        assert!(matches!(
            CsrMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]),
            Err(LinalgError::InvalidShape(_))
        ));
        assert_eq!(
            CsrMatrix::from_triplets(2, 2, &[(0, 0, f64::NAN)]),
            Err(LinalgError::NonFinite)
        );
    }

    #[test]
    fn dense_roundtrip() {
        let d = Matrix::from_rows(&[&[0.0, 2.0, 0.0], &[1.0, 0.0, -3.0]]).unwrap();
        let s = CsrMatrix::from_dense(&d);
        assert_eq!(s.nnz(), 3);
        assert!((s.density() - 0.5).abs() < 1e-15);
        assert_eq!(s.to_dense(), d);
    }

    #[test]
    fn matvec_matches_dense() {
        let d = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let s = CsrMatrix::from_dense(&d);
        assert_eq!(s.mul_vec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert_eq!(s.vec_mul(&[1.0, 1.0]).unwrap(), vec![4.0, 6.0]);
        assert!(s.mul_vec(&[1.0]).is_err());
        assert!(s.vec_mul(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn vec_mul_is_bit_stable_across_calls() {
        let s = CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 0.3),
                (0, 1, 0.7),
                (1, 0, 0.1),
                (1, 1, 0.2),
                (1, 2, 0.7),
                (2, 2, 1.0),
            ],
        )
        .unwrap();
        let x = [0.25, 0.5, 0.25];
        let first = s.vec_mul(&x).unwrap();
        for _ in 0..10 {
            assert_eq!(s.vec_mul(&x).unwrap(), first);
        }
    }

    #[test]
    fn row_entries_are_ascending() {
        let s = CsrMatrix::from_triplets(1, 5, &[(0, 4, 1.0), (0, 0, 1.0), (0, 2, 1.0)]).unwrap();
        let (cols, _) = s.row_entries(0);
        assert_eq!(cols, &[0, 2, 4]);
    }
}
