//! QR factorization (Householder reflections) for least-squares problems.

use crate::error::LinalgError;
use crate::matrix::Matrix;

/// A QR factorization of a (possibly tall) matrix, for solving
/// over-determined least-squares systems without forming normal equations.
///
/// Used by the geolocation crate as a numerically robust alternative to the
/// Cholesky normal-equation path when measurement geometry is poor.
///
/// Householder vectors are normalized so their leading entry is 1 and stored
/// below the diagonal of the packed matrix; `R` lives on and above it.
///
/// # Examples
///
/// ```
/// use oaq_linalg::{Matrix, Qr};
/// # fn main() -> Result<(), oaq_linalg::LinalgError> {
/// // Fit y = a + b t to three points on a line.
/// let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]])?;
/// let x = Qr::factor(&a)?.solve_least_squares(&[1.0, 3.0, 5.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Qr {
    packed: Matrix,
    betas: Vec<f64>,
}

impl Qr {
    /// Factors `a` (requires `rows >= cols`).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidShape`] if `rows < cols`.
    pub fn factor(a: &Matrix) -> Result<Self, LinalgError> {
        let (m, n) = a.shape();
        if m < n {
            return Err(LinalgError::InvalidShape(
                "QR least squares requires rows >= cols".to_string(),
            ));
        }
        let mut r = a.clone();
        let mut betas = Vec::with_capacity(n);
        for k in 0..n {
            let mut norm_sq = 0.0;
            for i in k..m {
                norm_sq += r[(i, k)] * r[(i, k)];
            }
            let norm = norm_sq.sqrt();
            if norm == 0.0 {
                betas.push(0.0);
                continue;
            }
            let alpha = if r[(k, k)] >= 0.0 { -norm } else { norm };
            let v0 = r[(k, k)] - alpha;
            // Normalize v so its leading entry is 1: v = (1, r[k+1.., k]/v0).
            // beta = 2 / (vᵀ v) for the normalized vector.
            let mut vtv = 1.0;
            for i in (k + 1)..m {
                let vi = r[(i, k)] / v0;
                r[(i, k)] = vi;
                vtv += vi * vi;
            }
            let beta = 2.0 / vtv;
            // Apply H = I − beta v vᵀ to the trailing columns (j > k).
            for j in (k + 1)..n {
                let mut dot = r[(k, j)];
                for i in (k + 1)..m {
                    dot += r[(i, k)] * r[(i, j)];
                }
                let s = beta * dot;
                r[(k, j)] -= s;
                for i in (k + 1)..m {
                    let vi = r[(i, k)];
                    r[(i, j)] -= s * vi;
                }
            }
            // Column k of R collapses to alpha on the diagonal.
            r[(k, k)] = alpha;
            betas.push(beta);
        }
        Ok(Qr { packed: r, betas })
    }

    /// Solves `min ‖A x − b‖₂`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::DimensionMismatch`] on RHS length mismatch.
    /// * [`LinalgError::Singular`] if `R` has a vanishing diagonal (rank
    ///   deficiency).
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let (m, n) = self.packed.shape();
        if b.len() != m {
            return Err(LinalgError::DimensionMismatch {
                left: (m, n),
                right: (b.len(), 1),
            });
        }
        let mut y = b.to_vec();
        // y <- Qᵀ b by applying each reflector in order.
        for k in 0..n {
            let beta = self.betas[k];
            if beta == 0.0 {
                continue;
            }
            let mut dot = y[k];
            for i in (k + 1)..m {
                dot += self.packed[(i, k)] * y[i];
            }
            let s = beta * dot;
            y[k] -= s;
            for i in (k + 1)..m {
                y[i] -= s * self.packed[(i, k)];
            }
        }
        // Back-substitute R x = y[..n].
        let scale = self.packed.max_norm().max(1.0);
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let diag = self.packed[(i, i)];
            if diag.abs() < 1e-13 * scale {
                return Err(LinalgError::Singular);
            }
            let mut sum = y[i];
            for j in (i + 1)..n {
                sum -= self.packed[(i, j)] * x[j];
            }
            x[i] = sum / diag;
        }
        Ok(x)
    }

    /// The upper-triangular factor `R` (top `n × n` block).
    #[must_use]
    pub fn r(&self) -> Matrix {
        let n = self.packed.cols();
        Matrix::from_fn(n, n, |i, j| if j >= i { self.packed[(i, j)] } else { 0.0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_square_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let x = Qr::factor(&a)
            .unwrap()
            .solve_least_squares(&[3.0, 5.0])
            .unwrap();
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn overdetermined_line_fit() {
        // y = 2 + 3t with symmetric noise that cancels in the LS sense.
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]]).unwrap();
        let b = [2.1, 4.9, 8.1, 10.9];
        let x = Qr::factor(&a).unwrap().solve_least_squares(&b).unwrap();
        assert!((x[0] - 2.0).abs() < 0.2);
        assert!((x[1] - 3.0).abs() < 0.1);
    }

    #[test]
    fn matches_normal_equations() {
        let a = Matrix::from_rows(&[
            &[1.0, 0.5, 0.2],
            &[0.3, 2.0, 0.1],
            &[0.1, 0.4, 1.5],
            &[0.9, 0.9, 0.9],
            &[0.2, 0.1, 0.7],
        ])
        .unwrap();
        let b = [1.0, 2.0, 3.0, 4.0, 5.0];
        let x_qr = Qr::factor(&a).unwrap().solve_least_squares(&b).unwrap();
        let at = a.transpose();
        let ata = (&at * &a).unwrap();
        let atb = at.mul_vec(&b).unwrap();
        let x_ne = ata.solve(&atb).unwrap();
        for (q, n) in x_qr.iter().zip(&x_ne) {
            assert!((q - n).abs() < 1e-9, "{q} vs {n}");
        }
    }

    #[test]
    fn underdetermined_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Qr::factor(&a).unwrap_err(),
            LinalgError::InvalidShape(_)
        ));
    }

    #[test]
    fn rank_deficient_detected() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]).unwrap();
        let qr = Qr::factor(&a).unwrap();
        assert_eq!(
            qr.solve_least_squares(&[1.0, 2.0, 3.0]).unwrap_err(),
            LinalgError::Singular
        );
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let r = Qr::factor(&a).unwrap().r();
        assert_eq!(r[(1, 0)], 0.0);
        // RᵀR must equal AᵀA (Q orthogonal).
        let rtr = (&r.transpose() * &r).unwrap();
        let ata = (&a.transpose() * &a).unwrap();
        assert!((&rtr - &ata).unwrap().max_norm() < 1e-10);
    }

    #[test]
    fn wrong_rhs_length_errors() {
        let a = Matrix::identity(2);
        let qr = Qr::factor(&a).unwrap();
        assert!(qr.solve_least_squares(&[1.0]).is_err());
    }
}
