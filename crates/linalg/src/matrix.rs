//! Row-major dense matrix.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

use crate::error::LinalgError;
use crate::lu::Lu;

/// A dense, row-major `f64` matrix.
///
/// # Examples
///
/// ```
/// use oaq_linalg::Matrix;
/// # fn main() -> Result<(), oaq_linalg::LinalgError> {
/// let a = Matrix::identity(3);
/// let b = &a * &a;
/// assert_eq!(b?[(2, 2)], 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidShape`] for empty input or ragged rows,
    /// and [`LinalgError::NonFinite`] if any entry is NaN or infinite.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, LinalgError> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(LinalgError::InvalidShape("empty matrix".to_string()));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(LinalgError::InvalidShape(format!(
                    "ragged row: expected {cols} columns, got {}",
                    r.len()
                )));
            }
            for &x in *r {
                if !x.is_finite() {
                    return Err(LinalgError::NonFinite);
                }
                data.push(x);
            }
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix from a function of `(row, col)`.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` when the matrix is square.
    #[must_use]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Checked element access.
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> Option<f64> {
        if i < self.rows && j < self.cols {
            Some(self.data[i * self.cols + j])
        } else {
            None
        }
    }

    /// Returns row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row {i} out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The transpose.
    #[must_use]
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Matrix–vector product `A x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                left: self.shape(),
                right: (x.len(), 1),
            });
        }
        Ok((0..self.rows)
            .map(|i| self.row(i).iter().zip(x).map(|(a, b)| a * b).sum::<f64>())
            .collect())
    }

    /// Vector–matrix product `xᵀ A` (used by CTMC stationary solves).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() != rows`.
    pub fn vec_mul(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                left: (1, x.len()),
                right: self.shape(),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            for (j, o) in out.iter_mut().enumerate() {
                *o += xi * self[(i, j)];
            }
        }
        Ok(out)
    }

    /// Scales every entry by `s`.
    #[must_use]
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * s).collect(),
        }
    }

    /// Solves `A x = b` by LU with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] for singular systems and
    /// [`LinalgError::DimensionMismatch`] for shape errors.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        Lu::factor(self)?.solve(b)
    }

    /// Determinant via LU.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidShape`] for non-square matrices.
    pub fn det(&self) -> Result<f64, LinalgError> {
        if !self.is_square() {
            return Err(LinalgError::InvalidShape(
                "determinant requires a square matrix".to_string(),
            ));
        }
        match Lu::factor(self) {
            Ok(lu) => Ok(lu.det()),
            Err(LinalgError::Singular) => Ok(0.0),
            Err(e) => Err(e),
        }
    }

    /// Matrix inverse via LU.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] if not invertible.
    pub fn inverse(&self) -> Result<Matrix, LinalgError> {
        let lu = Lu::factor(self)?;
        let n = self.rows;
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = lu.solve(&e)?;
            e[j] = 0.0;
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
        }
        Ok(inv)
    }

    /// Max-absolute-entry norm.
    #[must_use]
    pub fn max_norm(&self) -> f64 {
        self.data.iter().fold(0.0, |m, x| m.max(x.abs()))
    }

    /// Frobenius norm.
    #[must_use]
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Matrix {
    type Output = Result<Matrix, LinalgError>;
    fn add(self, rhs: &Matrix) -> Self::Output {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::DimensionMismatch {
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a + b)
                .collect(),
        })
    }
}

impl Sub for &Matrix {
    type Output = Result<Matrix, LinalgError>;
    fn sub(self, rhs: &Matrix) -> Self::Output {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::DimensionMismatch {
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        })
    }
}

impl Mul for &Matrix {
    type Output = Result<Matrix, LinalgError>;
    fn mul(self, rhs: &Matrix) -> Self::Output {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += aik * rhs[(k, j)];
                }
            }
        }
        Ok(out)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:10.4}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_multiplicative_unit() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let i = Matrix::identity(2);
        assert_eq!((&a * &i).unwrap(), a);
        assert_eq!((&i * &a).unwrap(), a);
    }

    #[test]
    fn ragged_rows_rejected() {
        let err = Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]).unwrap_err();
        assert!(matches!(err, LinalgError::InvalidShape(_)));
    }

    #[test]
    fn non_finite_rejected() {
        let err = Matrix::from_rows(&[&[f64::INFINITY]]).unwrap_err();
        assert_eq!(err, LinalgError::NonFinite);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn mul_vec_and_vec_mul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(a.mul_vec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert_eq!(a.vec_mul(&[1.0, 1.0]).unwrap(), vec![4.0, 6.0]);
        assert!(a.mul_vec(&[1.0]).is_err());
        assert!(a.vec_mul(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn solve_known_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let x = a.solve(&[3.0, 5.0]).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn det_of_singular_is_zero() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert_eq!(a.det().unwrap(), 0.0);
    }

    #[test]
    fn det_known_value() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert!((a.det().unwrap() + 2.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_self_is_identity() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]).unwrap();
        let inv = a.inverse().unwrap();
        let prod = (&a * &inv).unwrap();
        let diff = (&prod - &Matrix::identity(2)).unwrap();
        assert!(diff.max_norm() < 1e-12);
    }

    #[test]
    fn singular_inverse_errors() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]).unwrap();
        assert_eq!(a.inverse().unwrap_err(), LinalgError::Singular);
    }

    #[test]
    fn add_sub_elementwise() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[&[3.0, 4.0]]).unwrap();
        assert_eq!(
            (&a + &b).unwrap(),
            Matrix::from_rows(&[&[4.0, 6.0]]).unwrap()
        );
        assert_eq!(
            (&b - &a).unwrap(),
            Matrix::from_rows(&[&[2.0, 2.0]]).unwrap()
        );
    }

    #[test]
    fn shape_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 2);
        assert!((&a + &b).is_err());
        assert!((&a * &b).is_err());
    }

    #[test]
    fn norms() {
        let a = Matrix::from_rows(&[&[3.0, -4.0]]).unwrap();
        assert_eq!(a.max_norm(), 4.0);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn get_checked() {
        let a = Matrix::identity(2);
        assert_eq!(a.get(1, 1), Some(1.0));
        assert_eq!(a.get(2, 0), None);
    }

    #[test]
    fn display_has_rows() {
        let s = format!("{}", Matrix::identity(2));
        assert_eq!(s.lines().count(), 2);
    }
}
