//! Cholesky factorization for symmetric positive-definite systems.
//!
//! Weighted least-squares normal equations `(Jᵀ W J) δ = Jᵀ W r` are SPD, so
//! the geolocation estimator in `oaq-geoloc` solves them through this path.

use crate::error::LinalgError;
use crate::matrix::Matrix;

/// A lower-triangular Cholesky factor `A = L Lᵀ`.
///
/// # Examples
///
/// ```
/// use oaq_linalg::{Cholesky, Matrix};
/// # fn main() -> Result<(), oaq_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]])?;
/// let ch = Cholesky::factor(&a)?;
/// let x = ch.solve(&[2.0, 1.0])?;
/// assert!((x[0] - 0.5).abs() < 1e-12);
/// assert!((x[1] - 0.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; symmetry of the upper triangle
    /// is checked to a loose tolerance.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::InvalidShape`] if `a` is not square.
    /// * [`LinalgError::NotPositiveDefinite`] if a diagonal pivot is
    ///   non-positive or the matrix is visibly asymmetric.
    pub fn factor(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::InvalidShape(
                "Cholesky requires a square matrix".to_string(),
            ));
        }
        let n = a.rows();
        let scale = a.max_norm().max(1.0);
        for i in 0..n {
            for j in (i + 1)..n {
                if (a[(i, j)] - a[(j, i)]).abs() > 1e-8 * scale {
                    return Err(LinalgError::NotPositiveDefinite);
                }
            }
        }
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 1e-14 * scale {
                        return Err(LinalgError::NotPositiveDefinite);
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] on RHS length mismatch.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        // L y = b
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for j in 0..i {
                sum -= self.l[(i, j)] * y[j];
            }
            y[i] = sum / self.l[(i, i)];
        }
        // Lᵀ x = y
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for j in (i + 1)..n {
                sum -= self.l[(j, i)] * x[j];
            }
            x[i] = sum / self.l[(i, i)];
        }
        Ok(x)
    }

    /// The lower-triangular factor `L`.
    #[must_use]
    pub fn factor_l(&self) -> &Matrix {
        &self.l
    }

    /// log-determinant of `A` (numerically robust product of pivots).
    #[must_use]
    pub fn log_det(&self) -> f64 {
        let n = self.l.rows();
        2.0 * (0..n).map(|i| self.l[(i, i)].ln()).sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_reconstructs() {
        let a = Matrix::from_rows(&[&[25.0, 15.0, -5.0], &[15.0, 18.0, 0.0], &[-5.0, 0.0, 11.0]])
            .unwrap();
        let ch = Cholesky::factor(&a).unwrap();
        let l = ch.factor_l();
        let recon = (l * &l.transpose()).unwrap();
        assert!((&recon - &a).unwrap().max_norm() < 1e-12);
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert_eq!(
            Cholesky::factor(&a).unwrap_err(),
            LinalgError::NotPositiveDefinite
        );
    }

    #[test]
    fn rejects_asymmetric() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 2.0]]).unwrap();
        assert_eq!(
            Cholesky::factor(&a).unwrap_err(),
            LinalgError::NotPositiveDefinite
        );
    }

    #[test]
    fn solve_matches_lu() {
        let a = Matrix::from_rows(&[&[6.0, 2.0, 1.0], &[2.0, 5.0, 2.0], &[1.0, 2.0, 4.0]]).unwrap();
        let b = [1.0, 2.0, 3.0];
        let x_ch = Cholesky::factor(&a).unwrap().solve(&b).unwrap();
        let x_lu = a.solve(&b).unwrap();
        for (c, l) in x_ch.iter().zip(&x_lu) {
            assert!((c - l).abs() < 1e-12);
        }
    }

    #[test]
    fn log_det_matches_det() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]).unwrap();
        let ch = Cholesky::factor(&a).unwrap();
        assert!((ch.log_det() - a.det().unwrap().ln()).abs() < 1e-12);
    }

    #[test]
    fn wrong_rhs_errors() {
        let ch = Cholesky::factor(&Matrix::identity(2)).unwrap();
        assert!(ch.solve(&[1.0, 2.0, 3.0]).is_err());
    }
}
