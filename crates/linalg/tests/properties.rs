//! Property-based tests of the linear-algebra kernels.

use oaq_linalg::{Cholesky, CsrMatrix, Matrix, Qr, SCholesky, SMat};
use proptest::prelude::*;

/// A well-conditioned square matrix: diagonally dominant by construction.
fn dominant_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(prop::collection::vec(-1.0f64..1.0, n), n).prop_map(move |rows| {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                m[(i, j)] = rows[i][j];
            }
            m[(i, i)] += n as f64 + 1.0;
        }
        m
    })
}

fn vector(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-10.0f64..10.0, n)
}

proptest! {
    #[test]
    fn lu_solve_has_small_residual(a in dominant_matrix(5), b in vector(5)) {
        let x = a.solve(&b).unwrap();
        let ax = a.mul_vec(&x).unwrap();
        for (axi, bi) in ax.iter().zip(&b) {
            prop_assert!((axi - bi).abs() < 1e-9, "residual {}", (axi - bi).abs());
        }
    }

    #[test]
    fn inverse_roundtrips(a in dominant_matrix(4)) {
        let inv = a.inverse().unwrap();
        let prod = (&a * &inv).unwrap();
        let diff = (&prod - &Matrix::identity(4)).unwrap();
        prop_assert!(diff.max_norm() < 1e-9);
    }

    #[test]
    fn det_of_product_is_product_of_dets(a in dominant_matrix(3), b in dominant_matrix(3)) {
        let ab = (&a * &b).unwrap();
        let lhs = ab.det().unwrap();
        let rhs = a.det().unwrap() * b.det().unwrap();
        prop_assert!((lhs - rhs).abs() < 1e-6 * rhs.abs().max(1.0));
    }

    #[test]
    fn transpose_is_involution(a in dominant_matrix(4)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn cholesky_matches_lu_on_spd(a in dominant_matrix(4), b in vector(4)) {
        // AᵀA + I is symmetric positive definite.
        let at = a.transpose();
        let spd = (&(&at * &a).unwrap() + &Matrix::identity(4)).unwrap();
        let x_ch = Cholesky::factor(&spd).unwrap().solve(&b).unwrap();
        let x_lu = spd.solve(&b).unwrap();
        for (c, l) in x_ch.iter().zip(&x_lu) {
            prop_assert!((c - l).abs() < 1e-8);
        }
    }

    #[test]
    fn qr_least_squares_residual_is_orthogonal(
        a in dominant_matrix(3),
        extra in prop::collection::vec(-1.0f64..1.0, 3),
        b in vector(4),
    ) {
        // Build a 4x3 tall matrix from a square dominant one + extra row.
        let tall = Matrix::from_fn(4, 3, |i, j| if i < 3 { a[(i, j)] } else { extra[j] });
        let x = Qr::factor(&tall).unwrap().solve_least_squares(&b).unwrap();
        // Residual r = b − Ax must satisfy Aᵀ r ≈ 0.
        let ax = tall.mul_vec(&x).unwrap();
        let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, axi)| bi - axi).collect();
        let atr = tall.transpose().mul_vec(&r).unwrap();
        for v in atr {
            prop_assert!(v.abs() < 1e-8, "normal residual {v}");
        }
    }

    #[test]
    fn csr_roundtrips_through_dense(a in dominant_matrix(5)) {
        let csr = CsrMatrix::from_dense(&a);
        prop_assert_eq!(csr.to_dense(), a);
    }

    #[test]
    fn csr_matvecs_match_dense(a in dominant_matrix(5), x in vector(5)) {
        // Structural zeros contribute exactly 0.0 to every dense sum, so
        // the CSR products equal the dense ones, not merely approximate
        // them.
        let csr = CsrMatrix::from_dense(&a);
        prop_assert_eq!(csr.mul_vec(&x).unwrap(), a.mul_vec(&x).unwrap());
        prop_assert_eq!(csr.vec_mul(&x).unwrap(), a.vec_mul(&x).unwrap());
    }

    #[test]
    fn csr_matvec_is_deterministic(a in dominant_matrix(4), x in vector(4)) {
        let csr = CsrMatrix::from_dense(&a);
        let once = csr.vec_mul(&x).unwrap();
        for _ in 0..3 {
            let again = csr.vec_mul(&x).unwrap();
            prop_assert!(once.iter().zip(&again).all(|(a, b)| a.to_bits() == b.to_bits()));
        }
    }

    #[test]
    fn stack_cholesky_factor_is_bit_identical_to_heap(a in dominant_matrix(4)) {
        // AᵀA + I is symmetric positive definite.
        let at = a.transpose();
        let spd = (&(&at * &a).unwrap() + &Matrix::identity(4)).unwrap();
        let heap = Cholesky::factor(&spd).unwrap();
        let stack = SCholesky::factor(&SMat::<4>::from_matrix(&spd).unwrap()).unwrap();
        for i in 0..4 {
            for j in 0..=i {
                prop_assert_eq!(
                    stack.l(i, j).to_bits(),
                    heap.factor_l()[(i, j)].to_bits(),
                    "L[{},{}]: {} vs {}", i, j, stack.l(i, j), heap.factor_l()[(i, j)]
                );
            }
        }
    }

    #[test]
    fn stack_cholesky_solve_is_bit_identical_to_heap(a in dominant_matrix(4), b in vector(4)) {
        let at = a.transpose();
        let spd = (&(&at * &a).unwrap() + &Matrix::identity(4)).unwrap();
        let heap = Cholesky::factor(&spd).unwrap().solve(&b).unwrap();
        let rhs = [b[0], b[1], b[2], b[3]];
        let stack = SCholesky::factor(&SMat::<4>::from_matrix(&spd).unwrap())
            .unwrap()
            .solve(&rhs);
        for (h, s) in heap.iter().zip(&stack) {
            prop_assert_eq!(h.to_bits(), s.to_bits(), "{} vs {}", h, s);
        }
    }

    #[test]
    fn stack_rank1_accumulation_matches_heap_assembly(
        rows in prop::collection::vec(prop::collection::vec(-5.0f64..5.0, 3), 1..12),
        weights in prop::collection::vec(0.01f64..10.0, 12),
    ) {
        // Incremental rank-1 accumulation (the sequential-WLS update) vs the
        // heap-matrix batch nested-loop assembly, bit for bit.
        let mut inc = SMat::<3>::zeros();
        let mut batch = Matrix::zeros(3, 3);
        for (v, w) in rows.iter().zip(&weights) {
            inc.rank1_update(*w, &[v[0], v[1], v[2]]);
            for a in 0..3 {
                for b in 0..3 {
                    batch[(a, b)] += w * v[a] * v[b];
                }
            }
        }
        for a in 0..3 {
            for b in 0..3 {
                prop_assert_eq!(inc[(a, b)].to_bits(), batch[(a, b)].to_bits());
            }
        }
    }

    #[test]
    fn vec_mul_matches_transpose_mul_vec(a in dominant_matrix(4), x in vector(4)) {
        let left = a.vec_mul(&x).unwrap();
        let right = a.transpose().mul_vec(&x).unwrap();
        for (l, r) in left.iter().zip(&right) {
            prop_assert!((l - r).abs() < 1e-10);
        }
    }
}
