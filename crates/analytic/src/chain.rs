//! Distribution of the coordination-chain length (new analysis).
//!
//! The paper bounds the number of satellites that consecutively capture a
//! signal by `M[k]` (Eq. 2) but never derives the *distribution* of the
//! chain length `N`. It follows from the same timing diagram (Figure 6b):
//! in the underlapping regime, satellite `n ≥ 2` of the chain reaches the
//! target `w + (n−2)·L1` after the initial detection (where `w` is the
//! first revisit wait), measures only if the signal is still alive then,
//! and only if that arrival precedes the deadline τ.
//!
//! Idealizations (matching the spirit of the paper's Eq. 4): computation is
//! instantaneous relative to the waits (ν → ∞) and messaging overheads δ,
//! Tg vanish. The protocol simulator cross-validates the result with large
//! ν and small δ (experiment E14).

use crate::geometry::PlaneGeometry;

/// `P(N ≥ n)`: the probability that at least `n` satellites contribute
/// measurements to the delivered result, for underlapping geometry.
///
/// `N = 0` means the target escaped surveillance; `N = 1` is a
/// single-coverage result; `N ≥ 2` are the sequential-multiple-coverage
/// results of the paper's Section 3.1.
///
/// Returns `None` for overlapping geometry (there the chain is determined
/// by the simultaneous-coverage mechanism, not by revisit waits).
///
/// # Panics
///
/// Panics if `n == 0` (trivially 1), or on non-positive `tau`/`mu`.
#[must_use]
pub fn chain_ccdf(geom: &PlaneGeometry, tau: f64, mu: f64, n: usize) -> Option<f64> {
    assert!(n >= 1, "P(N >= 0) is trivially 1");
    assert!(tau.is_finite() && tau > 0.0, "tau must be positive");
    assert!(mu.is_finite() && mu > 0.0, "mu must be positive");
    if geom.is_overlapping() {
        return None;
    }
    let l1 = geom.l1();
    let l2 = geom.l2();
    let tc = geom.tc();

    if n == 1 {
        // Detected at all: born covered, or born in the gap and surviving
        // to the next footprint.
        let gap_detect = if l2 > 0.0 {
            (1.0 - (-mu * l2).exp()) / mu
        } else {
            0.0
        };
        return Some((tc + gap_detect) / l1);
    }

    // Case A: born inside a coverage window, first revisit wait
    // w ∈ [L2, L1]; satellite n arrives w + (n−2)·L1 after detection.
    let shift = (n - 2) as f64 * l1;
    let upper = l1.min(tau - shift);
    let case_a = if upper > l2 {
        (-mu * shift).exp() * ((-mu * l2).exp() - (-mu * upper).exp()) / mu
    } else {
        0.0
    };

    // Case B: born in the gap at distance d from the next footprint; the
    // detector's window starts at detection, so satellite n arrives
    // (n−1)·L1 later.
    let arrival_b = (n - 1) as f64 * l1;
    let case_b = if l2 > 0.0 && arrival_b < tau {
        ((1.0 - (-mu * l2).exp()) / mu) * (-mu * arrival_b).exp()
    } else {
        0.0
    };

    Some((case_a + case_b) / l1)
}

/// Expected chain length `E[N] = Σ_{n≥1} P(N ≥ n)` (underlapping only).
///
/// # Panics
///
/// Panics on non-positive `tau`/`mu`.
#[must_use]
pub fn expected_chain_length(geom: &PlaneGeometry, tau: f64, mu: f64) -> Option<f64> {
    let bound = geom.sequential_chain_bound(tau)?;
    let mut total = 0.0;
    for n in 1..=bound as usize {
        total += chain_ccdf(geom, tau, mu, n).expect("underlap checked via bound");
    }
    Some(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn support_ends_exactly_at_m_of_k() {
        // k = 9: L1 = 10, L2 = 1; M[k] = 2 + floor((τ−1)/10).
        let g = PlaneGeometry::reference(9);
        for tau in [5.0, 12.0, 25.0, 33.0] {
            let m = g.sequential_chain_bound(tau).unwrap() as usize;
            assert!(
                chain_ccdf(&g, tau, 0.1, m).unwrap() > 0.0,
                "tau={tau}: P(N >= M) must be positive"
            );
            assert_eq!(
                chain_ccdf(&g, tau, 0.1, m + 1).unwrap(),
                0.0,
                "tau={tau}: P(N >= M+1) must vanish"
            );
        }
    }

    #[test]
    fn ccdf_is_monotone_in_n_and_tau() {
        let g = PlaneGeometry::reference(9);
        let mut last = 1.0;
        for n in 1..=5 {
            let p = chain_ccdf(&g, 35.0, 0.1, n).unwrap();
            assert!(p <= last + 1e-12, "n={n}");
            last = p;
        }
        for n in 1..=3 {
            let narrow = chain_ccdf(&g, 12.0, 0.1, n).unwrap();
            let wide = chain_ccdf(&g, 30.0, 0.1, n).unwrap();
            assert!(wide >= narrow - 1e-12, "n={n}");
        }
    }

    #[test]
    fn n1_matches_detection_probability() {
        // 1 − P(N ≥ 1) must equal the miss probability of the QoS model.
        use crate::qos::{miss_probability, QosParams};
        for k in [9u32, 10] {
            let g = PlaneGeometry::reference(k);
            for mu in [0.1, 0.5, 2.0] {
                let q = QosParams {
                    tau: 5.0,
                    mu,
                    nu: 30.0,
                };
                let p1 = chain_ccdf(&g, 5.0, mu, 1).unwrap();
                let miss = miss_probability(&g, &q);
                assert!((p1 + miss - 1.0).abs() < 1e-12, "k={k} mu={mu}");
            }
        }
    }

    #[test]
    fn n2_matches_g2_in_the_instant_computation_limit() {
        // With ν → ∞, G2 (level-2 probability) equals P(N ≥ 2) when the
        // chain cannot exceed 2 (τ small): every 2-chain yields level 2.
        use crate::qos::{g2_oaq, QosParams};
        for k in [9u32, 10] {
            let g = PlaneGeometry::reference(k);
            for tau in [3.0, 5.0, 8.0] {
                let mu = 0.3;
                let q = QosParams { tau, mu, nu: 1e7 };
                let p2 = chain_ccdf(&g, tau, mu, 2).unwrap();
                let g2 = g2_oaq(&g, &q);
                assert!(
                    (p2 - g2).abs() < 1e-6,
                    "k={k} tau={tau}: P(N>=2)={p2} vs G2={g2}"
                );
            }
        }
    }

    #[test]
    fn overlap_returns_none() {
        let g = PlaneGeometry::reference(12);
        assert!(chain_ccdf(&g, 5.0, 0.2, 2).is_none());
        assert!(expected_chain_length(&g, 5.0, 0.2).is_none());
    }

    #[test]
    fn expected_length_grows_with_tau_and_signal_length() {
        let g = PlaneGeometry::reference(9);
        let short = expected_chain_length(&g, 5.0, 0.2).unwrap();
        let long = expected_chain_length(&g, 35.0, 0.2).unwrap();
        assert!(long > short);
        let brief = expected_chain_length(&g, 35.0, 2.0).unwrap();
        assert!(long > brief, "longer signals sustain deeper chains");
    }

    #[test]
    fn tangent_case_has_no_gap_terms() {
        // k = 10: L2 = 0, so P(N ≥ 1) = 1 and only case A contributes.
        let g = PlaneGeometry::reference(10);
        assert_eq!(chain_ccdf(&g, 5.0, 0.2, 1).unwrap(), 1.0);
        assert!(chain_ccdf(&g, 5.0, 0.2, 2).unwrap() > 0.0);
    }
}
