//! Geometric parameters of a (possibly degraded) orbital plane.
//!
//! All quantities in minutes, matching the paper: θ = 90 (orbit period),
//! Tc = 9 (coverage time). For a plane with `k` active satellites the
//! revisit time is `Tr[k] = θ/k`; overlap holds iff `Tr[k] < Tc` (paper
//! Figure 5, Eq. 1).

/// Geometry of one orbital plane at a given capacity.
///
/// # Examples
///
/// ```
/// use oaq_analytic::PlaneGeometry;
/// let g = PlaneGeometry::reference(12);
/// assert!(g.is_overlapping());
/// assert!((g.l2() - 1.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlaneGeometry {
    theta: f64,
    tc: f64,
    k: u32,
}

impl PlaneGeometry {
    /// Creates the geometry for a plane with period `theta`, coverage time
    /// `tc` and `k` active satellites.
    ///
    /// # Panics
    ///
    /// Panics if `theta` or `tc` are not positive, `tc >= theta`,
    /// `k == 0`, or the capacity is so high that `Tr[k] ≤ Tc/2` — there a
    /// point can be covered by *three or more* footprints at once and the
    /// paper's dual-coverage QoS spectrum no longer describes the system
    /// (the reference design tops out at k = 14, Tr = 6.43 > 4.5).
    #[must_use]
    pub fn new(theta: f64, tc: f64, k: u32) -> Self {
        assert!(theta.is_finite() && theta > 0.0, "theta must be positive");
        assert!(
            tc.is_finite() && tc > 0.0 && tc < theta,
            "need 0 < Tc < theta"
        );
        assert!(k > 0, "capacity must be positive");
        assert!(
            theta / f64::from(k) > tc / 2.0,
            "Tr[k] must exceed Tc/2: k = {k} implies triple coverage,              outside the model's dual-coverage domain"
        );
        PlaneGeometry { theta, tc, k }
    }

    /// The reference constellation (θ = 90, Tc = 9) at capacity `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn reference(k: u32) -> Self {
        PlaneGeometry::new(90.0, 9.0, k)
    }

    /// Active satellites `k`.
    #[must_use]
    pub fn capacity(&self) -> u32 {
        self.k
    }

    /// Orbit period θ.
    #[must_use]
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Coverage time Tc.
    #[must_use]
    pub fn tc(&self) -> f64 {
        self.tc
    }

    /// Revisit time `Tr[k] = θ/k`.
    #[must_use]
    pub fn tr(&self) -> f64 {
        self.theta / f64::from(self.k)
    }

    /// `L1[k] = Tr[k]` — the footprint-pattern period along the track.
    #[must_use]
    pub fn l1(&self) -> f64 {
        self.tr()
    }

    /// `L2[k] = |Tc − Tr[k]|` — overlap length (overlapping) or coverage
    /// gap (underlapping).
    #[must_use]
    pub fn l2(&self) -> f64 {
        (self.tc - self.tr()).abs()
    }

    /// The indicator `I[k]` (paper Eq. 1): `true` iff `Tr[k] < Tc`.
    #[must_use]
    pub fn is_overlapping(&self) -> bool {
        self.tr() < self.tc
    }

    /// Upper bound `M[k]` on the number of satellites that consecutively
    /// capture a signal in the underlapping case (paper Eq. 2), given the
    /// alert deadline `tau`.
    ///
    /// Returns `None` for overlapping geometry, where the bound is not
    /// defined by the paper (coordination there terminates at the first
    /// simultaneous coverage instead).
    #[must_use]
    pub fn sequential_chain_bound(&self, tau: f64) -> Option<u32> {
        if self.is_overlapping() {
            return None;
        }
        let l1 = self.l1();
        let l2 = self.l2();
        Some(if tau > l2 {
            2 + ((tau - l2) / l1).floor() as u32
        } else {
            1
        })
    }

    /// `L̂[k] = min{L1 − L2, τ}` — the opportunity-window length feeding
    /// Eq. 4 (overlapping case).
    #[must_use]
    pub fn l_hat(&self, tau: f64) -> f64 {
        (self.l1() - self.l2()).min(tau)
    }

    /// `L̃[k] = min{L1, τ}` — the window length for Theorem 2's sequential
    /// coverage condition (underlapping case).
    #[must_use]
    pub fn l_tilde(&self, tau: f64) -> f64 {
        self.l1().min(tau)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_values_match_paper() {
        // Paper Section 4.2.1: underlapping begins below k = 11.
        assert!(PlaneGeometry::reference(11).is_overlapping());
        assert!(!PlaneGeometry::reference(10).is_overlapping());
        // k = 12: Tr = 7.5, L2 = 1.5.
        let g = PlaneGeometry::reference(12);
        assert!((g.tr() - 7.5).abs() < 1e-12);
        assert!((g.l1() - 7.5).abs() < 1e-12);
        assert!((g.l2() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn k10_is_the_tangent_case() {
        let g = PlaneGeometry::reference(10);
        assert_eq!(g.tr(), 9.0);
        assert_eq!(g.l2(), 0.0);
        assert!(!g.is_overlapping(), "Tr = Tc counts as underlapping");
    }

    #[test]
    fn chain_bound_is_two_for_paper_deadlines() {
        // Paper: with τ < 9 min the sequential-coverage bound is 2.
        for k in [9, 10] {
            let g = PlaneGeometry::reference(k);
            assert_eq!(g.sequential_chain_bound(5.0), Some(2), "k = {k}");
        }
        assert_eq!(
            PlaneGeometry::reference(12).sequential_chain_bound(5.0),
            None
        );
    }

    #[test]
    fn chain_bound_degenerates_to_one_for_tiny_deadline() {
        // k = 9: L2 = 1; τ ≤ L2 leaves no time for a second satellite.
        let g = PlaneGeometry::reference(9);
        assert_eq!(g.sequential_chain_bound(0.5), Some(1));
        assert_eq!(g.sequential_chain_bound(1.0), Some(1));
        assert_eq!(g.sequential_chain_bound(1.1), Some(2));
    }

    #[test]
    fn chain_bound_grows_with_deadline() {
        let g = PlaneGeometry::reference(9); // L1 = 10, L2 = 1
        assert_eq!(g.sequential_chain_bound(11.5), Some(3));
        assert_eq!(g.sequential_chain_bound(21.5), Some(4));
    }

    #[test]
    fn windows_clamp_to_tau() {
        let g = PlaneGeometry::reference(12); // L1 - L2 = 6
        assert_eq!(g.l_hat(5.0), 5.0);
        assert_eq!(g.l_hat(8.0), 6.0);
        let u = PlaneGeometry::reference(9); // L1 = 10
        assert_eq!(u.l_tilde(5.0), 5.0);
        assert_eq!(u.l_tilde(12.0), 10.0);
    }

    #[test]
    #[should_panic(expected = "0 < Tc < theta")]
    fn coverage_exceeding_period_rejected() {
        let _ = PlaneGeometry::new(90.0, 95.0, 10);
    }

    #[test]
    #[should_panic(expected = "triple coverage")]
    fn triple_coverage_capacity_rejected() {
        // k = 20: Tr = 4.5 = Tc/2 — three footprints can meet.
        let _ = PlaneGeometry::reference(20);
    }

    #[test]
    fn highest_valid_capacity_accepted() {
        let g = PlaneGeometry::reference(19);
        assert!(g.l1() - g.l2() > 0.0);
    }
}
