//! Parameter sweeps regenerating the paper's figures.
//!
//! Every sweep validates its inputs up front and returns a typed
//! [`SweepError`] — a NaN λ or a τ ≤ 0 is rejected before it can reach the
//! quadrature (where it would silently poison every integral) or the CTMC
//! solver (where it would panic deep in a model assertion).
//!
//! Every sweep also has a `*_par` sibling that fans the (embarrassingly
//! parallel) grid out over the [`oaq_exec`] deterministic executor. Each
//! grid point's solve is independent and deterministic, and results are
//! written into index-addressed slots, so the parallel output is
//! **bit-identical and identically ordered** to the serial path —
//! parallelism is purely a wall-clock lever. The `*_par` entry points
//! accept `impl Into<`[`Fanout`]`>`, so a bare worker count keeps working
//! while the bench binaries can thread an explicit `--chunk` granularity
//! through.

use oaq_san::ctmc::CtmcError;

pub use oaq_exec::Fanout;

use crate::capacity::CapacityParams;
use crate::compose::{EvaluationConfig, Scheme};
use crate::params::{require_int_in_range, require_positive, ParamError};
use crate::qos::QosParams;

/// Errors from a figure sweep: either a rejected input parameter or a
/// downstream capacity-solver failure.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SweepError {
    /// An input failed validation before any solve was attempted.
    Param(ParamError),
    /// The capacity CTMC solve failed.
    Solver(CtmcError),
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Param(e) => write!(f, "invalid sweep input: {e}"),
            SweepError::Solver(e) => write!(f, "capacity solver failed: {e}"),
        }
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SweepError::Param(e) => Some(e),
            SweepError::Solver(e) => Some(e),
        }
    }
}

impl From<ParamError> for SweepError {
    fn from(e: ParamError) -> Self {
        SweepError::Param(e)
    }
}

impl From<CtmcError> for SweepError {
    fn from(e: CtmcError) -> Self {
        SweepError::Solver(e)
    }
}

fn check_axis(name: &'static str, values: &[f64]) -> Result<(), ParamError> {
    for &v in values {
        require_positive(name, v)?;
    }
    Ok(())
}

/// Resolves a worker-count request: `0` means one worker per available
/// core, anything else is taken literally.
#[must_use]
pub fn effective_sweep_workers(workers: usize) -> usize {
    oaq_exec::effective_workers(workers)
}

/// Maps `f` over `items` on the [`oaq_exec`] executor (one worker runs
/// the plain serial loop). Results land in index-addressed slots, so
/// ordering — and, because every `f` is deterministic and independent,
/// every bit of the output — matches the serial path. On failure the
/// error with the smallest index is returned, again matching serial
/// short-circuiting.
fn sweep_map<T, U, F>(items: &[T], fanout: Fanout, f: F) -> Result<Vec<U>, SweepError>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> Result<U, SweepError> + Sync,
{
    let workers = effective_sweep_workers(fanout.workers).min(items.len().max(1));
    if workers <= 1 {
        return items.iter().map(&f).collect();
    }
    Fanout {
        workers,
        chunk: fanout.chunk,
    }
    .executor()
    .map_indexed(items, |item| f(item))
    .into_iter()
    .collect()
}

/// One row of a Figure 7 sweep: `P(K = k)` at a failure rate λ.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CapacityRow {
    /// Failure rate λ (per hour).
    pub lambda: f64,
    /// `P(K = k)` for `k = 0..=capacity`.
    pub p_k: Vec<f64>,
}

/// One row of a Figure 8/9-style sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct QosRow {
    /// The swept abscissa (λ, τ or 1/µ depending on the sweep).
    pub x: f64,
    /// `P(Y ≥ 1)`.
    pub p_ge_1: f64,
    /// `P(Y ≥ 2)`.
    pub p_ge_2: f64,
    /// `P(Y ≥ 3)` = `P(Y = 3)`.
    pub p_ge_3: f64,
}

/// The λ grid the paper plots: 1e-5 to 1e-4 in steps of 1e-5.
#[must_use]
pub fn paper_lambda_grid() -> Vec<f64> {
    (1..=10).map(|i| 1e-5 * f64::from(i)).collect()
}

/// Figure 7: the capacity distribution over the λ grid (η = 10,
/// φ = 30000 h).
///
/// # Errors
///
/// Rejects non-finite or out-of-domain inputs; propagates capacity-solver
/// failures.
pub fn figure7(lambdas: &[f64], phi: f64, eta: u32) -> Result<Vec<CapacityRow>, SweepError> {
    figure7_par(lambdas, phi, eta, 1)
}

/// [`figure7`] fanned out over the deterministic executor (`0` workers = all cores);
/// output is bit-identical and identically ordered to the serial path.
///
/// # Errors
///
/// As [`figure7`].
pub fn figure7_par(
    lambdas: &[f64],
    phi: f64,
    eta: u32,
    fanout: impl Into<Fanout>,
) -> Result<Vec<CapacityRow>, SweepError> {
    check_axis("lambda", lambdas)?;
    require_positive("phi", phi)?;
    require_int_in_range("eta", eta, 1, 13)?;
    sweep_map(lambdas, fanout.into(), |&lambda| {
        Ok(CapacityRow {
            lambda,
            p_k: CapacityParams::reference(lambda, phi, eta).distribution()?,
        })
    })
}

/// Figure 8: `P(Y = 3)` as a function of λ for one scheme and signal rate
/// µ, with η = 12 (the paper's Figure 8 setting).
///
/// # Errors
///
/// Rejects non-finite or out-of-domain inputs; propagates capacity-solver
/// failures.
pub fn figure8(scheme: Scheme, mu: f64, lambdas: &[f64]) -> Result<Vec<QosRow>, SweepError> {
    figure8_par(scheme, mu, lambdas, 1)
}

/// [`figure8`] fanned out over the deterministic executor (`0` workers = all cores);
/// output is bit-identical and identically ordered to the serial path.
///
/// # Errors
///
/// As [`figure8`].
pub fn figure8_par(
    scheme: Scheme,
    mu: f64,
    lambdas: &[f64],
    fanout: impl Into<Fanout>,
) -> Result<Vec<QosRow>, SweepError> {
    require_positive("mu", mu)?;
    check_axis("lambda", lambdas)?;
    sweep_map(lambdas, fanout.into(), |&lambda| {
        let cfg = EvaluationConfig {
            theta: 90.0,
            tc: 9.0,
            qos: QosParams::paper_defaults(mu),
            capacity: CapacityParams::reference(lambda, 30_000.0, 12),
        };
        let d = cfg.qos_distribution(scheme)?;
        Ok(QosRow {
            x: lambda,
            p_ge_1: d.p_at_least(1),
            p_ge_2: d.p_at_least(2),
            p_ge_3: d.p_at_least(3),
        })
    })
}

/// Figure 9: `P(Y ≥ y)` as a function of λ (τ = 5, µ = 0.2, η = 10).
///
/// # Errors
///
/// Rejects non-finite or out-of-domain inputs; propagates capacity-solver
/// failures.
pub fn figure9(scheme: Scheme, lambdas: &[f64]) -> Result<Vec<QosRow>, SweepError> {
    figure9_par(scheme, lambdas, 1)
}

/// [`figure9`] fanned out over the deterministic executor (`0` workers = all cores);
/// output is bit-identical and identically ordered to the serial path.
///
/// # Errors
///
/// As [`figure9`].
pub fn figure9_par(
    scheme: Scheme,
    lambdas: &[f64],
    fanout: impl Into<Fanout>,
) -> Result<Vec<QosRow>, SweepError> {
    check_axis("lambda", lambdas)?;
    sweep_map(lambdas, fanout.into(), |&lambda| {
        let d = EvaluationConfig::paper_defaults(lambda).qos_distribution(scheme)?;
        Ok(QosRow {
            x: lambda,
            p_ge_1: d.p_at_least(1),
            p_ge_2: d.p_at_least(2),
            p_ge_3: d.p_at_least(3),
        })
    })
}

/// The in-text τ sweep: QoS vs deadline at fixed λ ("how OAQ exploits the
/// time allowance").
///
/// # Errors
///
/// Rejects non-finite or out-of-domain inputs; propagates capacity-solver
/// failures.
pub fn tau_sweep(scheme: Scheme, lambda: f64, taus: &[f64]) -> Result<Vec<QosRow>, SweepError> {
    tau_sweep_par(scheme, lambda, taus, 1)
}

/// [`tau_sweep`] fanned out over the deterministic executor (`0` workers =
/// all cores); output is bit-identical and identically ordered to the
/// serial path.
///
/// # Errors
///
/// As [`tau_sweep`].
pub fn tau_sweep_par(
    scheme: Scheme,
    lambda: f64,
    taus: &[f64],
    fanout: impl Into<Fanout>,
) -> Result<Vec<QosRow>, SweepError> {
    require_positive("lambda", lambda)?;
    check_axis("tau", taus)?;
    sweep_map(taus, fanout.into(), |&tau| {
        let mut cfg = EvaluationConfig::paper_defaults(lambda);
        cfg.qos.tau = tau;
        let d = cfg.qos_distribution(scheme)?;
        Ok(QosRow {
            x: tau,
            p_ge_1: d.p_at_least(1),
            p_ge_2: d.p_at_least(2),
            p_ge_3: d.p_at_least(3),
        })
    })
}

/// The in-text mean-signal-duration sweep: QoS vs `1/µ` at fixed λ ("OAQ
/// treats a longer signal as extended opportunity").
///
/// # Errors
///
/// Rejects non-finite or out-of-domain inputs; propagates capacity-solver
/// failures.
pub fn duration_sweep(
    scheme: Scheme,
    lambda: f64,
    mean_durations: &[f64],
) -> Result<Vec<QosRow>, SweepError> {
    duration_sweep_par(scheme, lambda, mean_durations, 1)
}

/// [`duration_sweep`] fanned out over the deterministic executor (`0` workers =
/// all cores); output is bit-identical and identically ordered to the
/// serial path.
///
/// # Errors
///
/// As [`duration_sweep`].
pub fn duration_sweep_par(
    scheme: Scheme,
    lambda: f64,
    mean_durations: &[f64],
    fanout: impl Into<Fanout>,
) -> Result<Vec<QosRow>, SweepError> {
    require_positive("lambda", lambda)?;
    check_axis("mean_duration", mean_durations)?;
    sweep_map(mean_durations, fanout.into(), |&dur| {
        let mut cfg = EvaluationConfig::paper_defaults(lambda);
        cfg.qos.mu = 1.0 / dur;
        let d = cfg.qos_distribution(scheme)?;
        Ok(QosRow {
            x: dur,
            p_ge_1: d.p_at_least(1),
            p_ge_2: d.p_at_least(2),
            p_ge_3: d.p_at_least(3),
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lambda_grid_matches_paper_axis() {
        let g = paper_lambda_grid();
        assert_eq!(g.len(), 10);
        assert!((g[0] - 1e-5).abs() < 1e-18);
        assert!((g[9] - 1e-4).abs() < 1e-18);
    }

    #[test]
    fn figure7_rows_are_distributions() {
        let rows = figure7(&[1e-5, 1e-4], 30_000.0, 10).unwrap();
        for row in rows {
            let total: f64 = row.p_k.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "λ = {}", row.lambda);
        }
    }

    #[test]
    fn figure8_mu_sensitivity() {
        // Paper: µ 0.5 → 0.2 raises OAQ's P(Y = 3) by up to 38%, and BAQ is
        // insensitive.
        let grid = [1e-5, 5e-5, 1e-4];
        let oaq_02 = figure8(Scheme::Oaq, 0.2, &grid).unwrap();
        let oaq_05 = figure8(Scheme::Oaq, 0.5, &grid).unwrap();
        let baq_02 = figure8(Scheme::Baq, 0.2, &grid).unwrap();
        let baq_05 = figure8(Scheme::Baq, 0.5, &grid).unwrap();
        let mut max_gain: f64 = 0.0;
        for i in 0..grid.len() {
            assert!(oaq_02[i].p_ge_3 > oaq_05[i].p_ge_3);
            assert!((baq_02[i].p_ge_3 - baq_05[i].p_ge_3).abs() < 1e-12);
            max_gain = max_gain.max(oaq_02[i].p_ge_3 / oaq_05[i].p_ge_3 - 1.0);
        }
        assert!(
            max_gain > 0.25 && max_gain < 0.55,
            "paper reports up to 38% gain, got {:.0}%",
            max_gain * 100.0
        );
    }

    #[test]
    fn tau_sweep_is_monotone_for_oaq() {
        let rows = tau_sweep(Scheme::Oaq, 5e-5, &[1.0, 2.0, 4.0, 6.0, 8.0]).unwrap();
        for w in rows.windows(2) {
            assert!(w[1].p_ge_2 >= w[0].p_ge_2 - 1e-12);
        }
    }

    #[test]
    fn sweeps_reject_poisoned_inputs_with_typed_errors() {
        // NaN λ must never reach the quadrature.
        assert!(matches!(
            figure9(Scheme::Oaq, &[1e-5, f64::NAN]),
            Err(SweepError::Param(ParamError::NonFinite {
                name: "lambda",
                ..
            }))
        ));
        assert!(matches!(
            figure7(&[1e-5], -1.0, 10),
            Err(SweepError::Param(ParamError::NonPositive {
                name: "phi",
                ..
            }))
        ));
        assert!(matches!(
            figure7(&[1e-5], 30_000.0, 14),
            Err(SweepError::Param(ParamError::IntOutOfRange {
                name: "eta",
                ..
            }))
        ));
        assert!(matches!(
            figure8(Scheme::Baq, f64::INFINITY, &[1e-5]),
            Err(SweepError::Param(ParamError::NonFinite { name: "mu", .. }))
        ));
        assert!(matches!(
            tau_sweep(Scheme::Oaq, 1e-5, &[5.0, 0.0]),
            Err(SweepError::Param(ParamError::NonPositive {
                name: "tau",
                ..
            }))
        ));
        assert!(matches!(
            duration_sweep(Scheme::Oaq, -1e-5, &[5.0]),
            Err(SweepError::Param(ParamError::NonPositive { .. }))
        ));
    }

    #[test]
    fn parallel_sweeps_are_bit_identical_to_serial() {
        let grid = paper_lambda_grid();
        for workers in [2, 4, 8, 0] {
            assert_eq!(
                figure7_par(&grid, 30_000.0, 10, workers).unwrap(),
                figure7(&grid, 30_000.0, 10).unwrap(),
                "workers = {workers}"
            );
        }
        // An explicit chunk override changes only the executor's task
        // slicing, never the output.
        assert_eq!(
            figure7_par(
                &grid,
                30_000.0,
                10,
                Fanout {
                    workers: 3,
                    chunk: Some(2),
                },
            )
            .unwrap(),
            figure7(&grid, 30_000.0, 10).unwrap(),
        );
        let taus = [1.0, 3.0, 5.0, 8.0];
        assert_eq!(
            tau_sweep_par(Scheme::Oaq, 5e-5, &taus, 3).unwrap(),
            tau_sweep(Scheme::Oaq, 5e-5, &taus).unwrap()
        );
    }

    #[test]
    fn parallel_sweep_error_parity_with_serial() {
        // Poisoned points: the parallel path must report exactly the error
        // the serial path reports.
        let serial = figure9(Scheme::Oaq, &[1e-5, f64::NAN, -1.0]).unwrap_err();
        let parallel = figure9_par(Scheme::Oaq, &[1e-5, f64::NAN, -1.0], 3).unwrap_err();
        // NaN payloads defeat PartialEq; the rendered error is the contract.
        assert_eq!(parallel.to_string(), serial.to_string());
    }

    #[test]
    fn effective_workers_resolves_zero_to_cores() {
        assert!(effective_sweep_workers(0) >= 1);
        assert_eq!(effective_sweep_workers(3), 3);
    }

    #[test]
    fn duration_sweep_grows_oaq_gain() {
        let durations = [1.0, 2.0, 5.0, 10.0, 20.0];
        let oaq = duration_sweep(Scheme::Oaq, 5e-5, &durations).unwrap();
        let baq = duration_sweep(Scheme::Baq, 5e-5, &durations).unwrap();
        let gain_short = oaq[0].p_ge_2 - baq[0].p_ge_2;
        let gain_long = oaq[4].p_ge_2 - baq[4].p_ge_2;
        assert!(
            gain_long > gain_short,
            "longer signals must widen the OAQ advantage: {gain_short} vs {gain_long}"
        );
    }
}
