//! Exact orbital-plane capacity distribution P(k) — Figure 7.
//!
//! Under the scheduled ground-spare deployment policy, every deterministic
//! cycle of length φ begins with the plane restored to full complement, so
//! cycles are regeneration cycles and
//!
//! ```text
//! P(K = k)  =  (1/φ) ∫₀^φ P(K(t) = k) dt
//! ```
//!
//! where `K(t)` is the within-cycle capacity process: a pure death process
//! (failures at rate k·λ, the first `spares` failures absorbed by in-orbit
//! spares) pinned at the threshold η by the threshold-triggered policy.
//! The transient integral is computed exactly (to solver tolerance) by
//! uniformization over the small death-process CTMC, via `oaq-san`.

use crate::params::{require_int_in_range, require_positive, ParamError};
use oaq_san::ctmc::CtmcError;
use oaq_san::plane::{CapacitySolve, PlaneModelConfig, SparePolicy};

/// Parameters of the capacity model (time unit: hours).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityParams {
    /// Full active capacity (14).
    pub capacity: u32,
    /// In-orbit spares (2).
    pub spares: u32,
    /// Per-satellite failure rate λ, per hour.
    pub lambda: f64,
    /// Scheduled-deployment period φ, hours.
    pub phi: f64,
    /// Threshold η at which ground replenishment pins the plane.
    pub eta: u32,
}

impl CapacityParams {
    /// Reference plane (14 + 2 spares).
    ///
    /// # Panics
    ///
    /// Panics on non-positive λ/φ or `eta >= capacity`.
    #[must_use]
    pub fn reference(lambda: f64, phi: f64, eta: u32) -> Self {
        let p = CapacityParams {
            capacity: 14,
            spares: 2,
            lambda,
            phi,
            eta,
        };
        p.validate();
        p
    }

    /// A generalized plane (any Walker design), validated up front — the
    /// non-panicking constructor external callers should use.
    ///
    /// # Errors
    ///
    /// A typed [`ParamError`] naming the offending parameter: `capacity`
    /// in `1..=` [`MAX_PLANE_CAPACITY`](Self::MAX_PLANE_CAPACITY), `eta`
    /// in `1..capacity`, `spares` bounded by the capacity, and positive
    /// finite λ/φ.
    pub fn new(
        capacity: u32,
        spares: u32,
        lambda: f64,
        phi: f64,
        eta: u32,
    ) -> Result<Self, ParamError> {
        require_int_in_range("capacity", capacity, 1, Self::MAX_PLANE_CAPACITY)?;
        require_int_in_range("spares", spares, 0, Self::MAX_PLANE_CAPACITY)?;
        require_int_in_range("eta", eta, 1, capacity - 1)?;
        require_positive("lambda", lambda)?;
        require_positive("phi", phi)?;
        Ok(CapacityParams {
            capacity,
            spares,
            lambda,
            phi,
            eta,
        })
    }

    /// Largest per-plane active complement [`Self::new`] accepts — far
    /// above any flown design, but small enough that the within-cycle
    /// death chain (`capacity − eta + spares + 1` states at most) stays
    /// comfortably inside the CTMC exploration budget.
    pub const MAX_PLANE_CAPACITY: u32 = 4096;

    fn validate(&self) {
        assert!(
            self.lambda.is_finite() && self.lambda > 0.0,
            "lambda must be positive"
        );
        assert!(
            self.phi.is_finite() && self.phi > 0.0,
            "phi must be positive"
        );
        assert!(self.eta < self.capacity, "eta must be below capacity");
    }

    /// The equivalent `oaq-san` plane configuration (pin-at-threshold).
    #[must_use]
    pub fn plane_config(&self) -> PlaneModelConfig {
        PlaneModelConfig {
            capacity: self.capacity,
            spares: self.spares,
            lambda: self.lambda,
            phi: self.phi,
            eta: self.eta,
            policy: SparePolicy::PinAtThreshold,
        }
    }

    /// Explores the within-cycle death process into a reusable
    /// [`CapacitySolve`] — the expensive half of [`Self::distribution`],
    /// independent of φ. A serving layer that sweeps φ (or composes many
    /// QoS measures over one failure scenario) should hold on to the solve
    /// and call [`CapacitySolve::distribution_over`] per horizon.
    ///
    /// # Errors
    ///
    /// Propagates CTMC exploration failures.
    pub fn solve(&self) -> Result<CapacitySolve, CtmcError> {
        self.validate();
        self.plane_config().capacity_solve(10_000)
    }

    /// Computes `P(K = k)` for `k = 0..=capacity` (entries below η are
    /// exactly zero under the pinning policy).
    ///
    /// # Errors
    ///
    /// Propagates CTMC solver failures (the model itself is a few dozen
    /// states, so exploration cannot realistically overflow).
    pub fn distribution(&self) -> Result<Vec<f64>, CtmcError> {
        // Simpson panels: enough that the integral error is far below the
        // differences the experiments care about.
        self.solve()?.distribution_over(self.phi, 256)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oaq_san::plane::PlaneModelConfig;
    use oaq_san::sim::SteadyStateOptions;

    const PHI: f64 = 30_000.0;

    #[test]
    fn distribution_is_proper_and_pinned() {
        let p = CapacityParams::reference(5e-5, PHI, 10);
        let d = p.distribution().unwrap();
        let total: f64 = d.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        for (k, &p) in d.iter().enumerate().take(10) {
            assert_eq!(p, 0.0, "k = {k} unreachable under pinning");
        }
    }

    #[test]
    fn figure7_shape_full_capacity_dominates_at_low_lambda() {
        let d = CapacityParams::reference(1e-5, PHI, 10)
            .distribution()
            .unwrap();
        assert!(d[14] > 0.6, "P(14) = {}", d[14]);
        assert!(d[10] < 0.1, "P(10) = {}", d[10]);
    }

    #[test]
    fn figure7_shape_threshold_dominates_at_high_lambda() {
        let d = CapacityParams::reference(1e-4, PHI, 10)
            .distribution()
            .unwrap();
        assert!(d[10] > 0.5, "P(10) = {}", d[10]);
        assert!(d[10] > d[14], "threshold overtakes full capacity");
    }

    #[test]
    fn p_threshold_is_monotone_in_lambda() {
        let mut last = 0.0;
        for i in 1..=10 {
            let lambda = 1e-5 * f64::from(i);
            let d = CapacityParams::reference(lambda, PHI, 10)
                .distribution()
                .unwrap();
            assert!(d[10] >= last - 1e-9, "lambda = {lambda}");
            last = d[10];
        }
    }

    #[test]
    fn closed_form_matches_san_simulation() {
        // The independent check the paper could not do: our exact
        // regeneration-cycle integral vs the full SAN (deterministic clock)
        // long-run simulation.
        let lambda = 5e-5;
        let exact = CapacityParams::reference(lambda, PHI, 10)
            .distribution()
            .unwrap();
        let sim = PlaneModelConfig::reference(lambda, PHI, 10)
            .build_sim()
            .capacity_distribution_sim(&SteadyStateOptions {
                warmup: 5.0 * PHI,
                horizon: 600.0 * PHI,
                seed: 21,
            });
        for k in 10..=14 {
            assert!(
                (exact[k] - sim[k]).abs() < 0.02,
                "k={k}: exact {} vs sim {}",
                exact[k],
                sim[k]
            );
        }
    }

    #[test]
    fn shorter_cycle_raises_full_capacity_mass() {
        let long = CapacityParams::reference(5e-5, 30_000.0, 10)
            .distribution()
            .unwrap();
        let short = CapacityParams::reference(5e-5, 10_000.0, 10)
            .distribution()
            .unwrap();
        assert!(short[14] > long[14]);
    }

    #[test]
    #[should_panic(expected = "eta must be below capacity")]
    fn bad_eta_rejected() {
        let _ = CapacityParams::reference(1e-5, PHI, 20);
    }

    #[test]
    fn typed_new_matches_reference() {
        let typed = CapacityParams::new(14, 2, 5e-5, PHI, 10).unwrap();
        assert_eq!(typed, CapacityParams::reference(5e-5, PHI, 10));
    }

    #[test]
    fn typed_new_rejects_each_bad_parameter() {
        use crate::params::ParamError;
        assert!(matches!(
            CapacityParams::new(0, 2, 5e-5, PHI, 10),
            Err(ParamError::IntOutOfRange {
                name: "capacity",
                ..
            })
        ));
        assert!(matches!(
            CapacityParams::new(14, 2, 5e-5, PHI, 14),
            Err(ParamError::IntOutOfRange { name: "eta", .. })
        ));
        assert!(matches!(
            CapacityParams::new(14, 2, 0.0, PHI, 10),
            Err(ParamError::NonPositive { name: "lambda", .. })
        ));
        assert!(matches!(
            CapacityParams::new(14, 2, 5e-5, f64::NAN, 10),
            Err(ParamError::NonFinite { name: "phi", .. })
        ));
        assert!(matches!(
            CapacityParams::new(CapacityParams::MAX_PLANE_CAPACITY + 1, 2, 5e-5, PHI, 10),
            Err(ParamError::IntOutOfRange {
                name: "capacity",
                ..
            })
        ));
    }

    #[test]
    fn typed_new_solves_a_non_reference_design() {
        // A Starlink-like plane: 22 active + 2 spares, pin at 18.
        let p = CapacityParams::new(22, 2, 5e-5, PHI, 18).unwrap();
        let d = p.distribution().unwrap();
        assert_eq!(d.len(), 23);
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for (k, &mass) in d.iter().enumerate().take(18) {
            assert_eq!(mass, 0.0, "k = {k} unreachable under pinning");
        }
        assert!(d[22] > 0.0);
    }

    #[test]
    fn reusable_solve_is_bit_identical_to_distribution() {
        let p = CapacityParams::reference(5e-5, PHI, 10);
        let direct = p.distribution().unwrap();
        let solve = p.solve().unwrap();
        // Same solve, many horizons: the φ = PHI row must match the
        // one-shot path bit for bit (a serving-layer cache hit may never
        // change an answer).
        for _ in 0..3 {
            assert_eq!(solve.distribution_over(PHI, 256).unwrap(), direct);
        }
    }
}
