//! Typed validation of model parameters.
//!
//! The closed forms and the quadrature fall over silently when fed a NaN
//! (every comparison is false, so a bad λ propagates into `P(Y ≥ y)` as a
//! NaN "probability") and the CTMC solvers loop on non-finite rates. Any
//! entry point that accepts parameters from outside the crate — the sweep
//! functions here, and query construction in the serving engine — rejects
//! them up front with a [`ParamError`] instead.

use std::fmt;

/// A rejected model parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum ParamError {
    /// The value is NaN or infinite.
    NonFinite {
        /// Parameter name (e.g. `"lambda"`).
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The value is finite but not strictly positive.
    NonPositive {
        /// Parameter name.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The value lies outside its closed domain.
    OutOfRange {
        /// Parameter name.
        name: &'static str,
        /// The offending value.
        value: f64,
        /// Inclusive lower bound.
        min: f64,
        /// Inclusive upper bound.
        max: f64,
    },
    /// An integer parameter (capacity k, threshold η, QoS level y) lies
    /// outside its inclusive range.
    IntOutOfRange {
        /// Parameter name.
        name: &'static str,
        /// The offending value.
        value: u32,
        /// Inclusive lower bound.
        min: u32,
        /// Inclusive upper bound.
        max: u32,
    },
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ParamError::NonFinite { name, value } => {
                write!(f, "{name} must be finite, got {value}")
            }
            ParamError::NonPositive { name, value } => {
                write!(f, "{name} must be > 0, got {value}")
            }
            ParamError::OutOfRange {
                name,
                value,
                min,
                max,
            } => write!(f, "{name} must lie in [{min}, {max}], got {value}"),
            ParamError::IntOutOfRange {
                name,
                value,
                min,
                max,
            } => write!(f, "{name} must lie in {min}..={max}, got {value}"),
        }
    }
}

impl std::error::Error for ParamError {}

/// Requires `value` to be finite.
///
/// # Errors
///
/// [`ParamError::NonFinite`] otherwise.
pub fn require_finite(name: &'static str, value: f64) -> Result<f64, ParamError> {
    if value.is_finite() {
        Ok(value)
    } else {
        Err(ParamError::NonFinite { name, value })
    }
}

/// Requires `value` to be finite and strictly positive (rates, durations,
/// periods).
///
/// # Errors
///
/// [`ParamError::NonFinite`] or [`ParamError::NonPositive`].
pub fn require_positive(name: &'static str, value: f64) -> Result<f64, ParamError> {
    require_finite(name, value)?;
    if value > 0.0 {
        Ok(value)
    } else {
        Err(ParamError::NonPositive { name, value })
    }
}

/// Requires `value` to be finite and inside `[min, max]`.
///
/// # Errors
///
/// [`ParamError::NonFinite`] or [`ParamError::OutOfRange`].
pub fn require_in_range(
    name: &'static str,
    value: f64,
    min: f64,
    max: f64,
) -> Result<f64, ParamError> {
    require_finite(name, value)?;
    if (min..=max).contains(&value) {
        Ok(value)
    } else {
        Err(ParamError::OutOfRange {
            name,
            value,
            min,
            max,
        })
    }
}

/// Requires an integer parameter to lie in `min..=max`.
///
/// # Errors
///
/// [`ParamError::IntOutOfRange`] otherwise.
pub fn require_int_in_range(
    name: &'static str,
    value: u32,
    min: u32,
    max: u32,
) -> Result<u32, ParamError> {
    if (min..=max).contains(&value) {
        Ok(value)
    } else {
        Err(ParamError::IntOutOfRange {
            name,
            value,
            min,
            max,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_values_pass() {
        assert_eq!(require_finite("x", 1.5), Ok(1.5));
        assert_eq!(require_positive("x", 1e-9), Ok(1e-9));
        assert_eq!(require_in_range("x", 0.5, 0.0, 1.0), Ok(0.5));
        assert_eq!(require_int_in_range("k", 14, 1, 14), Ok(14));
    }

    #[test]
    fn nan_and_infinity_are_typed_errors() {
        assert!(matches!(
            require_finite("lambda", f64::NAN),
            Err(ParamError::NonFinite { name: "lambda", .. })
        ));
        assert!(matches!(
            require_positive("tau", f64::INFINITY),
            Err(ParamError::NonFinite { .. })
        ));
        assert!(matches!(
            require_in_range("p", f64::NAN, 0.0, 1.0),
            Err(ParamError::NonFinite { .. })
        ));
    }

    #[test]
    fn domain_violations_are_typed_errors() {
        assert!(matches!(
            require_positive("tau", 0.0),
            Err(ParamError::NonPositive { name: "tau", .. })
        ));
        assert!(matches!(
            require_positive("mu", -0.2),
            Err(ParamError::NonPositive { .. })
        ));
        assert!(matches!(
            require_in_range("p", 1.5, 0.0, 1.0),
            Err(ParamError::OutOfRange { .. })
        ));
        assert!(matches!(
            require_int_in_range("k", 0, 1, 14),
            Err(ParamError::IntOutOfRange { .. })
        ));
        assert!(matches!(
            require_int_in_range("k", 15, 1, 14),
            Err(ParamError::IntOutOfRange { .. })
        ));
    }

    #[test]
    fn errors_render_usefully() {
        let e = ParamError::NonPositive {
            name: "mu",
            value: -1.0,
        };
        assert_eq!(e.to_string(), "mu must be > 0, got -1");
        let e = ParamError::IntOutOfRange {
            name: "k",
            value: 20,
            min: 1,
            max: 14,
        };
        assert!(e.to_string().contains("1..=14"));
    }
}
