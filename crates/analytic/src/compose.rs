//! Composition of the QoS measure (paper Eq. 3):
//! `P(Y ≥ y) = Σ_y Σ_k P(Y = y | k) · P(k)`.

use crate::capacity::CapacityParams;
use crate::geometry::PlaneGeometry;
use crate::params::{require_positive, ParamError};
pub use crate::qos::Scheme;
use crate::qos::{conditional_qos, QosParams};
use oaq_san::ctmc::CtmcError;

/// The unconditional QoS-level distribution `P(Y = y)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QosDistribution {
    p: [f64; 4],
}

impl QosDistribution {
    /// `P(Y = y)`.
    ///
    /// # Panics
    ///
    /// Panics if `y > 3`.
    #[must_use]
    pub fn p(&self, y: usize) -> f64 {
        self.p[y]
    }

    /// The QoS measure `P(Y ≥ y)`.
    ///
    /// # Panics
    ///
    /// Panics if `y > 3`.
    #[must_use]
    pub fn p_at_least(&self, y: usize) -> f64 {
        assert!(y <= 3, "QoS levels are 0..=3");
        self.p[y..].iter().sum()
    }

    /// `[P(Y=0), …, P(Y=3)]`.
    #[must_use]
    pub fn as_array(&self) -> [f64; 4] {
        self.p
    }
}

/// A complete evaluation configuration: constellation geometry, QoS
/// parameters and the plane-capacity model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvaluationConfig {
    /// Orbit period θ, minutes.
    pub theta: f64,
    /// Coverage time Tc, minutes.
    pub tc: f64,
    /// QoS parameters (τ, µ, ν).
    pub qos: QosParams,
    /// Plane-capacity parameters (λ, φ, η; time in hours).
    pub capacity: CapacityParams,
}

impl EvaluationConfig {
    /// The paper's Figure 9 configuration: θ = 90, Tc = 9, τ = 5, µ = 0.2,
    /// ν = 30, φ = 30000 h, η = 10, with λ supplied.
    ///
    /// # Panics
    ///
    /// Panics on invalid λ.
    #[must_use]
    pub fn paper_defaults(lambda: f64) -> Self {
        EvaluationConfig {
            theta: 90.0,
            tc: 9.0,
            qos: QosParams::paper_defaults(0.2),
            capacity: CapacityParams::reference(lambda, 30_000.0, 10),
        }
    }

    /// A configuration for an arbitrary constellation design, validated up
    /// front: the plane geometry `(θ, Tc)` comes from an orbit-layer
    /// builder (e.g. a Walker preset) instead of the paper's constants.
    ///
    /// Every reachable capacity `k ≤ capacity` must satisfy the geometric
    /// domain `Tr[k] = θ/k > Tc/2` (beyond it a third footprint overlaps
    /// the same center-line point and the dual-coverage decomposition no
    /// longer applies), so the plane capacity is bounded by `2θ/Tc`.
    ///
    /// # Errors
    ///
    /// A typed [`ParamError`] for non-positive θ/Tc, `Tc ≥ θ`, or a plane
    /// capacity outside the geometric domain.
    pub fn for_design(
        theta: f64,
        tc: f64,
        qos: QosParams,
        capacity: CapacityParams,
    ) -> Result<Self, ParamError> {
        require_positive("theta", theta)?;
        require_positive("tc", tc)?;
        if tc >= theta {
            return Err(ParamError::OutOfRange {
                name: "tc",
                value: tc,
                min: 0.0,
                max: theta,
            });
        }
        qos.validate();
        // Largest k with θ/k > Tc/2.
        let max_capacity = (2.0 * theta / tc).ceil() as u32 - 1;
        if capacity.capacity > max_capacity {
            return Err(ParamError::IntOutOfRange {
                name: "capacity",
                value: capacity.capacity,
                min: 1,
                max: max_capacity,
            });
        }
        Ok(EvaluationConfig {
            theta,
            tc,
            qos,
            capacity,
        })
    }

    /// The conditional distribution `P(Y = y | k)` for this configuration.
    #[must_use]
    pub fn conditional(&self, scheme: Scheme, k: u32) -> crate::qos::ConditionalQos {
        conditional_qos(
            scheme,
            &PlaneGeometry::new(self.theta, self.tc, k),
            &self.qos,
        )
    }

    /// The composed distribution `P(Y = y)` (Eq. 3). The sum runs over the
    /// reachable capacities `k = η..=capacity` (the paper's k = 9..14 with
    /// the terms below η "extremely unlikely" — here exactly zero under the
    /// pinning policy).
    ///
    /// # Errors
    ///
    /// Propagates capacity-model solver failures.
    pub fn qos_distribution(&self, scheme: Scheme) -> Result<QosDistribution, CtmcError> {
        let pk = self.capacity.distribution()?;
        Ok(self.qos_distribution_with_pk(scheme, &pk))
    }

    /// Eq. 3 composed against a *borrowed* capacity distribution `pk`
    /// (`pk[k] = P(K = k)`), skipping the CTMC solve. This is the cheap
    /// half of [`Self::qos_distribution`]: a serving layer that caches
    /// `P(k)` per (λ, φ, η) scenario composes many (τ, µ, ν) queries
    /// against one solve, and — because [`Self::qos_distribution`] routes
    /// through this same function — gets answers bit-identical to the
    /// recompute-everything path.
    ///
    /// # Panics
    ///
    /// Panics (in the conditional evaluation) if the QoS parameters are
    /// invalid.
    #[must_use]
    pub fn qos_distribution_with_pk(&self, scheme: Scheme, pk: &[f64]) -> QosDistribution {
        let mut p = [0.0; 4];
        for (k, &prob) in pk.iter().enumerate() {
            if prob == 0.0 {
                continue;
            }
            let cond = self.conditional(scheme, k as u32);
            for (y, slot) in p.iter_mut().enumerate() {
                *slot += prob * cond.p(y);
            }
        }
        QosDistribution { p }
    }

    /// Convenience: the QoS measure `P(Y ≥ y)` for all `y` at once.
    ///
    /// # Errors
    ///
    /// Propagates capacity-model solver failures.
    pub fn qos_ccdf(&self, scheme: Scheme) -> Result<QosDistribution, CtmcError> {
        self.qos_distribution(scheme)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The four in-text Figure 9 values. These are the headline numbers of
    /// the paper's evaluation; tolerances are a few hundredths because the
    /// paper reports two digits.
    #[test]
    fn figure9_quoted_values() {
        let low = EvaluationConfig::paper_defaults(1e-5);
        let high = EvaluationConfig::paper_defaults(1e-4);

        let oaq_low = low.qos_ccdf(Scheme::Oaq).unwrap().p_at_least(2);
        let baq_low = low.qos_ccdf(Scheme::Baq).unwrap().p_at_least(2);
        assert!((oaq_low - 0.75).abs() < 0.03, "OAQ @1e-5: {oaq_low}");
        assert!((baq_low - 0.33).abs() < 0.03, "BAQ @1e-5: {baq_low}");

        let oaq_high = high.qos_ccdf(Scheme::Oaq).unwrap().p_at_least(2);
        let baq_high = high.qos_ccdf(Scheme::Baq).unwrap().p_at_least(2);
        assert!((oaq_high - 0.41).abs() < 0.03, "OAQ @1e-4: {oaq_high}");
        assert!((baq_high - 0.04).abs() < 0.02, "BAQ @1e-4: {baq_high}");
    }

    #[test]
    fn p_at_least_one_is_one_for_both_schemes() {
        // Figure 9: "the values of P(Y ≥ 1) are always equal for the two
        // schemes (both equal to 1 over the domain of λ)".
        for lambda in [1e-5, 5e-5, 1e-4] {
            let cfg = EvaluationConfig::paper_defaults(lambda);
            for scheme in [Scheme::Oaq, Scheme::Baq] {
                let d = cfg.qos_ccdf(scheme).unwrap();
                assert!(
                    (d.p_at_least(1) - 1.0).abs() < 1e-6,
                    "{scheme:?} λ={lambda}: {}",
                    d.p_at_least(1)
                );
            }
        }
    }

    #[test]
    fn oaq_dominates_baq_across_lambda() {
        for lambda in [1e-5, 3e-5, 6e-5, 1e-4] {
            let cfg = EvaluationConfig::paper_defaults(lambda);
            let oaq = cfg.qos_ccdf(Scheme::Oaq).unwrap();
            let baq = cfg.qos_ccdf(Scheme::Baq).unwrap();
            for y in 1..=3 {
                assert!(
                    oaq.p_at_least(y) >= baq.p_at_least(y) - 1e-12,
                    "λ={lambda}, y={y}"
                );
            }
        }
    }

    #[test]
    fn distribution_is_proper() {
        let cfg = EvaluationConfig::paper_defaults(5e-5);
        for scheme in [Scheme::Oaq, Scheme::Baq] {
            let d = cfg.qos_distribution(scheme).unwrap();
            let total: f64 = d.as_array().iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "{scheme:?}");
            assert!((d.p_at_least(0) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn qos_degrades_with_lambda() {
        // More failures → less overlap → lower P(Y ≥ 3) for both schemes.
        let mut last_oaq = 1.0;
        let mut last_baq = 1.0;
        for lambda in [1e-5, 3e-5, 6e-5, 1e-4] {
            let cfg = EvaluationConfig::paper_defaults(lambda);
            let oaq = cfg.qos_ccdf(Scheme::Oaq).unwrap().p_at_least(3);
            let baq = cfg.qos_ccdf(Scheme::Baq).unwrap().p_at_least(3);
            assert!(oaq <= last_oaq + 1e-12);
            assert!(baq <= last_baq + 1e-12);
            last_oaq = oaq;
            last_baq = baq;
        }
    }

    #[test]
    fn borrowed_pk_path_is_bit_identical() {
        // The serving-layer contract: composing against a cached P(k) must
        // agree bit for bit with the one-shot path, for both schemes and
        // across the τ/µ sweep axes that reuse one capacity solve.
        let lambda = 5e-5;
        let pk = CapacityParams::reference(lambda, 30_000.0, 10)
            .distribution()
            .unwrap();
        for scheme in [Scheme::Oaq, Scheme::Baq] {
            for tau in [2.0, 5.0, 8.0] {
                for mu in [0.2, 0.5] {
                    let mut cfg = EvaluationConfig::paper_defaults(lambda);
                    cfg.qos.tau = tau;
                    cfg.qos.mu = mu;
                    let direct = cfg.qos_distribution(scheme).unwrap();
                    let cached = cfg.qos_distribution_with_pk(scheme, &pk);
                    assert_eq!(direct.as_array(), cached.as_array());
                }
            }
        }
    }

    #[test]
    fn for_design_matches_paper_defaults() {
        let lambda = 5e-5;
        let built = EvaluationConfig::for_design(
            90.0,
            9.0,
            QosParams::paper_defaults(0.2),
            CapacityParams::reference(lambda, 30_000.0, 10),
        )
        .unwrap();
        assert_eq!(built, EvaluationConfig::paper_defaults(lambda));
    }

    #[test]
    fn for_design_evaluates_a_walker_preset_plane() {
        // An Iridium-NEXT-like plane: θ = 100.4, Tc = 10, 11 active + 1
        // spare, pin at 8. All reachable k sit inside the geometric domain
        // (2θ/Tc ≈ 20).
        let cfg = EvaluationConfig::for_design(
            100.4,
            10.0,
            QosParams::paper_defaults(0.2),
            CapacityParams::new(11, 1, 5e-5, 30_000.0, 8).unwrap(),
        )
        .unwrap();
        let oaq = cfg.qos_distribution(Scheme::Oaq).unwrap();
        let baq = cfg.qos_distribution(Scheme::Baq).unwrap();
        assert!((oaq.p_at_least(0) - 1.0).abs() < 1e-9);
        for y in 1..=3 {
            assert!(oaq.p_at_least(y) >= baq.p_at_least(y) - 1e-12, "y = {y}");
        }
    }

    #[test]
    fn for_design_rejects_out_of_domain_capacity() {
        use crate::params::ParamError;
        // 2θ/Tc = 20 for the reference geometry: k = 20 needs triple
        // coverage, outside the model.
        let err = EvaluationConfig::for_design(
            90.0,
            9.0,
            QosParams::paper_defaults(0.2),
            CapacityParams::new(20, 2, 5e-5, 30_000.0, 10).unwrap(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            ParamError::IntOutOfRange {
                name: "capacity",
                max: 19,
                ..
            }
        ));
        // Tc ≥ θ is geometrically meaningless.
        assert!(matches!(
            EvaluationConfig::for_design(
                90.0,
                90.0,
                QosParams::paper_defaults(0.2),
                CapacityParams::reference(5e-5, 30_000.0, 10),
            ),
            Err(ParamError::OutOfRange { name: "tc", .. })
        ));
    }

    #[test]
    fn eta12_restricts_to_overlap_levels() {
        // Figure 8's configuration (η = 12) keeps every reachable capacity
        // overlapping, so Y = 2 has zero probability and P(Y≥2) = P(Y=3).
        let mut cfg = EvaluationConfig::paper_defaults(5e-5);
        cfg.capacity = CapacityParams::reference(5e-5, 30_000.0, 12);
        let d = cfg.qos_distribution(Scheme::Oaq).unwrap();
        assert_eq!(d.p(2), 0.0);
        assert_eq!(d.p(0), 0.0);
        assert!((d.p_at_least(2) - d.p(3)).abs() < 1e-12);
    }
}
