//! The conditional QoS distribution `P(Y = y | k)` (paper Section 4.2).
//!
//! QoS spectrum (paper Table 1): `Y = 3` simultaneous dual coverage
//! (overlapping geometry only), `Y = 2` sequential dual coverage
//! (underlapping only, OAQ only), `Y = 1` single coverage, `Y = 0` missed
//! target (underlapping only).
//!
//! With PASTA, a Poisson-arriving signal lands uniformly in one geometric
//! period `L1[k]`; its duration is Exp(µ) and the iterative geolocation
//! computation time is Exp(ν). `G3[k]` below is the paper's Eq. 4
//! verbatim; `G2[k]` and the miss probability follow from Theorems 1–2 by
//! the identical construction. Functions suffixed `_with` take arbitrary
//! survival/CDF curves and evaluate the defining integrals numerically —
//! the property tests pin the closed forms to them.

use crate::geometry::PlaneGeometry;
use crate::integrate::adaptive_simpson;

/// Model parameters of the QoS evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QosParams {
    /// Alert-message delivery deadline τ, minutes.
    pub tau: f64,
    /// Signal termination rate µ (mean duration `1/µ` minutes).
    pub mu: f64,
    /// Iterative-computation completion rate ν.
    pub nu: f64,
}

impl QosParams {
    /// The paper's evaluation defaults: τ = 5, ν = 30, with µ supplied
    /// (the paper uses 0.5 and 0.2).
    ///
    /// # Panics
    ///
    /// Panics unless all rates are positive and finite.
    #[must_use]
    pub fn paper_defaults(mu: f64) -> Self {
        let p = QosParams {
            tau: 5.0,
            mu,
            nu: 30.0,
        };
        p.validate();
        p
    }

    /// Typed, non-panicking construction for externally supplied rates.
    ///
    /// # Errors
    ///
    /// A [`ParamError`](crate::params::ParamError) naming the first of
    /// `tau`, `mu`, `nu` that is not positive and finite.
    pub fn try_new(tau: f64, mu: f64, nu: f64) -> Result<Self, crate::params::ParamError> {
        crate::params::require_positive("tau", tau)?;
        crate::params::require_positive("mu", mu)?;
        crate::params::require_positive("nu", nu)?;
        Ok(QosParams { tau, mu, nu })
    }

    /// Validates parameter ranges.
    ///
    /// # Panics
    ///
    /// Panics unless `tau`, `mu` and `nu` are positive and finite.
    pub fn validate(&self) {
        assert!(
            self.tau.is_finite() && self.tau > 0.0,
            "tau must be positive"
        );
        assert!(self.mu.is_finite() && self.mu > 0.0, "mu must be positive");
        assert!(self.nu.is_finite() && self.nu > 0.0, "nu must be positive");
    }

    fn compute_cdf(&self, t: f64) -> f64 {
        if t <= 0.0 {
            0.0
        } else {
            1.0 - (-self.nu * t).exp()
        }
    }
}

/// `∫_{lo}^{hi} e^{−µw} · H(τ − w) dw` with `H(t) = 1 − e^{−νt}`: the
/// probability mass of "signal survives the wait `w`, then the computation
/// finishes inside the remaining deadline", integrated over a wait window.
fn wait_then_compute(q: &QosParams, lo: f64, hi: f64) -> f64 {
    let hi = hi.min(q.tau);
    if hi <= lo {
        return 0.0;
    }
    let (mu, nu, tau) = (q.mu, q.nu, q.tau);
    let first = ((-mu * lo).exp() - (-mu * hi).exp()) / mu;
    // The correction term e^{−ντ}·∫ e^{(ν−µ)w} dw is folded into single
    // exponents e^{ν(w−τ) − µw} (each ≤ 0 since w ≤ τ), so large ν cannot
    // overflow into a 0·∞ NaN.
    let second = if (nu - mu).abs() < 1e-12 {
        (-nu * tau).exp() * (hi - lo)
    } else {
        ((nu * (hi - tau) - mu * hi).exp() - (nu * (lo - tau) - mu * lo).exp()) / (nu - mu)
    };
    first - second
}

/// `G3[k]` — paper Eq. 4: probability of a level-3 result (simultaneous
/// dual coverage, OAQ scheme), given overlapping geometry.
///
/// Returns 0 for underlapping geometry.
#[must_use]
pub fn g3_oaq(geom: &PlaneGeometry, q: &QosParams) -> f64 {
    if !geom.is_overlapping() {
        return 0.0;
    }
    let l1 = geom.l1();
    let l2 = geom.l2();
    let l_hat = geom.l_hat(q.tau);
    // Term 1: signal born in the opportunity window of α, waits for the
    // overlapped footprints (wait w ∈ [0, L̂]).
    let term1 = wait_then_compute(q, 0.0, l_hat);
    // Term 2: signal born inside β — simultaneous coverage immediately.
    let term2 = l2 * q.compute_cdf(q.tau);
    (term1 + term2) / l1
}

/// `G3` under the BAQ baseline: only signals born inside the overlapped
/// interval β reach level 3 (no withholding of preliminary results).
#[must_use]
pub fn g3_baq(geom: &PlaneGeometry, q: &QosParams) -> f64 {
    if !geom.is_overlapping() {
        return 0.0;
    }
    geom.l2() / geom.l1() * q.compute_cdf(q.tau)
}

/// `G2[k]` — probability of a level-2 result (sequential dual coverage,
/// OAQ only), given underlapping geometry: the signal is born inside the
/// coverage interval α at wait `w ∈ [L2, min(L1, τ)]` from the next
/// satellite's arrival (paper Theorem 2, first condition), survives the
/// wait, and the second iteration completes inside the deadline.
///
/// Returns 0 for overlapping geometry or `τ ≤ L2`.
#[must_use]
pub fn g2_oaq(geom: &PlaneGeometry, q: &QosParams) -> f64 {
    if geom.is_overlapping() || q.tau <= geom.l2() {
        return 0.0;
    }
    wait_then_compute(q, geom.l2(), geom.l_tilde(q.tau)) / geom.l1()
}

/// Probability the target escapes surveillance (level 0): born inside the
/// coverage gap γ and terminating before the next footprint arrives.
/// Identical under OAQ and BAQ; zero for overlapping geometry.
#[must_use]
pub fn miss_probability(geom: &PlaneGeometry, q: &QosParams) -> f64 {
    if geom.is_overlapping() {
        return 0.0;
    }
    let l2 = geom.l2();
    if l2 == 0.0 {
        return 0.0;
    }
    (l2 - (1.0 - (-q.mu * l2).exp()) / q.mu) / geom.l1()
}

/// The QoS-enhancement scheme being evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Opportunity-adaptive QoS enhancement (the paper's contribution).
    Oaq,
    /// Basic fault-adaptive QoS enhancement: spares and deployment policies
    /// only, no opportunity-driven coordination; level 2 is unreachable.
    Baq,
}

/// The distribution of the QoS level `Y` conditioned on plane capacity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConditionalQos {
    p: [f64; 4],
}

impl ConditionalQos {
    /// `P(Y = y | k)`.
    ///
    /// # Panics
    ///
    /// Panics if `y > 3`.
    #[must_use]
    pub fn p(&self, y: usize) -> f64 {
        self.p[y]
    }

    /// `P(Y ≥ y | k)`.
    ///
    /// # Panics
    ///
    /// Panics if `y > 3`.
    #[must_use]
    pub fn p_at_least(&self, y: usize) -> f64 {
        assert!(y <= 3, "QoS levels are 0..=3");
        self.p[y..].iter().sum()
    }

    /// The four probabilities `[P(Y=0), …, P(Y=3)]`.
    #[must_use]
    pub fn as_array(&self) -> [f64; 4] {
        self.p
    }
}

/// Computes `P(Y = y | k)` for a scheme, geometry and parameter set.
///
/// # Panics
///
/// Panics if the parameters are invalid (see [`QosParams::validate`]).
#[must_use]
pub fn conditional_qos(scheme: Scheme, geom: &PlaneGeometry, q: &QosParams) -> ConditionalQos {
    q.validate();
    let mut p = [0.0; 4];
    if geom.is_overlapping() {
        let p3 = match scheme {
            Scheme::Oaq => g3_oaq(geom, q),
            Scheme::Baq => g3_baq(geom, q),
        };
        p[3] = p3;
        p[1] = 1.0 - p3;
    } else {
        let p0 = miss_probability(geom, q);
        let p2 = match scheme {
            Scheme::Oaq => g2_oaq(geom, q),
            Scheme::Baq => 0.0,
        };
        p[0] = p0;
        p[2] = p2;
        p[1] = 1.0 - p0 - p2;
    }
    debug_assert!(p.iter().all(|&x| (-1e-12..=1.0 + 1e-12).contains(&x)));
    ConditionalQos { p }
}

// ---------------------------------------------------------------------------
// Numerical (distribution-agnostic) versions of the defining integrals.
// ---------------------------------------------------------------------------

/// `G3` evaluated from the defining integral (Eq. 4) with arbitrary signal
/// survival `W(t) = P(duration > t)` and computation CDF `H(t)`.
///
/// Generic (`?Sized`) over both distributions, so concrete closures
/// monomorphize through [`adaptive_simpson`] while `&dyn Fn` callers keep
/// working unchanged.
#[must_use]
pub fn g3_oaq_with<W, H>(
    geom: &PlaneGeometry,
    tau: f64,
    signal_survival: &W,
    compute_cdf: &H,
) -> f64
where
    W: Fn(f64) -> f64 + ?Sized,
    H: Fn(f64) -> f64 + ?Sized,
{
    if !geom.is_overlapping() {
        return 0.0;
    }
    let l_hat = geom.l_hat(tau);
    let term1 = adaptive_simpson(
        &|x| signal_survival(l_hat - x) * compute_cdf(tau - (l_hat - x)),
        0.0,
        l_hat,
        1e-10,
    );
    let term2 = geom.l2() * compute_cdf(tau);
    (term1 + term2) / geom.l1()
}

/// `G2` evaluated from its defining integral with arbitrary distributions.
#[must_use]
pub fn g2_oaq_with<W, H>(
    geom: &PlaneGeometry,
    tau: f64,
    signal_survival: &W,
    compute_cdf: &H,
) -> f64
where
    W: Fn(f64) -> f64 + ?Sized,
    H: Fn(f64) -> f64 + ?Sized,
{
    if geom.is_overlapping() || tau <= geom.l2() {
        return 0.0;
    }
    adaptive_simpson(
        &|w| signal_survival(w) * compute_cdf(tau - w),
        geom.l2(),
        geom.l_tilde(tau),
        1e-10,
    ) / geom.l1()
}

/// Miss probability from its defining integral with an arbitrary signal
/// survival curve.
#[must_use]
pub fn miss_probability_with<W>(geom: &PlaneGeometry, signal_survival: &W) -> f64
where
    W: Fn(f64) -> f64 + ?Sized,
{
    if geom.is_overlapping() || geom.l2() == 0.0 {
        return 0.0;
    }
    adaptive_simpson(&|d| 1.0 - signal_survival(d), 0.0, geom.l2(), 1e-10) / geom.l1()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_new_accepts_and_rejects() {
        use crate::params::ParamError;
        assert_eq!(
            QosParams::try_new(5.0, 0.2, 30.0).unwrap(),
            QosParams::paper_defaults(0.2)
        );
        assert!(matches!(
            QosParams::try_new(0.0, 0.2, 30.0),
            Err(ParamError::NonPositive { name: "tau", .. })
        ));
        assert!(matches!(
            QosParams::try_new(5.0, f64::NAN, 30.0),
            Err(ParamError::NonFinite { name: "mu", .. })
        ));
        assert!(matches!(
            QosParams::try_new(5.0, 0.2, -1.0),
            Err(ParamError::NonPositive { name: "nu", .. })
        ));
    }

    /// Paper Section 4.3: P(Y=3 | k=12) with τ=5, µ=0.5, ν=30 is 0.44
    /// under OAQ and 0.20 under BAQ.
    #[test]
    fn paper_quoted_values_for_k12() {
        let g = PlaneGeometry::reference(12);
        let q = QosParams::paper_defaults(0.5);
        let oaq = g3_oaq(&g, &q);
        let baq = g3_baq(&g, &q);
        assert!((oaq - 0.44).abs() < 0.01, "OAQ G3[12] = {oaq}");
        assert!((baq - 0.20).abs() < 0.005, "BAQ G3[12] = {baq}");
    }

    #[test]
    fn closed_forms_match_quadrature_exponential() {
        for k in [9, 10, 11, 12, 13, 14] {
            let g = PlaneGeometry::reference(k);
            for mu in [0.2, 0.5, 1.0] {
                for tau in [2.0, 5.0, 8.0] {
                    let q = QosParams { tau, mu, nu: 30.0 };
                    let surv = move |t: f64| (-mu * t.max(0.0)).exp();
                    let cdf = move |t: f64| {
                        if t <= 0.0 {
                            0.0
                        } else {
                            1.0 - (-30.0 * t).exp()
                        }
                    };
                    assert!(
                        (g3_oaq(&g, &q) - g3_oaq_with(&g, tau, &surv, &cdf)).abs() < 1e-8,
                        "g3 k={k} mu={mu} tau={tau}"
                    );
                    assert!(
                        (g2_oaq(&g, &q) - g2_oaq_with(&g, tau, &surv, &cdf)).abs() < 1e-8,
                        "g2 k={k} mu={mu} tau={tau}"
                    );
                    assert!(
                        (miss_probability(&g, &q) - miss_probability_with(&g, &surv)).abs() < 1e-8,
                        "miss k={k} mu={mu}"
                    );
                }
            }
        }
    }

    #[test]
    fn nu_equal_mu_branch_is_continuous() {
        let g = PlaneGeometry::reference(12);
        let exact = g3_oaq(
            &g,
            &QosParams {
                tau: 5.0,
                mu: 0.5,
                nu: 0.5,
            },
        );
        let near = g3_oaq(
            &g,
            &QosParams {
                tau: 5.0,
                mu: 0.5,
                nu: 0.5 + 1e-9,
            },
        );
        assert!((exact - near).abs() < 1e-6);
    }

    #[test]
    fn oaq_dominates_baq_in_overlap() {
        let q = QosParams::paper_defaults(0.2);
        for k in 11..=14 {
            let g = PlaneGeometry::reference(k);
            assert!(g3_oaq(&g, &q) > g3_baq(&g, &q), "k = {k}");
        }
    }

    #[test]
    fn longer_signals_help_oaq_but_not_baq() {
        // Paper Figure 8's headline: decreasing µ raises OAQ's P(Y=3) and
        // leaves BAQ's unchanged.
        let g = PlaneGeometry::reference(12);
        let short = QosParams::paper_defaults(0.5);
        let long = QosParams::paper_defaults(0.2);
        assert!(g3_oaq(&g, &long) > g3_oaq(&g, &short));
        assert!((g3_baq(&g, &long) - g3_baq(&g, &short)).abs() < 1e-12);
    }

    #[test]
    fn conditional_distributions_are_proper() {
        for scheme in [Scheme::Oaq, Scheme::Baq] {
            for k in 9..=14 {
                let g = PlaneGeometry::reference(k);
                let q = QosParams::paper_defaults(0.2);
                let c = conditional_qos(scheme, &g, &q);
                let total: f64 = c.as_array().iter().sum();
                assert!((total - 1.0).abs() < 1e-12, "{scheme:?} k={k}");
                assert!(c.as_array().iter().all(|&p| (0.0..=1.0).contains(&p)));
                assert!((c.p_at_least(0) - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn level_reachability_matches_table_1() {
        let q = QosParams::paper_defaults(0.2);
        // Overlapping (k = 12): Y ∈ {1, 3}; no misses, no sequential dual.
        let over = conditional_qos(Scheme::Oaq, &PlaneGeometry::reference(12), &q);
        assert_eq!(over.p(0), 0.0);
        assert_eq!(over.p(2), 0.0);
        assert!(over.p(3) > 0.0);
        // Underlapping (k = 9): Y ∈ {0, 1, 2}; no simultaneous dual.
        let under = conditional_qos(Scheme::Oaq, &PlaneGeometry::reference(9), &q);
        assert_eq!(under.p(3), 0.0);
        assert!(under.p(2) > 0.0);
        assert!(under.p(0) > 0.0);
        // BAQ in underlap: Y ∈ {0, 1} only.
        let baq = conditional_qos(Scheme::Baq, &PlaneGeometry::reference(9), &q);
        assert_eq!(baq.p(2), 0.0);
        assert_eq!(baq.p(3), 0.0);
    }

    #[test]
    fn tangent_case_k10_has_no_misses_but_sequential_gain() {
        let q = QosParams::paper_defaults(0.2);
        let c = conditional_qos(Scheme::Oaq, &PlaneGeometry::reference(10), &q);
        assert_eq!(c.p(0), 0.0, "L2 = 0 leaves no coverage gap");
        assert!(c.p(2) > 0.3, "sequential dual is the dominant gain");
    }

    #[test]
    fn tiny_deadline_kills_sequential_coverage() {
        let g = PlaneGeometry::reference(9); // L2 = 1
        let q = QosParams {
            tau: 0.8,
            mu: 0.2,
            nu: 30.0,
        };
        assert_eq!(g2_oaq(&g, &q), 0.0);
    }

    #[test]
    fn deadline_growth_is_monotone() {
        let g = PlaneGeometry::reference(12);
        let mut last = 0.0;
        for tau10 in 1..=80 {
            let q = QosParams {
                tau: f64::from(tau10) * 0.1,
                mu: 0.2,
                nu: 30.0,
            };
            let v = g3_oaq(&g, &q);
            assert!(v >= last - 1e-12, "tau = {}", q.tau);
            last = v;
        }
    }
}
