//! # oaq-analytic — the paper's closed-form QoS model
//!
//! Implements the model-based evaluation of Section 4 end to end:
//!
//! * [`geometry`] — the geometric parameters of an orbital plane with `k`
//!   active satellites: revisit time `Tr[k] = θ/k`, `L1[k]`, `L2[k]`, the
//!   overlap indicator `I[k]` (Eq. 1) and the chain-length bound `M[k]`
//!   (Eq. 2);
//! * [`qos`] — the conditional QoS distribution `P(Y = y | k)` for both the
//!   OAQ scheme and the BAQ baseline: `G3[k]` is the paper's Eq. 4;
//!   `G2[k]`, `G1[k]` and the miss probability follow from Theorems 1–2 by
//!   the same construction (the paper omits their algebra "due to space
//!   limitations"). Closed forms assume exponential signal duration (rate
//!   µ) and computation time (rate ν), exactly as the paper does; a
//!   quadrature path ([`integrate`]) accepts arbitrary densities and
//!   cross-checks the algebra;
//! * [`capacity`] — the orbital-plane capacity distribution `P(k)`
//!   (Figure 7), solved exactly: under the deterministic scheduled restore
//!   every cycle of length φ is a regeneration cycle, so
//!   `P(k) = (1/φ)∫₀^φ P(K(t) = k) dt` over the pure-death (pinned)
//!   process, computed by uniformization via `oaq-san`;
//! * [`compose`] — Eq. 3: `P(Y ≥ y) = Σ_k P(Y ≥ y | k) P(k)`;
//! * [`sweep`] — parameter sweeps over λ, τ and µ that regenerate the
//!   series behind Figures 7–9 and the in-text experiments.
//!
//! ## Reproduced paper values
//!
//! The tests of this crate pin the model to every number the paper quotes:
//! `P(Y=3 | k=12)` = 0.44 (OAQ) vs 0.20 (BAQ) at τ=5, µ=0.5, ν=30; and
//! `P(Y ≥ 2)` = 0.75/0.33 (OAQ/BAQ) at λ=1e-5 and 0.41/0.04 at λ=1e-4
//! (τ=5, µ=0.2, φ=30000 h, η=10).
//!
//! ## Example
//!
//! ```
//! use oaq_analytic::compose::{EvaluationConfig, Scheme};
//!
//! let config = EvaluationConfig::paper_defaults(1e-5);
//! let oaq = config.qos_ccdf(Scheme::Oaq).unwrap();
//! let baq = config.qos_ccdf(Scheme::Baq).unwrap();
//! assert!(oaq.p_at_least(2) > baq.p_at_least(2));
//! assert!((oaq.p_at_least(1) - 1.0).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capacity;
pub mod chain;
pub mod compose;
pub mod geometry;
pub mod integrate;
pub mod params;
pub mod qos;
pub mod sweep;

pub use compose::{EvaluationConfig, Scheme};
pub use geometry::PlaneGeometry;
pub use params::ParamError;
pub use qos::QosParams;
