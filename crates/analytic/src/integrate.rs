//! Adaptive Simpson quadrature.
//!
//! Used to cross-check the closed-form G-functions against their defining
//! integrals with arbitrary (not necessarily exponential) signal-duration
//! and computation-time distributions.

/// Integrates `f` over `[a, b]` by adaptive Simpson to absolute tolerance
/// `tol`.
///
/// Generic over the integrand (`?Sized`, so both concrete closures and
/// `&dyn Fn` trait objects work): the inner-loop callers monomorphize and
/// the per-evaluation indirect call disappears. A `&dyn`-typed entry point
/// remains as [`adaptive_simpson_dyn`].
///
/// # Panics
///
/// Panics if the bounds are non-finite or `tol <= 0`.
///
/// # Examples
///
/// ```
/// let v = oaq_analytic::integrate::adaptive_simpson(&|x: f64| x * x, 0.0, 3.0, 1e-12);
/// assert!((v - 9.0).abs() < 1e-10);
/// ```
#[must_use]
pub fn adaptive_simpson<F>(f: &F, a: f64, b: f64, tol: f64) -> f64
where
    F: Fn(f64) -> f64 + ?Sized,
{
    assert!(a.is_finite() && b.is_finite(), "bounds must be finite");
    assert!(tol > 0.0, "tolerance must be positive");
    if a == b {
        return 0.0;
    }
    if b < a {
        return -adaptive_simpson(f, b, a, tol);
    }
    let c = 0.5 * (a + b);
    let fa = f(a);
    let fb = f(b);
    let fc = f(c);
    let whole = simpson(a, b, fa, fc, fb);
    recurse(f, a, b, fa, fc, fb, whole, tol, 0)
}

/// Convenience wrapper over [`adaptive_simpson`] for callers that already
/// hold a `&dyn Fn` trait object (dynamic dispatch per evaluation).
#[must_use]
pub fn adaptive_simpson_dyn(f: &dyn Fn(f64) -> f64, a: f64, b: f64, tol: f64) -> f64 {
    adaptive_simpson(f, a, b, tol)
}

fn simpson(a: f64, b: f64, fa: f64, fc: f64, fb: f64) -> f64 {
    (b - a) / 6.0 * (fa + 4.0 * fc + fb)
}

#[allow(clippy::too_many_arguments)]
fn recurse<F>(
    f: &F,
    a: f64,
    b: f64,
    fa: f64,
    fc: f64,
    fb: f64,
    whole: f64,
    tol: f64,
    depth: u32,
) -> f64
where
    F: Fn(f64) -> f64 + ?Sized,
{
    let c = 0.5 * (a + b);
    let d = 0.5 * (a + c);
    let e = 0.5 * (c + b);
    let fd = f(d);
    let fe = f(e);
    let left = simpson(a, c, fa, fd, fc);
    let right = simpson(c, b, fc, fe, fb);
    let delta = left + right - whole;
    if depth >= 50 || delta.abs() <= 15.0 * tol {
        return left + right + delta / 15.0;
    }
    recurse(f, a, c, fa, fd, fc, left, tol / 2.0, depth + 1)
        + recurse(f, c, b, fc, fe, fb, right, tol / 2.0, depth + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polynomial_is_exact() {
        let v = adaptive_simpson(&|x| 3.0 * x * x + 2.0 * x + 1.0, -1.0, 2.0, 1e-12);
        assert!((v - 15.0).abs() < 1e-10);
    }

    #[test]
    fn exponential_integral() {
        let v = adaptive_simpson(&|x| (-x).exp(), 0.0, 10.0, 1e-12);
        assert!((v - (1.0 - (-10.0_f64).exp())).abs() < 1e-10);
    }

    #[test]
    fn oscillatory_integrand() {
        let v = adaptive_simpson(&f64::sin, 0.0, std::f64::consts::PI, 1e-12);
        assert!((v - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_interval_is_zero() {
        assert_eq!(adaptive_simpson(&|x| x, 2.0, 2.0, 1e-9), 0.0);
    }

    #[test]
    fn reversed_bounds_negate() {
        let fwd = adaptive_simpson(&|x| x, 0.0, 1.0, 1e-12);
        let rev = adaptive_simpson(&|x| x, 1.0, 0.0, 1e-12);
        assert!((fwd + rev).abs() < 1e-14);
    }

    #[test]
    fn sharp_kink_handled() {
        let v = adaptive_simpson(&|x: f64| x.abs(), -1.0, 1.0, 1e-10);
        assert!((v - 1.0).abs() < 1e-8);
    }

    #[test]
    fn dyn_wrapper_matches_monomorphized() {
        let f = |x: f64| (x * 1.7).cos() + x;
        let dynamic: &dyn Fn(f64) -> f64 = &f;
        let a = adaptive_simpson(&f, 0.0, 2.0, 1e-12);
        let b = adaptive_simpson_dyn(dynamic, 0.0, 2.0, 1e-12);
        assert_eq!(a.to_bits(), b.to_bits(), "same arithmetic, same bits");
    }
}
