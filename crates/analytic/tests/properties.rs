//! Property-based tests of the analytic QoS model.

use oaq_analytic::geometry::PlaneGeometry;
use oaq_analytic::qos::{conditional_qos, g2_oaq, g3_baq, g3_oaq, QosParams, Scheme};
use oaq_analytic::sweep::{figure9, figure9_par, tau_sweep, tau_sweep_par};
use proptest::prelude::*;

fn params() -> impl Strategy<Value = QosParams> {
    (0.2f64..8.0, 0.05f64..2.0, 5.0f64..60.0).prop_map(|(tau, mu, nu)| QosParams { tau, mu, nu })
}

proptest! {
    #[test]
    fn conditional_distribution_is_proper(k in 5u32..20, q in params(), scheme_oaq in any::<bool>()) {
        let scheme = if scheme_oaq { Scheme::Oaq } else { Scheme::Baq };
        let c = conditional_qos(scheme, &PlaneGeometry::reference(k), &q);
        let total: f64 = c.as_array().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for y in 0..4 {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&c.p(y)), "p({y}) = {}", c.p(y));
        }
        // CCDF is non-increasing in y.
        for y in 0..3 {
            prop_assert!(c.p_at_least(y) >= c.p_at_least(y + 1) - 1e-12);
        }
    }

    #[test]
    fn oaq_weakly_dominates_baq(k in 5u32..20, q in params()) {
        let g = PlaneGeometry::reference(k);
        let oaq = conditional_qos(Scheme::Oaq, &g, &q);
        let baq = conditional_qos(Scheme::Baq, &g, &q);
        for y in 1..4 {
            prop_assert!(
                oaq.p_at_least(y) >= baq.p_at_least(y) - 1e-12,
                "y={y}: OAQ {} < BAQ {}",
                oaq.p_at_least(y),
                baq.p_at_least(y)
            );
        }
    }

    #[test]
    fn g3_monotone_in_tau_and_signal_length(k in 11u32..20, mu in 0.05f64..2.0, nu in 5.0f64..60.0) {
        let g = PlaneGeometry::reference(k);
        let mut last = 0.0;
        for tau_i in 1..=16 {
            let q = QosParams { tau: 0.5 * f64::from(tau_i), mu, nu };
            let v = g3_oaq(&g, &q);
            prop_assert!(v >= last - 1e-12);
            prop_assert!(v >= g3_baq(&g, &q) - 1e-12);
            last = v;
        }
        // Longer signals (smaller mu) help.
        let q_short = QosParams { tau: 5.0, mu: mu * 2.0, nu };
        let q_long = QosParams { tau: 5.0, mu, nu };
        prop_assert!(g3_oaq(&g, &q_long) >= g3_oaq(&g, &q_short) - 1e-12);
    }

    #[test]
    fn g2_vanishes_in_overlap_and_g3_in_underlap(k in 5u32..20, q in params()) {
        let g = PlaneGeometry::reference(k);
        if g.is_overlapping() {
            prop_assert_eq!(g2_oaq(&g, &q), 0.0);
        } else {
            prop_assert_eq!(g3_oaq(&g, &q), 0.0);
            prop_assert_eq!(g3_baq(&g, &q), 0.0);
        }
    }

    #[test]
    fn parallel_sweeps_match_serial_bitwise(
        lambdas in prop::collection::vec(1e-6f64..1e-4, 1..6),
        workers in 1usize..5,
    ) {
        // The scoped-pool fan-out must return rows bit-identical to the
        // serial sweep, in the same order, for any grid and worker count.
        let serial = figure9(Scheme::Oaq, &lambdas).unwrap();
        let parallel = figure9_par(Scheme::Oaq, &lambdas, workers).unwrap();
        prop_assert_eq!(parallel, serial);
    }

    #[test]
    fn parallel_tau_sweep_matches_serial_bitwise(
        taus in prop::collection::vec(0.5f64..8.0, 1..5),
        workers in 1usize..5,
    ) {
        let serial = tau_sweep(Scheme::Baq, 5e-5, &taus).unwrap();
        let parallel = tau_sweep_par(Scheme::Baq, 5e-5, &taus, workers).unwrap();
        prop_assert_eq!(parallel, serial);
    }

    #[test]
    fn geometry_identities(k in 1u32..=19) {
        let g = PlaneGeometry::reference(k);
        // L1 − L2 is the single-coverage stretch; it is Tc in underlap and
        // 2Tr − Tc in overlap; both are within (0, L1].
        let alpha = g.l1() - g.l2();
        prop_assert!(alpha > 0.0 && alpha <= g.l1() + 1e-12);
        if !g.is_overlapping() {
            prop_assert!((alpha - g.tc()).abs() < 1e-9);
        }
    }
}
