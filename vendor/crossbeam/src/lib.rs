//! Offline vendored stand-in for the `crossbeam` crate.
//!
//! Only the scoped-thread interface is provided ([`scope`]), implemented
//! over `std::thread::scope` (which did not exist when crossbeam's API was
//! designed, and subsumes it for this workspace's usage).

#![forbid(unsafe_code)]

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A scope handle: spawn threads that may borrow from the enclosing stack
/// frame; all are joined before [`scope`] returns.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope again so it
    /// can spawn siblings (crossbeam's signature).
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || f(&Scope { inner }))
    }
}

/// Runs `f` with a [`Scope`]; joins all spawned threads before returning.
///
/// Returns `Err` when any spawned thread (or `f` itself) panicked,
/// mirroring crossbeam's contract.
///
/// # Errors
///
/// The boxed panic payload of the first observed panic.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: FnOnce(&Scope<'_, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let counter = AtomicU32::new(0);
        let r = scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
            9
        })
        .unwrap();
        assert_eq!(r, 9);
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let counter = AtomicU32::new(0);
        scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn child_panic_reports_err() {
        let r = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
