//! Offline vendored stand-in for the `serde` crate.
//!
//! Provides `Serialize`/`Deserialize` as empty marker traits and (behind
//! the `derive` feature) re-exports no-op derive macros, so types tagged
//! `#[cfg_attr(feature = "serde", derive(serde::Serialize, ...))]` keep
//! compiling. No serialization machinery is included; nothing in the
//! workspace performs serde-based (de)serialization at runtime.

#![forbid(unsafe_code)]

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
