//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no network access and no registry cache, so
//! this workspace vendors the (small) subset of the `rand` 0.9 API it
//! actually consumes: [`rngs::StdRng`], [`SeedableRng`], [`RngCore`] and
//! the [`Rng`] extension methods `random` / `random_range`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (which never guaranteed stream stability
//! across versions anyway), but with the same determinism contract: equal
//! seeds yield equal streams, forever, on every platform.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of randomness: the core 64-bit generator interface.
pub trait RngCore {
    /// The next 32 pseudo-random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 pseudo-random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with pseudo-random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a fixed-size byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types that can be sampled uniformly from the generator's full output
/// (the `Standard`/`StandardUniform` distribution in upstream `rand`).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl StandardSample for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi - lo) as u64 + 1;
                lo + (uniform_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_int {
    ($($t:ty as $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi as $u).wrapping_sub(lo as $u) as u64 + 1;
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_range_int!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

/// Uniform draw in `[0, span)` by widening multiply with rejection of the
/// biased low band (Lemire's method) — unbiased for every span.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = u128::from(x) * u128::from(span);
        let low = m as u64;
        if low >= span.wrapping_neg() % span {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as StandardSample>::sample(rng);
                let v = self.start + (self.end - self.start) * unit;
                // Floating-point rounding can land exactly on `end`; fold it
                // back to keep the half-open contract.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + (hi - lo) * <$t as StandardSample>::sample(rng)
            }
        }
    )*};
}

impl_range_float!(f32, f64);

/// Convenience extension methods over [`RngCore`] (the `Rng` trait of
/// upstream `rand`).
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`.
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn random_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Self: Sized,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the upstream `StdRng` stream (upstream explicitly reserves the
    /// right to change its algorithm between versions); equally uniform and
    /// deterministic per seed, which is all the simulators rely on.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state would be a fixed point; SplitMix64 expansion
            // in `seed_from_u64` never produces one, but guard `from_seed`.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn determinism_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x: f64 = rng.random_range(3.0..5.0);
            assert!((3.0..5.0).contains(&x));
        }
    }

    #[test]
    fn int_range_covers_and_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let i: usize = rng.random_range(0..7);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let i: u32 = rng.random_range(5..=6);
            assert!(i == 5 || i == 6);
        }
    }

    #[test]
    fn mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = StdRng::seed_from_u64(0);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
