//! Offline vendored stand-in for the `parking_lot` crate.
//!
//! A poison-free [`Mutex`] (and [`RwLock`]) over the std primitives: the
//! ergonomic difference this workspace relies on is `lock()` returning the
//! guard directly rather than a poisoning `Result`.

#![forbid(unsafe_code)]

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps `value`.
    #[must_use]
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    #[must_use]
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning (a poisoned std mutex still
    /// yields its data; parking_lot has no poisoning at all).
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<std::sync::MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

/// A reader-writer lock whose methods never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps `value`.
    #[must_use]
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    #[must_use]
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
