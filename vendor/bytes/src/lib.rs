//! Offline vendored stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`]: a cheaply cloneable, sliceable, immutable byte
//! buffer over a shared allocation — the subset of the upstream API the
//! workspace's wire-encoding helpers use.

#![forbid(unsafe_code)]

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable immutable byte buffer.
///
/// Clones and slices share one allocation; `slice` is O(1).
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Bytes::from_static(&[])
    }

    /// Wraps a static byte slice (no allocation is shared, but the API
    /// matches upstream).
    #[must_use]
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
            start: 0,
            end: bytes.len(),
        }
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-slice sharing the same allocation.
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds or inverted.
    #[must_use]
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// The bytes as a plain slice.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copies into a `Vec<u8>`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            end: len,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_and_len() {
        let b = Bytes::from(vec![1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert!(!b.is_empty());
    }

    #[test]
    fn slice_shares_and_bounds() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[1, 2, 3]);
        let tail = b.slice(2..);
        assert_eq!(&tail[..], &[2, 3, 4]);
        let nested = tail.slice(1..=1);
        assert_eq!(&nested[..], &[3]);
    }

    #[test]
    fn equality_ignores_provenance() {
        let a = Bytes::from(vec![7, 8]);
        let b = Bytes::from_static(&[7, 8]);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oversized_slice_panics() {
        let _ = Bytes::from(vec![1]).slice(0..5);
    }

    #[test]
    fn debug_escapes() {
        let b = Bytes::from(vec![65, 0]);
        assert_eq!(format!("{b:?}"), "b\"A\\x00\"");
    }
}
