//! Offline vendored stand-in for the `criterion` crate.
//!
//! Provides the `criterion_group!`/`criterion_main!` harness interface,
//! `Criterion::benchmark_group`/`bench_function`, `Bencher::iter`/
//! `iter_batched` and `black_box`. Measurement is a simple calibrated
//! wall-clock loop (median-free mean over a fixed budget) — adequate for
//! the workspace's "is this path getting slower?" smoke usage, not a
//! statistics engine.
//!
//! CLI behavior: `--test` (as passed by `cargo test` to `harness = false`
//! bench targets) runs every benchmark exactly once; `--quick` shrinks the
//! measurement budget; other flags are accepted and ignored.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost (accepted for API parity; the
/// stand-in always times per-batch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// What a benchmark run should do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Time and report.
    Measure { budget: Duration },
    /// Run each routine once (smoke test under `cargo test`).
    Smoke,
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mode = if args.iter().any(|a| a == "--test") {
            Mode::Smoke
        } else if args.iter().any(|a| a == "--quick") {
            Mode::Measure {
                budget: Duration::from_millis(20),
            }
        } else {
            Mode::Measure {
                budget: Duration::from_millis(200),
            }
        };
        Criterion { mode }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup { criterion: self }
    }

    /// Benchmarks one routine.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            mode: self.mode,
            report: None,
        };
        f(&mut b);
        match b.report {
            Some(r) => println!("  {name}: {r}"),
            None => println!("  {name}: (no measurement)"),
        }
        self
    }

    /// Prints the trailing summary (called by `criterion_main!`).
    pub fn final_summary(&mut self) {
        println!("benchmarks complete");
    }
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks one routine within the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.criterion.bench_function(name, f);
        self
    }

    /// Ends the group (optional, for API parity).
    pub fn finish(self) {}
}

/// Times closures handed to it by a benchmark function.
#[derive(Debug)]
pub struct Bencher {
    mode: Mode,
    report: Option<String>,
}

impl Bencher {
    /// Times `routine` called repeatedly.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        match self.mode {
            Mode::Smoke => {
                black_box(routine());
                self.report = Some("ok (smoke)".to_string());
            }
            Mode::Measure { budget } => {
                // Warm-up + calibration: one timed call decides the batch.
                let start = Instant::now();
                black_box(routine());
                let once = start.elapsed().max(Duration::from_nanos(50));
                let mut iters: u64 = 0;
                let started = Instant::now();
                let deadline = started + budget.min(once * 10_000).max(once);
                while Instant::now() < deadline {
                    black_box(routine());
                    iters += 1;
                }
                let total = started.elapsed();
                self.report = Some(format_rate(total, iters.max(1)));
            }
        }
    }

    /// Times `routine` over inputs produced by `setup` (setup untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        match self.mode {
            Mode::Smoke => {
                black_box(routine(setup()));
                self.report = Some("ok (smoke)".to_string());
            }
            Mode::Measure { budget } => {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                let once = start.elapsed().max(Duration::from_nanos(50));
                let mut iters: u64 = 0;
                let mut measured = Duration::ZERO;
                let cap = budget.min(once * 10_000).max(once);
                while measured < cap {
                    let input = setup();
                    let start = Instant::now();
                    black_box(routine(input));
                    measured += start.elapsed();
                    iters += 1;
                }
                self.report = Some(format_rate(measured, iters.max(1)));
            }
        }
    }
}

fn format_rate(total: Duration, iters: u64) -> String {
    let per = total.as_nanos() / u128::from(iters);
    if per >= 1_000_000_000 {
        format!("{:.3} s/iter ({iters} iters)", per as f64 / 1e9)
    } else if per >= 1_000_000 {
        format!("{:.3} ms/iter ({iters} iters)", per as f64 / 1e6)
    } else if per >= 1_000 {
        format!("{:.3} µs/iter ({iters} iters)", per as f64 / 1e3)
    } else {
        format!("{per} ns/iter ({iters} iters)")
    }
}

/// Declares a group function aggregating benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = Criterion { mode: Mode::Smoke };
        let mut calls = 0;
        c.bench_function("x", |b| {
            b.iter(|| calls += 1);
        });
        assert_eq!(calls, 1);
    }

    #[test]
    fn batched_smoke_runs_setup_and_routine() {
        let mut c = Criterion { mode: Mode::Smoke };
        let mut setups = 0;
        let mut runs = 0;
        c.benchmark_group("g").bench_function("y", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    7u32
                },
                |v| {
                    runs += 1;
                    v * 2
                },
                BatchSize::SmallInput,
            );
        });
        assert_eq!((setups, runs), (1, 1));
    }

    #[test]
    fn rate_formatting_scales() {
        assert!(format_rate(Duration::from_nanos(500), 1).contains("ns/iter"));
        assert!(format_rate(Duration::from_micros(5), 1).contains("µs/iter"));
        assert!(format_rate(Duration::from_millis(5), 1).contains("ms/iter"));
        assert!(format_rate(Duration::from_secs(2), 1).contains("s/iter"));
    }
}
