//! Offline vendored stand-in for the `serde_derive` crate.
//!
//! The derives expand to nothing: the workspace only uses
//! `#[cfg_attr(feature = "serde", derive(serde::Serialize, ...))]` as an
//! opt-in marker and never serializes through serde at runtime, so an
//! empty expansion keeps those attributes compiling without pulling in a
//! real code generator.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
