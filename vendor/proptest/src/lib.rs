//! Offline vendored stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro, range/tuple/`any`/`vec` strategies,
//! `prop_map`, `prop_assert!`/`prop_assert_eq!`/`prop_assume!` and
//! [`test_runner::ProptestConfig`]. Cases are generated deterministically
//! (seeded from the test's source location and the case index), so failures
//! reproduce without persistence files. There is **no shrinking**: a
//! failure reports the exact generated inputs instead.

#![forbid(unsafe_code)]

pub mod strategy;

pub mod arbitrary;
pub mod collection;
pub mod test_runner;

/// `prop::…` module path used by the prelude (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

/// The glob-imported prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Runs the cases of one property (used by the [`proptest!`] expansion).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::test_runner::run_cases(&config, file!(), line!(), |__pt_rng| {
                    $( let $arg = $crate::strategy::Strategy::generate(&$strat, __pt_rng); )+
                    // Formatted eagerly: the body may move the inputs.
                    let __pt_desc = {
                        let mut s = ::std::string::String::new();
                        $(
                            s.push_str(concat!(stringify!($arg), " = "));
                            s.push_str(&format!("{:?}, ", &$arg));
                        )+
                        s
                    };
                    // The closure is what `prop_assert!`'s early `return Err(..)`
                    // unwinds to; inlining the block would abort the whole test fn.
                    #[allow(clippy::redundant_closure_call)]
                    let __pt_result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match __pt_result {
                        ::std::result::Result::Ok(()) => $crate::test_runner::CaseOutcome::Pass,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(r)) =>
                            $crate::test_runner::CaseOutcome::Reject(r),
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) =>
                            $crate::test_runner::CaseOutcome::Fail(format!("{}\n  inputs: {}", msg, __pt_desc)),
                    }
                });
            }
        )*
    };
}

/// Asserts a condition inside a property, failing the case (not panicking
/// directly) so the runner can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects the current case (it is regenerated, not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        $crate::prop_assume!($cond, "assumption failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Reject(format!($($fmt)*)),
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u32..10, y in -2.0f64..2.0, b in any::<bool>()) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            let _ = b;
        }

        #[test]
        fn tuples_and_map(v in (1u32..5, 10u32..20).prop_map(|(a, b)| a + b)) {
            prop_assert!((11..=23).contains(&v));
        }

        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec(0u8..=255, 0..16)) {
            prop_assert!(v.len() < 16);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_cases_accepted(seed in any::<u64>()) {
            let _ = seed;
        }
    }

    #[test]
    fn deterministic_generation() {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let strat = (0.0f64..1.0, 0u32..10);
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }

    #[test]
    #[should_panic(expected = "inputs:")]
    fn failure_reports_inputs() {
        proptest! {
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x is small");
            }
        }
        always_fails();
    }
}
