//! Collection strategies (`prop::collection::vec`).

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// A (half-open) range of collection sizes.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_exclusive: *r.end() + 1,
        }
    }
}

/// The strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.random_range(self.size.lo..self.size.hi_exclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy for `Vec`s whose elements come from `element` and whose
/// length comes from `size` (a `usize`, `a..b` or `a..=b`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
