//! `any::<T>()` — full-domain strategies for primitive types.

use std::fmt::Debug;
use std::marker::PhantomData;

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_std {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.random()
            }
        }
    )*};
}

impl_arbitrary_std!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl Arbitrary for f64 {
    /// Finite floats across a wide magnitude span (upstream generates NaN
    /// and infinities too; the workspace's properties all operate on finite
    /// inputs, so this stand-in sticks to finite values).
    fn arbitrary(rng: &mut StdRng) -> Self {
        let mantissa: f64 = rng.random_range(-1.0..1.0);
        let exp: i32 = rng.random_range(-60..60);
        mantissa * (2.0f64).powi(exp)
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T> Debug for Any<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "any::<{}>()", std::any::type_name::<T>())
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the whole domain of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
