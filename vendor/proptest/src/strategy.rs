//! Strategies: deterministic value generators.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

/// A generator of test-case values.
///
/// Unlike upstream proptest there is no value tree and no shrinking: a
/// strategy draws one concrete value per case from the runner's RNG.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Regenerates until `f` accepts a value (upstream's filtering
    /// strategy; bounded to keep pathological filters from hanging).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// The [`Strategy::prop_filter`] adapter.
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1000 consecutive values",
            self.whence
        );
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
