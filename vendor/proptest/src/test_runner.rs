//! The case runner and its configuration.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Why a property case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case's inputs violated an assumption; regenerate.
    Reject(String),
    /// The property is false for these inputs.
    Fail(String),
}

impl TestCaseError {
    /// Constructs a failure.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Constructs a rejection.
    #[must_use]
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Outcome of one generated case (produced by the `proptest!` expansion).
#[derive(Debug)]
pub enum CaseOutcome {
    /// Property held.
    Pass,
    /// Assumption violated; the case is not counted.
    Reject(String),
    /// Property violated; the message already includes the inputs.
    Fail(String),
}

/// Runner configuration (`#![proptest_config(…)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
    /// Maximum rejected cases tolerated before giving up.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A configuration requiring `cases` passing cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    /// 64 cases (upstream defaults to 256; the stand-in trades a smaller
    /// default for faster offline suites — individual tests can raise it).
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

/// Deterministic per-test seed: mixes the source location with the case
/// ordinal so every test gets an independent, stable stream.
fn case_seed(file: &str, line: u32, case: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in file.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h = (h ^ u64::from(line)).wrapping_mul(0x0000_0100_0000_01B3);
    h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Drives one property: generates cases until `config.cases` pass, a case
/// fails (panic, with inputs in the message) or the reject budget is spent.
///
/// # Panics
///
/// Panics when the property fails or too many cases are rejected.
pub fn run_cases(
    config: &ProptestConfig,
    file: &str,
    line: u32,
    mut case: impl FnMut(&mut StdRng) -> CaseOutcome,
) {
    let mut passed: u32 = 0;
    let mut rejected: u32 = 0;
    let mut ordinal: u64 = 0;
    while passed < config.cases {
        let mut rng = StdRng::seed_from_u64(case_seed(file, line, ordinal));
        ordinal += 1;
        match case(&mut rng) {
            CaseOutcome::Pass => passed += 1,
            CaseOutcome::Reject(_) => {
                rejected += 1;
                assert!(
                    rejected <= config.max_global_rejects,
                    "property at {file}:{line}: exceeded {} rejected cases \
                     (assumptions too strict for the generators)",
                    config.max_global_rejects
                );
            }
            CaseOutcome::Fail(msg) => {
                panic!(
                    "property at {file}:{line} failed after {passed} passing case(s) \
                     (deterministic case #{}):\n{msg}",
                    ordinal - 1
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(case_seed("a.rs", 1, 0), case_seed("a.rs", 1, 0));
        assert_ne!(case_seed("a.rs", 1, 0), case_seed("a.rs", 1, 1));
        assert_ne!(case_seed("a.rs", 1, 0), case_seed("b.rs", 1, 0));
        assert_ne!(case_seed("a.rs", 1, 0), case_seed("a.rs", 2, 0));
    }

    #[test]
    fn runner_counts_passes() {
        let mut calls = 0;
        run_cases(&ProptestConfig::with_cases(10), "x.rs", 1, |_| {
            calls += 1;
            CaseOutcome::Pass
        });
        assert_eq!(calls, 10);
    }

    #[test]
    #[should_panic(expected = "rejected cases")]
    fn reject_budget_enforced() {
        run_cases(
            &ProptestConfig {
                cases: 1,
                max_global_rejects: 10,
            },
            "x.rs",
            1,
            |_| CaseOutcome::Reject("nope".into()),
        );
    }
}
